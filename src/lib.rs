//! Umbrella crate for the RSC workspace.
//!
//! This package exists to own the repository-level integration suites in
//! `tests/` (the §2 overview examples, negative cases, the Fig. 6
//! benchmark corpus, and dynamic soundness) plus the runnable
//! `examples/`. The implementation lives in the `crates/` workspace; see
//! `ARCHITECTURE.md` for the crate map. For programmatic use, depend on
//! [`rsc_core`] directly — this crate simply re-exports it.

#![warn(missing_docs)]

pub use rsc_core::*;
