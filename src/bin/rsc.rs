//! The `rsc` command-line checker: verify `.rsc` files (and their
//! import closures) from the shell, serve an editor session over
//! stdin/stdout, watch a file set, batch-check a tree, or fuzz the
//! checker itself.
//!
//! ```text
//! cargo run --bin rsc -- benchmarks/navier-stokes.rsc
//! cargo run --bin rsc -- app.rsc lib.rsc        # multi-file roots
//! cargo run --bin rsc -- src/                   # directory mode
//! cargo run --bin rsc -- --no-path-sensitivity file.rsc
//! cargo run --bin rsc -- --jobs 4 benchmarks/*.rsc
//! cargo run --bin rsc -- serve          # NDJSON requests on stdin
//! cargo run --bin rsc -- --watch a.rsc b.rsc  # re-check on save
//! cargo run --bin rsc -- check --recursive workspace/  # parallel batch
//! cargo run --bin rsc -- fuzz --cases 1000 --seed 0    # oracles
//! cargo run --bin rsc -- --profile trace.json file.rsc # Perfetto trace
//! cargo run --bin rsc -- --stats-json file.rsc         # per-phase JSON
//! ```
//!
//! Files may `import {name} from "./other"`: each root is checked as
//! its full import closure (a merged program), through one shared
//! workspace so overlapping closures share the VC cache. Directory
//! arguments expand to every `.rsc`/`.ts` file beneath them, sorted.
//!
//! Rejections are rendered rustc-style, with the error code of the
//! failed obligation kind, a source excerpt, and a caret underline over
//! the blamed range — located in the owning *file* of the closure (see
//! `rsc_core::Diagnostic::render`).
//!
//! Both `serve` and `--watch` run a persistent [`rsc_incr::Workspace`]:
//! after the first check, only the constraint bundles whose canonical
//! problem changed are re-solved, per document (see `ARCHITECTURE.md`).
//! `--watch` polls every file in the watched documents' import
//! closures, so saving an imported dependency re-checks its importers.
//!
//! Exit code 0 = verified, 1 = verification errors, 2 = usage/IO error.

use std::collections::BTreeMap;
use std::sync::Arc;

use rsc_core::{CheckerOptions, LineIndex};
use rsc_gen::FuzzConfig;
use rsc_incr::{DocReport, Serve, VcCache, Workspace};
use threadpool::Pool;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    // Subcommands: `rsc fuzz ...` has its own flag set; `rsc check ...`
    // is an alias for the default mode (so `rsc check --recursive dir`
    // reads naturally).
    if argv.first().map(String::as_str) == Some("fuzz") {
        run_fuzz_cli(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("check") {
        argv.remove(0);
    }

    let mut opts = CheckerOptions::default();
    let mut args_files: Vec<String> = Vec::new();
    let mut quiet = false;
    let mut want_jobs = false;
    let mut want_cache_cap = false;
    let mut want_profile = false;
    let mut want_vc_cache_dir = false;
    let mut vc_cache_dir: Option<String> = None;
    let mut serve = false;
    let mut watch = false;
    let mut recursive = false;
    let mut profile_path: Option<String> = None;
    let mut stats_json = false;
    for arg in argv {
        if want_jobs {
            want_jobs = false;
            opts.jobs = parse_jobs(&arg);
            continue;
        }
        if want_cache_cap {
            want_cache_cap = false;
            opts.cache_capacity = parse_cache_cap(&arg);
            continue;
        }
        if want_profile {
            want_profile = false;
            profile_path = Some(arg);
            continue;
        }
        if want_vc_cache_dir {
            want_vc_cache_dir = false;
            vc_cache_dir = Some(arg);
            continue;
        }
        match arg.as_str() {
            "serve" => serve = true,
            "--watch" | "-w" => watch = true,
            "--recursive" | "-r" => recursive = true,
            "--no-path-sensitivity" => opts.path_sensitivity = false,
            "--no-prelude-qualifiers" => opts.prelude_qualifiers = false,
            "--no-mined-qualifiers" => opts.mine_qualifiers = false,
            "--no-vc-cache" => opts.vc_cache = false,
            "--no-incremental-smt" => opts.incremental_smt = false,
            "--no-absint" => opts.absint = false,
            "--lints" => opts.lints = true,
            "--no-lints" => opts.lints = false,
            "--jobs" | "-j" => want_jobs = true,
            "--cache-cap" => want_cache_cap = true,
            "--vc-cache" => want_vc_cache_dir = true,
            "--profile" => want_profile = true,
            "--stats-json" => stats_json = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                print_usage();
                return;
            }
            f if !f.starts_with('-') => args_files.push(f.to_string()),
            other => match other.strip_prefix("--jobs=") {
                Some(n) => opts.jobs = parse_jobs(n),
                None => match other.strip_prefix("--cache-cap=") {
                    Some(n) => opts.cache_capacity = parse_cache_cap(n),
                    None => match other.strip_prefix("--profile=") {
                        Some(p) => profile_path = Some(p.to_string()),
                        None => match other.strip_prefix("--vc-cache=") {
                            Some(d) => vc_cache_dir = Some(d.to_string()),
                            None => {
                                eprintln!("rsc: unknown flag {other}");
                                print_usage();
                                std::process::exit(2);
                            }
                        },
                    },
                },
            },
        }
    }
    if want_jobs {
        eprintln!("rsc: --jobs expects a worker count");
        print_usage();
        std::process::exit(2);
    }
    if want_cache_cap {
        eprintln!("rsc: --cache-cap expects an entry count");
        print_usage();
        std::process::exit(2);
    }
    if want_profile {
        eprintln!("rsc: --profile expects an output path");
        print_usage();
        std::process::exit(2);
    }
    if want_vc_cache_dir {
        eprintln!("rsc: --vc-cache expects a directory");
        print_usage();
        std::process::exit(2);
    }
    // The flag wins; RSC_VC_CACHE is the no-flag spelling for wrappers.
    if vc_cache_dir.is_none() {
        if let Ok(d) = std::env::var("RSC_VC_CACHE") {
            if !d.is_empty() {
                vc_cache_dir = Some(d);
            }
        }
    }
    let with_disk = |ws: Workspace| match &vc_cache_dir {
        Some(dir) => ws.persisting_to(dir),
        None => ws,
    };
    if serve {
        if watch || !args_files.is_empty() {
            eprintln!("rsc: serve takes no files (send load requests on stdin)");
            std::process::exit(2);
        }
        if profile_path.is_some() || stats_json {
            eprintln!("rsc: serve reports timing via the {{\"cmd\":\"metrics\"}} request");
            std::process::exit(2);
        }
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        if let Err(e) =
            Serve::run_over(with_disk(Workspace::new(opts)), stdin.lock(), stdout.lock())
        {
            eprintln!("rsc: serve I/O error: {e}");
            std::process::exit(2);
        }
        return;
    }
    let files = expand_files(&args_files);
    if watch {
        if files.is_empty() {
            eprintln!("rsc: --watch expects at least one file");
            std::process::exit(2);
        }
        run_watch(
            &files,
            opts,
            quiet,
            profile_path.as_deref(),
            vc_cache_dir.as_deref(),
        );
        return;
    }
    if files.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    if recursive {
        if stats_json {
            eprintln!("rsc: --stats-json is not supported with --recursive");
            std::process::exit(2);
        }
        run_recursive(
            &files,
            opts,
            quiet,
            profile_path.as_deref(),
            vc_cache_dir.as_deref(),
        );
    }

    // Observability surfaces: both flags flip the same collector on;
    // collection must never change verdicts or diagnostics (see
    // `tests/profile_determinism.rs`).
    let obs_on = profile_path.is_some() || stats_json;
    if obs_on {
        rsc_obs::set_enabled(true);
        rsc_obs::drain(); // discard anything recorded before the batch
    }

    // One workspace for the whole batch: each root is checked as its
    // import closure, and overlapping closures share the VC cache.
    let mut ws = with_disk(Workspace::new(opts));
    let mut failed = false;
    let mut all_spans: Vec<rsc_obs::SpanRecord> = Vec::new();
    let mut json_files: Vec<String> = Vec::new();
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rsc: cannot read {file}: {e}");
                std::process::exit(2);
            }
        };
        let start = std::time::Instant::now();
        let report = ws.check_one(file, src);
        let elapsed = start.elapsed();
        let profile = if obs_on {
            rsc_obs::drain()
        } else {
            rsc_obs::Profile::default()
        };
        let result = &report.outcome.result;
        let closure = report.merged.files.len();
        if stats_json {
            json_files.push(stats_json_entry(file, &report, &profile, elapsed));
            if !result.ok() {
                failed = true;
                // Keep stdout machine-readable; humans read stderr.
                eprint!("{}", rendered(&report));
            }
            eprint!("{}", rendered_lints(&report));
        } else if result.ok() {
            if !quiet {
                let files_note = if closure > 1 {
                    format!(", {closure} files")
                } else {
                    String::new()
                };
                println!(
                    "{file}: SAFE ({} constraints, {} κ-vars, {} SMT queries, \
                     {} bundles{files_note}, {:.0}% VC-cache hits, {:.0?})",
                    result.stats.constraints,
                    result.stats.kvars,
                    result.stats.smt_queries,
                    result.stats.bundles,
                    100.0 * result.stats.cache_hit_rate(),
                    elapsed
                );
            }
        } else {
            failed = true;
            println!(
                "{file}: UNSAFE ({} errors, {:.0?})",
                result.diagnostics.len(),
                elapsed
            );
            print_rendered(&report);
        }
        if !stats_json {
            print!("{}", rendered_lints(&report));
        }
        if profile_path.is_some() {
            all_spans.extend(profile.spans);
        }
    }
    if stats_json {
        println!("{{\"files\":[{}]}}", json_files.join(","));
    }
    if let Some(path) = &profile_path {
        write_trace(path, &all_spans);
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// Writes a Chrome trace-event file (loadable in Perfetto /
/// `chrome://tracing`) from the collected spans.
fn write_trace(path: &str, spans: &[rsc_obs::SpanRecord]) {
    if let Err(e) = std::fs::write(path, rsc_obs::chrome_trace_json(spans)) {
        eprintln!("rsc: cannot write {path}: {e}");
        std::process::exit(2);
    }
}

/// One `--stats-json` entry: verdict and structural stats are
/// deterministic at any `--jobs` (per-bundle rows are in bundle-index
/// order); `*_us` timings and the VC-cache hit/miss split are
/// measurements and vary run to run.
fn stats_json_entry(
    file: &str,
    report: &DocReport,
    profile: &rsc_obs::Profile,
    elapsed: std::time::Duration,
) -> String {
    use std::fmt::Write;
    let result = &report.outcome.result;
    let stats = &result.stats;
    let mut bundles = String::new();
    for (i, b) in result.bundle_reports.iter().enumerate() {
        if i > 0 {
            bundles.push(',');
        }
        write!(
            bundles,
            "{{\"index\":{i},\"constraints\":{},\"kvars\":{},\"cached\":{},\
             \"failures\":{},\"smt_queries\":{},\"cache_hits\":{},\
             \"discharged_static\":{},\"solve_us\":{}}}",
            b.constraints,
            b.kvars,
            b.cached,
            b.failures.len(),
            b.smt_queries,
            b.smt.cache_hits,
            b.discharged,
            b.solve_ns / 1_000,
        )
        .unwrap();
    }
    let mut phases = String::new();
    for (i, p) in profile.phase_totals().iter().enumerate() {
        if i > 0 {
            phases.push(',');
        }
        write!(
            phases,
            "{{\"name\":{},\"count\":{},\"total_us\":{}}}",
            json_str(p.name),
            p.count,
            p.total_ns / 1_000,
        )
        .unwrap();
    }
    format!(
        "{{\"file\":{},\"ok\":{},\"files_in_closure\":{},\
         \"stats\":{{\"constraints\":{},\"kvars\":{},\"smt_queries\":{},\
         \"obligations_discharged\":{},\"bundles\":{},\"bundles_reused\":{},\
         \"diagnostics\":{},\"lints\":{}}},\
         \"bundles\":[{bundles}],\"phases\":[{phases}],\
         \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}},\
         \"time_us\":{}}}",
        json_str(file),
        result.ok(),
        report.merged.files.len(),
        stats.constraints,
        stats.kvars,
        stats.smt_queries,
        stats.obligations_discharged,
        stats.bundles,
        stats.bundles_reused,
        result.diagnostics.len(),
        result.lints.len(),
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        elapsed.as_micros(),
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a per-phase accumulator as `name 1.2ms×3, ...` (name order).
fn phase_summary(acc: &BTreeMap<&'static str, (u64, u64)>) -> String {
    acc.iter()
        .map(|(name, (count, ns))| format!("{name} {:.1}ms\u{d7}{count}", *ns as f64 / 1e6))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders every diagnostic of a report against its owning file's own
/// text (a closure diagnostic may live in an imported file, not the
/// root).
fn print_rendered(report: &DocReport) {
    print!("{}", rendered(report));
}

fn rendered(report: &DocReport) -> String {
    let idxs: Vec<LineIndex> = report
        .merged
        .files
        .iter()
        .map(|f| LineIndex::new(&f.text))
        .collect();
    let mut out = String::new();
    for d in &report.outcome.result.diagnostics {
        let (fi, local) = report.merged.localize(d);
        let f = &report.merged.files[fi];
        out.push_str(&local.render_with(&f.name, &f.text, &idxs[fi]));
    }
    out
}

/// Renders a report's lint warnings rustc-style (empty string when the
/// lint pass is off or found nothing). Printed after the verdict line —
/// lints never change the verdict or the exit code.
fn rendered_lints(report: &DocReport) -> String {
    let idxs: Vec<LineIndex> = report
        .merged
        .files
        .iter()
        .map(|f| LineIndex::new(&f.text))
        .collect();
    let mut out = String::new();
    for d in &report.outcome.result.lints {
        let (fi, local) = report.merged.localize(d);
        let f = &report.merged.files[fi];
        out.push_str(&local.render_with(&f.name, &f.text, &idxs[fi]));
    }
    out
}

/// `--recursive` batch mode: one job per root file on a work-stealing
/// [`Pool`], each job running its own single-threaded [`Workspace`]
/// over one shared VC cache (verdicts are pure functions of the
/// canonical VC, so cross-thread sharing is sound). Per-file output is
/// buffered and printed in input order, byte-identical to the serial
/// loop's lines.
fn run_recursive(
    files: &[String],
    opts: CheckerOptions,
    quiet: bool,
    profile: Option<&str>,
    vc_cache_dir: Option<&str>,
) -> ! {
    if profile.is_some() {
        rsc_obs::set_enabled(true);
        rsc_obs::drain();
    }
    let pool = Pool::new(opts.effective_jobs());
    let cache = VcCache::shared_with_capacity(opts.effective_cache_capacity());
    // File-level parallelism replaces bundle-level parallelism.
    let mut inner = opts;
    inner.jobs = 1;
    let start = std::time::Instant::now();
    let jobs: Vec<_> = files
        .iter()
        .map(|file| {
            let file = file.clone();
            let cache = Arc::clone(&cache);
            let disk_dir = vc_cache_dir.map(str::to_string);
            // Returns (output text, verified, I/O error).
            move || -> (String, bool, bool) {
                let src = match std::fs::read_to_string(&file) {
                    Ok(s) => s,
                    Err(e) => {
                        return (format!("rsc: cannot read {file}: {e}\n"), false, true);
                    }
                };
                let t = std::time::Instant::now();
                let mut ws = Workspace::with_cache(inner, cache);
                if let Some(dir) = disk_dir {
                    ws = ws.persisting_to(dir);
                }
                let report = ws.check_one(&file, src);
                let elapsed = t.elapsed();
                let result = &report.outcome.result;
                let closure = report.merged.files.len();
                if result.ok() {
                    let mut out = String::new();
                    if !quiet {
                        let files_note = if closure > 1 {
                            format!(", {closure} files")
                        } else {
                            String::new()
                        };
                        out = format!(
                            "{file}: SAFE ({} constraints, {} κ-vars, {} SMT queries, \
                             {} bundles{files_note}, {:.0}% VC-cache hits, {:.0?})\n",
                            result.stats.constraints,
                            result.stats.kvars,
                            result.stats.smt_queries,
                            result.stats.bundles,
                            100.0 * result.stats.cache_hit_rate(),
                            elapsed
                        );
                    }
                    out.push_str(&rendered_lints(&report));
                    (out, true, false)
                } else {
                    let mut out = format!(
                        "{file}: UNSAFE ({} errors, {:.0?})\n",
                        result.diagnostics.len(),
                        elapsed
                    );
                    out.push_str(&rendered(&report));
                    out.push_str(&rendered_lints(&report));
                    (out, false, false)
                }
            }
        })
        .collect();
    let results = pool.run(jobs);
    if let Some(path) = profile {
        write_trace(path, &rsc_obs::drain().spans);
    }
    let mut failed = false;
    let mut io_err = false;
    for (text, ok, io) in &results {
        if *io {
            eprint!("{text}");
        } else {
            print!("{text}");
        }
        failed |= !ok && !io;
        io_err |= io;
    }
    if !quiet {
        let safe = results.iter().filter(|(_, ok, _)| *ok).count();
        println!(
            "checked {} files ({safe} safe) in {:.1?} on {} workers",
            files.len(),
            start.elapsed(),
            pool.workers()
        );
    }
    std::process::exit(if io_err {
        2
    } else if failed {
        1
    } else {
        0
    });
}

/// `rsc fuzz`: generate well-typed programs, break one obligation per
/// case, and run the four differential oracles. With
/// `--emit-workspace DIR`, instead materializes a ≥`--min-loc`-LOC
/// multi-file workspace for `rsc check --recursive`.
fn run_fuzz_cli(args: &[String]) -> ! {
    let mut cfg = FuzzConfig::default();
    let mut quiet = false;
    let mut emit: Option<std::path::PathBuf> = None;
    let mut min_loc = 20_000usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cases" => cfg.cases = fuzz_num(fuzz_val(args, &mut i, "--cases"), "--cases"),
            "--seed" => cfg.seed = fuzz_num(fuzz_val(args, &mut i, "--seed"), "--seed"),
            "--skip" => cfg.skip = fuzz_num(fuzz_val(args, &mut i, "--skip"), "--skip"),
            "--size" => cfg.size = fuzz_num(fuzz_val(args, &mut i, "--size"), "--size"),
            "--workspace-depth" => {
                cfg.workspace_depth = fuzz_num(
                    fuzz_val(args, &mut i, "--workspace-depth"),
                    "--workspace-depth",
                )
            }
            "--jobs" | "-j" => cfg.jobs = fuzz_num(fuzz_val(args, &mut i, "--jobs"), "--jobs"),
            "--emit-workspace" => emit = Some(fuzz_val(args, &mut i, "--emit-workspace").into()),
            "--min-loc" => min_loc = fuzz_num(fuzz_val(args, &mut i, "--min-loc"), "--min-loc"),
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other => {
                eprintln!("rsc fuzz: unknown flag {other}");
                print_usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(dir) = emit {
        match rsc_gen::emit_workspace(&dir, cfg.seed, min_loc, cfg.workspace_depth, 12) {
            Ok(s) => {
                println!(
                    "emitted {} files, {} LOC ({} clusters) under {}",
                    s.files,
                    s.loc,
                    s.clusters,
                    s.dir.display()
                );
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("rsc fuzz: cannot write {}: {e}", dir.display());
                std::process::exit(2);
            }
        }
    }

    let start = std::time::Instant::now();
    // Aggregate phase timings over every generated check (the per-phase
    // accumulator is deterministic in shape, wall-clock in values).
    rsc_obs::set_enabled(true);
    rsc_obs::drain();
    let heartbeat = (cfg.cases / 10).max(50);
    let summary = rsc_gen::run_fuzz(&cfg, |case, out| {
        let done = case + 1 - cfg.skip;
        if !quiet && done % heartbeat == 0 {
            println!(
                "[fuzz] {done}/{} cases, {} mutants, {} violations, {:.1?}",
                cfg.cases,
                out.mutants,
                out.violations.len(),
                start.elapsed()
            );
        }
    });

    let mut timing: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    rsc_obs::drain().accumulate_into(&mut timing);
    if !quiet && !timing.is_empty() {
        println!("fuzz timing: {}", phase_summary(&timing));
    }

    for v in &summary.violations {
        println!(
            "FAIL case {} ({} oracle) — replay: rsc fuzz --seed {} --skip {} --cases 1",
            v.case, v.oracle, v.seed, v.case
        );
        for line in v.detail.lines() {
            println!("  {line}");
        }
    }
    let kinds: Vec<String> = summary
        .kinds
        .iter()
        .map(|(k, n)| format!("{k}\u{d7}{n}"))
        .collect();
    println!(
        "fuzz: seed {}, {} cases, {} mutants [{}] in {:.1?}: {}",
        cfg.seed,
        summary.cases,
        summary.mutants,
        kinds.join(" "),
        start.elapsed(),
        if summary.violations.is_empty() {
            "all oracles passed".to_string()
        } else {
            format!("{} VIOLATIONS", summary.violations.len())
        }
    );
    std::process::exit(if summary.violations.is_empty() { 0 } else { 1 });
}

/// Fetches the value after a `rsc fuzz` flag, advancing the cursor.
fn fuzz_val<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    match args.get(*i) {
        Some(v) => v,
        None => {
            eprintln!("rsc fuzz: {flag} expects a value");
            std::process::exit(2);
        }
    }
}

fn fuzz_num<T: std::str::FromStr>(v: &str, flag: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("rsc fuzz: {flag} expects a number, got {v:?}");
        std::process::exit(2);
    })
}

/// Expands directory arguments to every `.rsc`/`.ts` file beneath them
/// (sorted); plain files pass through in argument order.
fn expand_files(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for a in args {
        let path = std::path::Path::new(a);
        if path.is_dir() {
            let mut found = Vec::new();
            collect_sources(path, &mut found);
            found.sort();
            if found.is_empty() {
                eprintln!("rsc: no .rsc/.ts files under {a}");
                std::process::exit(2);
            }
            out.extend(found);
        } else {
            out.push(a.clone());
        }
    }
    out
}

fn collect_sources(dir: &std::path::Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_sources(&p, out);
        } else if matches!(
            p.extension().and_then(|e| e.to_str()),
            Some("rsc") | Some("ts")
        ) {
            if let Some(s) = p.to_str() {
                out.push(s.to_string());
            }
        }
    }
}

/// Prints one watch-loop check: verdict, incremental reuse, timing.
fn report_watch(report: &DocReport, quiet: bool) {
    let incr = &report.outcome.incr;
    let file = &report.uri;
    let reuse = if incr.fast_path {
        "unchanged".to_string()
    } else {
        format!("{} reused / {} solved", incr.reused, incr.solved)
    };
    if report.outcome.result.ok() {
        if !quiet {
            println!(
                "[watch] {file}: SAFE ({} bundles, {reuse}, {}µs)",
                incr.bundles, incr.total_micros
            );
        }
    } else {
        println!(
            "[watch] {file}: UNSAFE ({} errors, {reuse}, {}µs)",
            report.outcome.result.diagnostics.len(),
            incr.total_micros
        );
        let multi = report.merged.files.len() > 1;
        for d in &report.outcome.result.diagnostics {
            let (fi, local) = report.merged.localize(d);
            if multi {
                println!("  [{}] {local}", report.merged.files[fi].name);
            } else {
                println!("  {local}");
            }
        }
    }
    let multi = report.merged.files.len() > 1;
    for d in &report.outcome.result.lints {
        let (fi, local) = report.merged.localize(d);
        if multi {
            println!("  [{}] {local}", report.merged.files[fi].name);
        } else {
            println!("  {local}");
        }
    }
}

/// Re-checks the watched roots through one persistent workspace
/// whenever any file in their import closures changes on disk. Polling
/// interval: `RSC_WATCH_POLL_MS` (default 150). For scripted runs,
/// `RSC_WATCH_MAX_CHECKS` bounds the number of document checks before
/// exiting (the exit code then reflects each document's last check).
fn run_watch(
    files: &[String],
    opts: CheckerOptions,
    quiet: bool,
    profile: Option<&str>,
    vc_cache_dir: Option<&str>,
) {
    let poll = std::env::var("RSC_WATCH_POLL_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(150);
    let max_checks = std::env::var("RSC_WATCH_MAX_CHECKS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    let mtime = |f: &str| std::fs::metadata(f).and_then(|m| m.modified()).ok();

    // The watch loop always collects phase timings: each drained batch
    // folds into a per-phase accumulator so a bounded run
    // (`RSC_WATCH_MAX_CHECKS`) can exit with an aggregate summary.
    rsc_obs::set_enabled(true);
    rsc_obs::drain();
    let mut timing: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    let mut spans: Vec<rsc_obs::SpanRecord> = Vec::new();
    let take_profile = |timing: &mut BTreeMap<&'static str, (u64, u64)>,
                        spans: &mut Vec<rsc_obs::SpanRecord>| {
        let p = rsc_obs::drain();
        p.accumulate_into(timing);
        if profile.is_some() {
            spans.extend(p.spans);
        }
    };

    let mut ws = Workspace::new(opts);
    if let Some(dir) = vc_cache_dir {
        ws = ws.persisting_to(dir);
    }
    let mut checks = 0u64;
    let mut verdicts: BTreeMap<String, bool> = BTreeMap::new();
    let exit = |verdicts: &BTreeMap<String, bool>,
                timing: &BTreeMap<&'static str, (u64, u64)>,
                spans: &[rsc_obs::SpanRecord]|
     -> ! {
        if !quiet && !timing.is_empty() {
            println!("[watch] timing: {}", phase_summary(timing));
        }
        if let Some(path) = profile {
            write_trace(path, spans);
        }
        std::process::exit(if verdicts.values().all(|&ok| ok) {
            0
        } else {
            1
        });
    };

    for file in files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rsc: cannot read {file}: {e}");
                std::process::exit(2);
            }
        };
        for report in ws.update(file, src) {
            verdicts.insert(report.uri.clone(), report.outcome.result.ok());
            report_watch(&report, quiet);
            checks += 1;
        }
        take_profile(&mut timing, &mut spans);
    }

    let mut seen: BTreeMap<String, Option<std::time::SystemTime>> = ws
        .watched_files()
        .iter()
        .map(|f| (f.clone(), mtime(f)))
        .collect();

    loop {
        if let Some(max) = max_checks {
            if checks >= max {
                exit(&verdicts, &timing, &spans);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(poll));
        // The poll set tracks the *current* closures: a newly added
        // import gets watched from the next iteration on.
        let watched = ws.watched_files();
        let mut changed: Vec<String> = Vec::new();
        for f in &watched {
            let now = mtime(f);
            match seen.get(f) {
                Some(prev) if *prev != now => changed.push(f.clone()),
                Some(_) => {}
                // Newly watched (an import added by the edit that was
                // just checked): record its mtime without re-checking —
                // the update that introduced it already covered it.
                None => {}
            }
            seen.insert(f.clone(), now);
        }
        seen.retain(|k, _| watched.contains(k));
        for f in &changed {
            let reports = if ws.contains(f) {
                match std::fs::read_to_string(f) {
                    Ok(src) => ws.update(f, src),
                    Err(e) => {
                        eprintln!("rsc: cannot read {f}: {e} (still watching)");
                        continue;
                    }
                }
            } else {
                // A dependency changed: re-check every root that
                // imports it (the closure re-reads the disk).
                ws.importers_of(f)
                    .into_iter()
                    .filter_map(|root| ws.recheck(&root))
                    .collect()
            };
            for report in reports {
                verdicts.insert(report.uri.clone(), report.outcome.result.ok());
                report_watch(&report, quiet);
                checks += 1;
            }
            take_profile(&mut timing, &mut spans);
        }
    }
}

fn parse_jobs(s: &str) -> usize {
    match s.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("rsc: --jobs expects a positive integer, got {s:?}");
            std::process::exit(2);
        }
    }
}

fn parse_cache_cap(s: &str) -> usize {
    match s.parse::<usize>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("rsc: --cache-cap expects a non-negative integer, got {s:?}");
            std::process::exit(2);
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: rsc [--no-path-sensitivity] [--no-prelude-qualifiers] \
         [--no-mined-qualifiers] [--no-vc-cache] [--no-incremental-smt] \
         [--no-absint] [--no-lints] [--vc-cache DIR] [--jobs N] [--quiet] \
         <file.rsc | dir>...\n\
         \u{20}      rsc serve            read NDJSON requests on stdin (load/edit/check,\n\
         \u{20}                           LSP didOpen/didChange), respond per line\n\
         \u{20}      rsc --watch <file>...  incremental re-check on every mtime change\n\
         \u{20}                           of the files or their imported dependencies\n\
         \u{20}      rsc check --recursive <dir>  batch-check every file in parallel\n\
         \u{20}                           (work-stealing pool, shared VC cache)\n\
         \u{20}      rsc fuzz [--cases N] [--seed S] [--skip K] [--size F]\n\
         \u{20}               [--workspace-depth D] [--jobs N]\n\
         \u{20}                           generate well-typed programs + mutants and\n\
         \u{20}                           run the differential oracles\n\
         \u{20}      rsc fuzz --emit-workspace <dir> [--min-loc N] [--seed S]\n\
         \u{20}                           materialize a large multi-file workspace\n\
         \n\
         Files may `import {{name}} from \"./other\"`; each root is checked\n\
         as its full import closure. Directories expand to their .rsc/.ts files.\n\
         \n\
         --jobs N  solve constraint bundles on N worker threads\n\
         \u{20}         (default: RSC_JOBS env var, else available cores, max 8)\n\
         --cache-cap N  bound the VC cache to ~N entries (LRU eviction;\n\
         \u{20}         default: RSC_CACHE_CAP env var, else unbounded)\n\
         --vc-cache DIR  persist solver verdicts to DIR across runs\n\
         \u{20}         (RSC_VC_CACHE env var; a warm re-check of unchanged\n\
         \u{20}         code reuses every bundle and solves 0 VCs)\n\
         --no-incremental-smt  solve each fixpoint query in a fresh SMT\n\
         \u{20}         context instead of per-constraint persistent ones\n\
         \u{20}         (ablation/debug; diagnostics are identical)\n\
         --no-absint  skip the abstract-interpretation pre-pass that\n\
         \u{20}         discharges obligations before SMT (ablation;\n\
         \u{20}         diagnostics are identical, more queries are issued)\n\
         --no-lints  suppress the dataflow lint warnings (L0001-L0004:\n\
         \u{20}         unreachable branch, tautological guard, dead\n\
         \u{20}         refinement, constant index out of bounds)\n\
         --profile FILE  write a Chrome trace-event profile of every phase\n\
         \u{20}         (open in Perfetto or chrome://tracing)\n\
         --stats-json  print a machine-readable per-phase/per-bundle report\n\
         \u{20}         on stdout (diagnostics then render on stderr)"
    );
}
