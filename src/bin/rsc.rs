//! The `rsc` command-line checker: verify `.rsc` files from the shell,
//! serve an editor session over stdin/stdout, or watch a file.
//!
//! ```text
//! cargo run --bin rsc -- benchmarks/navier-stokes.rsc
//! cargo run --bin rsc -- --no-path-sensitivity file.rsc
//! cargo run --bin rsc -- --jobs 4 benchmarks/*.rsc
//! cargo run --bin rsc -- serve          # NDJSON requests on stdin
//! cargo run --bin rsc -- --watch f.rsc  # incremental re-check on save
//! ```
//!
//! Rejections are rendered rustc-style, with the error code of the
//! failed obligation kind, a source excerpt, and a caret underline over
//! the blamed range (see `rsc_core::Diagnostic::render`).
//!
//! Both `serve` and `--watch` run a persistent [`rsc_incr::CheckSession`]:
//! after the first check, only the constraint bundles whose canonical
//! problem changed are re-solved (see `ARCHITECTURE.md`).
//!
//! Exit code 0 = verified, 1 = verification errors, 2 = usage/IO error.

use rsc_core::{check_program, CheckerOptions};
use rsc_incr::{CheckSession, Serve, SessionOutcome};

fn main() {
    let mut opts = CheckerOptions::default();
    let mut files: Vec<String> = Vec::new();
    let mut quiet = false;
    let mut want_jobs = false;
    let mut want_cache_cap = false;
    let mut serve = false;
    let mut watch = false;
    for arg in std::env::args().skip(1) {
        if want_jobs {
            want_jobs = false;
            opts.jobs = parse_jobs(&arg);
            continue;
        }
        if want_cache_cap {
            want_cache_cap = false;
            opts.cache_capacity = parse_cache_cap(&arg);
            continue;
        }
        match arg.as_str() {
            "serve" => serve = true,
            "--watch" | "-w" => watch = true,
            "--no-path-sensitivity" => opts.path_sensitivity = false,
            "--no-prelude-qualifiers" => opts.prelude_qualifiers = false,
            "--no-mined-qualifiers" => opts.mine_qualifiers = false,
            "--no-vc-cache" => opts.vc_cache = false,
            "--jobs" | "-j" => want_jobs = true,
            "--cache-cap" => want_cache_cap = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                print_usage();
                return;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => match other.strip_prefix("--jobs=") {
                Some(n) => opts.jobs = parse_jobs(n),
                None => match other.strip_prefix("--cache-cap=") {
                    Some(n) => opts.cache_capacity = parse_cache_cap(n),
                    None => {
                        eprintln!("rsc: unknown flag {other}");
                        print_usage();
                        std::process::exit(2);
                    }
                },
            },
        }
    }
    if want_jobs {
        eprintln!("rsc: --jobs expects a worker count");
        print_usage();
        std::process::exit(2);
    }
    if want_cache_cap {
        eprintln!("rsc: --cache-cap expects an entry count");
        print_usage();
        std::process::exit(2);
    }
    if serve {
        if watch || !files.is_empty() {
            eprintln!("rsc: serve takes no files (send load requests on stdin)");
            std::process::exit(2);
        }
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        if let Err(e) = Serve::run(opts, stdin.lock(), stdout.lock()) {
            eprintln!("rsc: serve I/O error: {e}");
            std::process::exit(2);
        }
        return;
    }
    if watch {
        if files.len() != 1 {
            eprintln!("rsc: --watch expects exactly one file");
            std::process::exit(2);
        }
        run_watch(&files[0], opts, quiet);
        return;
    }
    if files.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    let mut failed = false;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rsc: cannot read {file}: {e}");
                std::process::exit(2);
            }
        };
        let start = std::time::Instant::now();
        let result = check_program(&src, opts);
        let elapsed = start.elapsed();
        if result.ok() {
            if !quiet {
                println!(
                    "{file}: SAFE ({} constraints, {} κ-vars, {} SMT queries, \
                     {} bundles, {:.0}% VC-cache hits, {:.0?})",
                    result.stats.constraints,
                    result.stats.kvars,
                    result.stats.smt_queries,
                    result.stats.bundles,
                    100.0 * result.stats.cache_hit_rate(),
                    elapsed
                );
            }
        } else {
            failed = true;
            println!(
                "{file}: UNSAFE ({} errors, {:.0?})",
                result.diagnostics.len(),
                elapsed
            );
            let idx = rsc_core::LineIndex::new(&src);
            for d in &result.diagnostics {
                print!("{}", d.render_with(file, &src, &idx));
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// Prints one watch-loop check: verdict, incremental reuse, timing.
fn report_watch(file: &str, outcome: &SessionOutcome, quiet: bool) {
    let incr = &outcome.incr;
    let reuse = if incr.fast_path {
        "unchanged".to_string()
    } else {
        format!("{} reused / {} solved", incr.reused, incr.solved)
    };
    if outcome.result.ok() {
        if !quiet {
            println!(
                "[watch] {file}: SAFE ({} bundles, {reuse}, {}µs)",
                incr.bundles, incr.total_micros
            );
        }
    } else {
        println!(
            "[watch] {file}: UNSAFE ({} errors, {reuse}, {}µs)",
            outcome.result.diagnostics.len(),
            incr.total_micros
        );
        for d in &outcome.result.diagnostics {
            println!("  {d}");
        }
    }
}

/// Re-checks `file` through one persistent session whenever its mtime
/// changes. Polling interval: `RSC_WATCH_POLL_MS` (default 150). For
/// scripted runs, `RSC_WATCH_MAX_CHECKS` bounds the number of checks
/// before exiting (the exit code then reflects the last check).
fn run_watch(file: &str, opts: CheckerOptions, quiet: bool) {
    let poll = std::env::var("RSC_WATCH_POLL_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(150);
    let max_checks = std::env::var("RSC_WATCH_MAX_CHECKS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    let mtime = |f: &str| std::fs::metadata(f).and_then(|m| m.modified()).ok();

    let mut session = CheckSession::new(opts);
    let mut checks = 0u64;
    let mut last_ok;
    let mut seen = mtime(file);
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rsc: cannot read {file}: {e}");
            std::process::exit(2);
        }
    };
    let outcome = session.check(&src);
    report_watch(file, &outcome, quiet);
    last_ok = outcome.result.ok();
    checks += 1;

    loop {
        if let Some(max) = max_checks {
            if checks >= max {
                std::process::exit(if last_ok { 0 } else { 1 });
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(poll));
        let now = mtime(file);
        if now == seen {
            continue;
        }
        seen = now;
        match std::fs::read_to_string(file) {
            Ok(src) => {
                let outcome = session.check(&src);
                report_watch(file, &outcome, quiet);
                last_ok = outcome.result.ok();
                checks += 1;
            }
            Err(e) => eprintln!("rsc: cannot read {file}: {e} (still watching)"),
        }
    }
}

fn parse_jobs(s: &str) -> usize {
    match s.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("rsc: --jobs expects a positive integer, got {s:?}");
            std::process::exit(2);
        }
    }
}

fn parse_cache_cap(s: &str) -> usize {
    match s.parse::<usize>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("rsc: --cache-cap expects a non-negative integer, got {s:?}");
            std::process::exit(2);
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: rsc [--no-path-sensitivity] [--no-prelude-qualifiers] \
         [--no-mined-qualifiers] [--no-vc-cache] [--jobs N] [--quiet] <file.rsc>...\n\
         \u{20}      rsc serve            read NDJSON requests on stdin (load/edit/check),\n\
         \u{20}                           respond with diagnostics + timing per line\n\
         \u{20}      rsc --watch <file>   incremental re-check on every mtime change\n\
         \n\
         --jobs N  solve constraint bundles on N worker threads\n\
         \u{20}         (default: RSC_JOBS env var, else available cores, max 8)\n\
         --cache-cap N  bound the VC cache to ~N entries (LRU eviction;\n\
         \u{20}         default: RSC_CACHE_CAP env var, else unbounded)"
    );
}
