//! The `rsc` command-line checker: verify `.rsc` files (and their
//! import closures) from the shell, serve an editor session over
//! stdin/stdout, or watch a file set.
//!
//! ```text
//! cargo run --bin rsc -- benchmarks/navier-stokes.rsc
//! cargo run --bin rsc -- app.rsc lib.rsc        # multi-file roots
//! cargo run --bin rsc -- src/                   # directory mode
//! cargo run --bin rsc -- --no-path-sensitivity file.rsc
//! cargo run --bin rsc -- --jobs 4 benchmarks/*.rsc
//! cargo run --bin rsc -- serve          # NDJSON requests on stdin
//! cargo run --bin rsc -- --watch a.rsc b.rsc  # re-check on save
//! ```
//!
//! Files may `import {name} from "./other"`: each root is checked as
//! its full import closure (a merged program), through one shared
//! workspace so overlapping closures share the VC cache. Directory
//! arguments expand to every `.rsc`/`.ts` file beneath them, sorted.
//!
//! Rejections are rendered rustc-style, with the error code of the
//! failed obligation kind, a source excerpt, and a caret underline over
//! the blamed range — located in the owning *file* of the closure (see
//! `rsc_core::Diagnostic::render`).
//!
//! Both `serve` and `--watch` run a persistent [`rsc_incr::Workspace`]:
//! after the first check, only the constraint bundles whose canonical
//! problem changed are re-solved, per document (see `ARCHITECTURE.md`).
//! `--watch` polls every file in the watched documents' import
//! closures, so saving an imported dependency re-checks its importers.
//!
//! Exit code 0 = verified, 1 = verification errors, 2 = usage/IO error.

use std::collections::BTreeMap;

use rsc_core::{CheckerOptions, LineIndex};
use rsc_incr::{DocReport, Serve, Workspace};

fn main() {
    let mut opts = CheckerOptions::default();
    let mut args_files: Vec<String> = Vec::new();
    let mut quiet = false;
    let mut want_jobs = false;
    let mut want_cache_cap = false;
    let mut serve = false;
    let mut watch = false;
    for arg in std::env::args().skip(1) {
        if want_jobs {
            want_jobs = false;
            opts.jobs = parse_jobs(&arg);
            continue;
        }
        if want_cache_cap {
            want_cache_cap = false;
            opts.cache_capacity = parse_cache_cap(&arg);
            continue;
        }
        match arg.as_str() {
            "serve" => serve = true,
            "--watch" | "-w" => watch = true,
            "--no-path-sensitivity" => opts.path_sensitivity = false,
            "--no-prelude-qualifiers" => opts.prelude_qualifiers = false,
            "--no-mined-qualifiers" => opts.mine_qualifiers = false,
            "--no-vc-cache" => opts.vc_cache = false,
            "--jobs" | "-j" => want_jobs = true,
            "--cache-cap" => want_cache_cap = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                print_usage();
                return;
            }
            f if !f.starts_with('-') => args_files.push(f.to_string()),
            other => match other.strip_prefix("--jobs=") {
                Some(n) => opts.jobs = parse_jobs(n),
                None => match other.strip_prefix("--cache-cap=") {
                    Some(n) => opts.cache_capacity = parse_cache_cap(n),
                    None => {
                        eprintln!("rsc: unknown flag {other}");
                        print_usage();
                        std::process::exit(2);
                    }
                },
            },
        }
    }
    if want_jobs {
        eprintln!("rsc: --jobs expects a worker count");
        print_usage();
        std::process::exit(2);
    }
    if want_cache_cap {
        eprintln!("rsc: --cache-cap expects an entry count");
        print_usage();
        std::process::exit(2);
    }
    if serve {
        if watch || !args_files.is_empty() {
            eprintln!("rsc: serve takes no files (send load requests on stdin)");
            std::process::exit(2);
        }
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        if let Err(e) = Serve::run(opts, stdin.lock(), stdout.lock()) {
            eprintln!("rsc: serve I/O error: {e}");
            std::process::exit(2);
        }
        return;
    }
    let files = expand_files(&args_files);
    if watch {
        if files.is_empty() {
            eprintln!("rsc: --watch expects at least one file");
            std::process::exit(2);
        }
        run_watch(&files, opts, quiet);
        return;
    }
    if files.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    // One workspace for the whole batch: each root is checked as its
    // import closure, and overlapping closures share the VC cache.
    let mut ws = Workspace::new(opts);
    let mut failed = false;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rsc: cannot read {file}: {e}");
                std::process::exit(2);
            }
        };
        let start = std::time::Instant::now();
        let report = ws.check_one(file, src);
        let elapsed = start.elapsed();
        let result = &report.outcome.result;
        let closure = report.merged.files.len();
        if result.ok() {
            if !quiet {
                let files_note = if closure > 1 {
                    format!(", {closure} files")
                } else {
                    String::new()
                };
                println!(
                    "{file}: SAFE ({} constraints, {} κ-vars, {} SMT queries, \
                     {} bundles{files_note}, {:.0}% VC-cache hits, {:.0?})",
                    result.stats.constraints,
                    result.stats.kvars,
                    result.stats.smt_queries,
                    result.stats.bundles,
                    100.0 * result.stats.cache_hit_rate(),
                    elapsed
                );
            }
        } else {
            failed = true;
            println!(
                "{file}: UNSAFE ({} errors, {:.0?})",
                result.diagnostics.len(),
                elapsed
            );
            print_rendered(&report);
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// Renders every diagnostic of a report against its owning file's own
/// text (a closure diagnostic may live in an imported file, not the
/// root).
fn print_rendered(report: &DocReport) {
    let idxs: Vec<LineIndex> = report
        .merged
        .files
        .iter()
        .map(|f| LineIndex::new(&f.text))
        .collect();
    for d in &report.outcome.result.diagnostics {
        let (fi, local) = report.merged.localize(d);
        let f = &report.merged.files[fi];
        print!("{}", local.render_with(&f.name, &f.text, &idxs[fi]));
    }
}

/// Expands directory arguments to every `.rsc`/`.ts` file beneath them
/// (sorted); plain files pass through in argument order.
fn expand_files(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for a in args {
        let path = std::path::Path::new(a);
        if path.is_dir() {
            let mut found = Vec::new();
            collect_sources(path, &mut found);
            found.sort();
            if found.is_empty() {
                eprintln!("rsc: no .rsc/.ts files under {a}");
                std::process::exit(2);
            }
            out.extend(found);
        } else {
            out.push(a.clone());
        }
    }
    out
}

fn collect_sources(dir: &std::path::Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_sources(&p, out);
        } else if matches!(
            p.extension().and_then(|e| e.to_str()),
            Some("rsc") | Some("ts")
        ) {
            if let Some(s) = p.to_str() {
                out.push(s.to_string());
            }
        }
    }
}

/// Prints one watch-loop check: verdict, incremental reuse, timing.
fn report_watch(report: &DocReport, quiet: bool) {
    let incr = &report.outcome.incr;
    let file = &report.uri;
    let reuse = if incr.fast_path {
        "unchanged".to_string()
    } else {
        format!("{} reused / {} solved", incr.reused, incr.solved)
    };
    if report.outcome.result.ok() {
        if !quiet {
            println!(
                "[watch] {file}: SAFE ({} bundles, {reuse}, {}µs)",
                incr.bundles, incr.total_micros
            );
        }
    } else {
        println!(
            "[watch] {file}: UNSAFE ({} errors, {reuse}, {}µs)",
            report.outcome.result.diagnostics.len(),
            incr.total_micros
        );
        let multi = report.merged.files.len() > 1;
        for d in &report.outcome.result.diagnostics {
            let (fi, local) = report.merged.localize(d);
            if multi {
                println!("  [{}] {local}", report.merged.files[fi].name);
            } else {
                println!("  {local}");
            }
        }
    }
}

/// Re-checks the watched roots through one persistent workspace
/// whenever any file in their import closures changes on disk. Polling
/// interval: `RSC_WATCH_POLL_MS` (default 150). For scripted runs,
/// `RSC_WATCH_MAX_CHECKS` bounds the number of document checks before
/// exiting (the exit code then reflects each document's last check).
fn run_watch(files: &[String], opts: CheckerOptions, quiet: bool) {
    let poll = std::env::var("RSC_WATCH_POLL_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(150);
    let max_checks = std::env::var("RSC_WATCH_MAX_CHECKS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    let mtime = |f: &str| std::fs::metadata(f).and_then(|m| m.modified()).ok();

    let mut ws = Workspace::new(opts);
    let mut checks = 0u64;
    let mut verdicts: BTreeMap<String, bool> = BTreeMap::new();
    let exit = |verdicts: &BTreeMap<String, bool>| -> ! {
        std::process::exit(if verdicts.values().all(|&ok| ok) {
            0
        } else {
            1
        });
    };

    for file in files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rsc: cannot read {file}: {e}");
                std::process::exit(2);
            }
        };
        for report in ws.update(file, src) {
            verdicts.insert(report.uri.clone(), report.outcome.result.ok());
            report_watch(&report, quiet);
            checks += 1;
        }
    }

    let mut seen: BTreeMap<String, Option<std::time::SystemTime>> = ws
        .watched_files()
        .iter()
        .map(|f| (f.clone(), mtime(f)))
        .collect();

    loop {
        if let Some(max) = max_checks {
            if checks >= max {
                exit(&verdicts);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(poll));
        // The poll set tracks the *current* closures: a newly added
        // import gets watched from the next iteration on.
        let watched = ws.watched_files();
        let mut changed: Vec<String> = Vec::new();
        for f in &watched {
            let now = mtime(f);
            match seen.get(f) {
                Some(prev) if *prev != now => changed.push(f.clone()),
                Some(_) => {}
                // Newly watched (an import added by the edit that was
                // just checked): record its mtime without re-checking —
                // the update that introduced it already covered it.
                None => {}
            }
            seen.insert(f.clone(), now);
        }
        seen.retain(|k, _| watched.contains(k));
        for f in &changed {
            let reports = if ws.contains(f) {
                match std::fs::read_to_string(f) {
                    Ok(src) => ws.update(f, src),
                    Err(e) => {
                        eprintln!("rsc: cannot read {f}: {e} (still watching)");
                        continue;
                    }
                }
            } else {
                // A dependency changed: re-check every root that
                // imports it (the closure re-reads the disk).
                ws.importers_of(f)
                    .into_iter()
                    .filter_map(|root| ws.recheck(&root))
                    .collect()
            };
            for report in reports {
                verdicts.insert(report.uri.clone(), report.outcome.result.ok());
                report_watch(&report, quiet);
                checks += 1;
            }
        }
    }
}

fn parse_jobs(s: &str) -> usize {
    match s.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("rsc: --jobs expects a positive integer, got {s:?}");
            std::process::exit(2);
        }
    }
}

fn parse_cache_cap(s: &str) -> usize {
    match s.parse::<usize>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("rsc: --cache-cap expects a non-negative integer, got {s:?}");
            std::process::exit(2);
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: rsc [--no-path-sensitivity] [--no-prelude-qualifiers] \
         [--no-mined-qualifiers] [--no-vc-cache] [--jobs N] [--quiet] <file.rsc | dir>...\n\
         \u{20}      rsc serve            read NDJSON requests on stdin (load/edit/check,\n\
         \u{20}                           LSP didOpen/didChange), respond per line\n\
         \u{20}      rsc --watch <file>...  incremental re-check on every mtime change\n\
         \u{20}                           of the files or their imported dependencies\n\
         \n\
         Files may `import {{name}} from \"./other\"`; each root is checked\n\
         as its full import closure. Directories expand to their .rsc/.ts files.\n\
         \n\
         --jobs N  solve constraint bundles on N worker threads\n\
         \u{20}         (default: RSC_JOBS env var, else available cores, max 8)\n\
         --cache-cap N  bound the VC cache to ~N entries (LRU eviction;\n\
         \u{20}         default: RSC_CACHE_CAP env var, else unbounded)"
    );
}
