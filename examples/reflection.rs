//! Reflection and interface hierarchies (§4.2–§4.3): `typeof` tests
//! narrow unions through the `ttag` measure, and bit-vector flag masks
//! prove downcasts over the TypeScript compiler's own `TypeFlags`
//! hierarchy safe.
//!
//! ```text
//! cargo run -p rsc-core --example reflection
//! ```

use rsc_core::{check_program, CheckerOptions};

fn main() {
    // §4.2: typeof narrows number + undefined.
    let typeof_prog = r#"
        function incr(x: number + undefined): number {
            var r = 1;
            if (typeof x === "number") { r = r + x; }
            return r;
        }
    "#;
    let r = check_program(typeof_prog, CheckerOptions::default());
    println!("typeof narrowing verifies: {}", r.ok());

    let unguarded = r#"
        function bad(x: number + undefined): number { return x + 1; }
    "#;
    let r = check_program(unguarded, CheckerOptions::default());
    println!(
        "unguarded arithmetic on number+undefined rejected: {}",
        !r.ok()
    );

    // §4.3: the tsc TypeFlags hierarchy with mask-based downcasts.
    let hierarchy = r#"
        enum TypeFlags {
            Any = 0x00000001,
            String = 0x00000002,
            Class = 0x00000400,
            Interface = 0x00000800,
            Reference = 0x00001000,
            Object = 0x00001C00,
        }
        type flagsTy = {v: TypeFlags |
            (mask(v, 0x00001C00) => impl(this, ObjectType)) };

        interface Type {
            immutable flags : flagsTy;
            id : number;
        }
        interface ObjectType extends Type {
            memberCount : number;
        }

        function getPropertiesOfType(t: Type): number {
            if (t.flags & TypeFlags.Object) {
                var o = <ObjectType> t;
                return o.memberCount;
            }
            return 0;
        }

        function classOnly(t: Type): number {
            if (t.flags & TypeFlags.Class) {
                var o = <ObjectType> t;
                return o.memberCount;
            }
            return 0;
        }
    "#;
    let r = check_program(hierarchy, CheckerOptions::default());
    println!("flag-guarded downcasts verify: {}", r.ok());
    for d in &r.diagnostics {
        println!("  {d}");
    }

    // Wrong mask: String does not witness ObjectType membership.
    let bad = hierarchy.replace("t.flags & TypeFlags.Class", "t.flags & TypeFlags.String");
    let r = check_program(&bad, CheckerOptions::default());
    println!("wrong-mask downcast rejected: {}", !r.ok());
}
