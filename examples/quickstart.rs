//! Quickstart: verify a tiny refined program and inspect the result.
//!
//! ```text
//! cargo run -p rsc-core --example quickstart
//! ```

use rsc_core::{check_program, CheckerOptions};

fn main() {
    let src = r#"
        type nat = {v: number | 0 <= v};

        function abs(x: number): nat {
            if (x < 0) { return 0 - x; }
            return x;
        }

        function clamp(x: number, lo: number, hi: {v: number | lo <= v}): {v: number | lo <= v && v <= hi} {
            if (x < lo) { return lo; }
            if (x > hi) { return hi; }
            return x;
        }
    "#;

    let result = check_program(src, CheckerOptions::default());
    println!("verified: {}", result.ok());
    println!(
        "κ-variables: {}, constraints: {}, SMT queries: {}",
        result.stats.kvars, result.stats.constraints, result.stats.smt_queries
    );
    for d in &result.diagnostics {
        println!("  {d}");
    }

    // A broken variant: the negation is missing, so `abs` can return a
    // negative number.
    let broken = src.replace("return 0 - x;", "return x;");
    let result = check_program(&broken, CheckerOptions::default());
    println!("\nbroken variant rejected: {}", !result.ok());
    for d in &result.diagnostics {
        println!("  {d}");
    }
}
