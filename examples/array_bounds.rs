//! Array-bounds verification (§2.1.1 of the paper): `head`, `head0`,
//! and the polymorphic `reduce`/`minIndex` pair from Figure 1, with the
//! loop invariant and the callback's index type inferred by the Liquid
//! fixpoint — no loop annotations anywhere.
//!
//! ```text
//! cargo run -p rsc-core --example array_bounds
//! ```

use rsc_core::{check_program, CheckerOptions};

const PROGRAM: &str = r#"
    type nat = {v: number | 0 <= v};
    type idx<a> = {v: nat | v < len(a)};
    type NEArray<T> = {v: T[] | 0 < len(v)};

    function head(arr: NEArray<number>): number {
        return arr[0];
    }

    function head0(a: number[]): number {
        if (0 < a.length) { return head(a); }
        return 0;
    }

    function reduce<A, B>(a: A[], f: (acc: B, cur: A, i: idx<a>) => B, x: B): B {
        var res = x, i;
        for (i = 0; i < a.length; i++) {
            res = f(res, a[i], i);
        }
        return res;
    }

    function minIndex(a: number[]): number {
        if (a.length <= 0) { return -1; }
        function step(min, cur, i) {
            return cur < a[min] ? i : min;
        }
        return reduce(a, step, 0);
    }
"#;

fn main() {
    let r = check_program(PROGRAM, CheckerOptions::default());
    println!("Figure 1 (reduce/minIndex) verifies: {}", r.ok());
    for d in &r.diagnostics {
        println!("  {d}");
    }

    // The paper's point: without the branch guard, `head(a)` is unsafe.
    let bad = PROGRAM.replace(
        "if (0 < a.length) { return head(a); }\n        return 0;",
        "return head(a);",
    );
    let r = check_program(&bad, CheckerOptions::default());
    println!("unguarded head(a) rejected: {}", !r.ok());

    // And the classic off-by-one: `i <= a.length` breaks the callback's
    // index contract.
    let bad = PROGRAM.replace("i < a.length", "i <= a.length");
    let r = check_program(&bad, CheckerOptions::default());
    println!("off-by-one loop rejected: {}", !r.ok());
}
