//! Value-based overloading via two-phase typing (§2.1.2): `$reduce`
//! dispatches on `arguments.length`; each conjunct of the intersection is
//! checked separately with the other conjunct's branch proven dead.
//!
//! ```text
//! cargo run -p rsc-core --example overloads
//! ```

use rsc_core::{check_program, CheckerOptions};

const PROGRAM: &str = r#"
    type nat = {v: number | 0 <= v};
    type idx<a> = {v: nat | v < len(a)};
    type NEArray<T> = {v: T[] | 0 < len(v)};

    function reduce<A, B>(a: A[], f: (acc: B, cur: A, i: idx<a>) => B, x: B): B {
        var res = x, i;
        for (i = 0; i < a.length; i++) {
            res = f(res, a[i], i);
        }
        return res;
    }

    sig $reduce : <A>(a: NEArray<A>, f: (A, A, idx<a>) => A) => A;
    sig $reduce : <A, B>(a: A[], f: (B, A, idx<a>) => B, x: B) => B;
    function $reduce(a, f, x) {
        if (arguments.length === 3) { return reduce(a, f, x); }
        return reduce(a, f, a[0]);
    }
"#;

fn main() {
    let r = check_program(PROGRAM, CheckerOptions::default());
    println!("$reduce (2 overloads) verifies: {}", r.ok());
    for d in &r.diagnostics {
        println!("  {d}");
    }

    // Remove the arity dispatch: the `a[0]` in the 3-argument overload is
    // no longer dead, and `a` may be empty there.
    let bad = PROGRAM.replace(
        "if (arguments.length === 3) { return reduce(a, f, x); }\n        return reduce(a, f, a[0]);",
        "return reduce(a, f, a[0]);",
    );
    let r = check_program(&bad, CheckerOptions::default());
    println!("without the arguments.length test: rejected = {}", !r.ok());
}
