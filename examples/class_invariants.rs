//! Class invariants over immutable fields (§2.2.3, Figure 2): the `Field`
//! class's grid is sized by its immutable width/height; the constructor
//! establishes the invariant atomically and methods rely on it. The
//! paper's OK/BAD call pairs behave exactly as in §2.2.3.
//!
//! ```text
//! cargo run -p rsc-core --example class_invariants
//! ```

use rsc_core::{check_program, CheckerOptions};

const CLASS: &str = r#"
    type nat = {v: number | 0 <= v};
    type pos = {v: number | 0 < v};
    type ArrayN<T, n> = {v: T[] | len(v) = n};
    type grid<w, h> = ArrayN<number, (w + 2) * (h + 2)>;
    type okW = {v: nat | v <= this.w};
    type okH = {v: nat | v <= this.h};

    declare gridIdxThm : (x: nat, y: nat, w: {v: number | x <= v}, h: {v: number | y <= v})
        => {v: boolean | 0 <= x + 1 + (y + 1) * (w + 2)
                      && x + 1 + (y + 1) * (w + 2) < (w + 2) * (h + 2)};

    class Field {
        immutable w : pos;
        immutable h : pos;
        dens : grid<this.w, this.h>;

        constructor(w: pos, h: pos, d: grid<w, h>) {
            this.h = h; this.w = w; this.dens = d;
        }

        setDensity(x: okW, y: okH, d: number) {
            var t = gridIdxThm(x, y, this.w, this.h);
            var rowS = this.w + 2;
            this.dens[x + 1 + (y + 1) * rowS] = d;
        }

        reset(d: grid<this.w, this.h>) {
            this.dens = d;
        }
    }
"#;

fn check(tail: &str) -> bool {
    check_program(&format!("{CLASS}{tail}"), CheckerOptions::default()).ok()
}

fn main() {
    // The paper's OK/BAD pairs, in order.
    let cases = [
        (
            "new Field(3,7,new Array(45))",
            "var z = new Field(3, 7, new Array(45));",
            true,
        ),
        (
            "new Field(3,7,new Array(44))",
            "var q = new Field(3, 7, new Array(44));",
            false,
        ),
        (
            "z.setDensity(2,5,-5)",
            "var z = new Field(3, 7, new Array(45)); z.setDensity(2, 5, 0 - 5);",
            true,
        ),
        (
            "z.setDensity(5,2,..) -- x exceeds width",
            "var z = new Field(3, 7, new Array(45)); z.setDensity(5, 2, 0);",
            false,
        ),
        (
            "z.reset(new Array(45))",
            "var z = new Field(3, 7, new Array(45)); z.reset(new Array(45));",
            true,
        ),
        (
            "z.reset(new Array(5))",
            "var z = new Field(3, 7, new Array(45)); z.reset(new Array(5));",
            false,
        ),
    ];
    for (label, tail, expect_ok) in cases {
        let got = check(tail);
        let verdict = if got == expect_ok {
            "as expected"
        } else {
            "UNEXPECTED"
        };
        println!(
            "{label:<45} -> {} ({verdict})",
            if got { "verified" } else { "rejected" }
        );
    }
}
