/*
 * transducers — the reduce-centric kernel of the transducers library as
 * RSC (§2.1 of the paper). Everything is built on one verified `reduce`
 * whose callback receives a proven-in-bounds index, plus the
 * value-based overloading idiom (§2.1.2): the seedless variant demands
 * a nonempty input, dispatched on arguments.length.
 */

type nat = {v: number | 0 <= v};
type pos = {v: number | 0 < v};
type idx<a> = {v: nat | v < len(a)};
type NEArray<T> = {v: T[] | 0 < len(v)};
type sameLen<a> = {v: number[] | len(v) = len(a)};

/* The one true fold: f also receives the (in-bounds) element index. */
function reduce<A, B>(a: A[], f: (acc: B, cur: A, i: idx<a>) => B, x: B): B {
    var res = x;
    var i;
    for (i = 0; i < a.length; i++) {
        res = f(res, a[i], i);
    }
    return res;
}

/* Value-overloaded reduce: without a seed the array must be nonempty. */
sig $reduce : <A>(a: NEArray<A>, f: (A, A, idx<a>) => A) => A;
sig $reduce : <A, B>(a: A[], f: (B, A, idx<a>) => B, x: B) => B;
function $reduce(a, f, x) {
    if (arguments.length === 3) { return reduce(a, f, x); }
    return reduce(a, f, a[0]);
}

/* map as a transducer over the fold: out[i] = base + cur * scale. */
function mapAffine(a: number[], scale: number, base: number): sameLen<a> {
    var out = new Array(a.length);
    var i;
    for (i = 0; i < a.length; i++) {
        out[i] = base + a[i] * scale;
    }
    return out;
}

/* filter (keep positives), compacted in place; returns the kept count. */
function keepPositives(a: number[], out: sameLen<a>): nat {
    var kept = 0;
    var i;
    for (i = 0; i < a.length; i++) {
        if (0 < a[i]) {
            if (kept < out.length) {
                out[kept] = a[i];
                kept = kept + 1;
            }
        }
    }
    return kept;
}

/* Reducing steps fed to reduce / $reduce. */
function addStep(acc: number, cur: number, i: number): number {
    return acc + cur;
}

function maxStep(acc: number, cur: number, i: number): number {
    return acc < cur ? cur : acc;
}

/* take(n): folds only the first n elements via an index guard. */
function takeSum(a: number[], n: number): number {
    var total = 0;
    var i;
    for (i = 0; i < a.length; i++) {
        if (i < n) {
            total = total + a[i];
        }
    }
    return total;
}

/* Composes the pipeline: map → filter → fold, both overload arities. */
function demo(): number {
    var src = new Array(8);
    var i;
    for (i = 0; i < src.length; i++) {
        src[i] = i * 5 - 14;
    }
    var mapped = mapAffine(src, 3, 1);
    var kept = new Array(8);
    var n = keepPositives(mapped, kept);
    var total = $reduce(mapped, addStep, 100);
    var top = $reduce(mapped, maxStep);
    return total + top + n + takeSum(kept, n);
}
