/*
 * d3-arrays — bounds-verified ports of the d3-array kernels checked in
 * the paper's evaluation (§5, Fig. 6): min, max, extent, scan (argmin),
 * sum, cumsum and range. Every array access is proved in bounds; the
 * nonempty precondition that d3 documents informally becomes the
 * NEArray refinement.
 */

type nat = {v: number | 0 <= v};
type pos = {v: number | 0 < v};
type idx<a> = {v: nat | v < len(a)};
type NEArray<T> = {v: T[] | 0 < len(v)};
type ArrayN<T, n> = {v: T[] | len(v) = n};
type sameLen<a> = {v: number[] | len(v) = len(a)};

/* d3.min: smallest element; requires a nonempty input. */
function min(a: NEArray<number>): number {
    var best = a[0];
    var i;
    for (i = 1; i < a.length; i++) {
        if (a[i] < best) { best = a[i]; }
    }
    return best;
}

/* d3.max: largest element; requires a nonempty input. */
function max(a: NEArray<number>): number {
    var top = a[0];
    var i;
    for (i = 1; i < a.length; i++) {
        if (top < a[i]) { top = a[i]; }
    }
    return top;
}

/* d3.extent, collapsed to the width of the [min, max] interval. */
function extentWidth(a: NEArray<number>): number {
    return max(a) - min(a);
}

/* d3.scan: index of the smallest element. */
function scan(a: NEArray<number>): idx<a> {
    var k = 0;
    var i;
    for (i = 1; i < a.length; i++) {
        if (a[i] < a[k]) { k = i; }
    }
    return k;
}

/* d3.sum over an arbitrary (possibly empty) array. */
function sum(a: number[]): number {
    var s = 0;
    var i;
    for (i = 0; i < a.length; i++) {
        s = s + a[i];
    }
    return s;
}

/* d3.cumsum: running totals, same length as the input. */
function cumsum(a: number[]): sameLen<a> {
    var out = new Array(a.length);
    var s = 0;
    var i;
    for (i = 0; i < a.length; i++) {
        s = s + a[i];
        out[i] = s;
    }
    return out;
}

/* d3.range(n): [0, 1, …, n - 1]. */
function range(n: nat): ArrayN<number, n> {
    var out = new Array(n);
    var i;
    for (i = 0; i < n; i++) {
        out[i] = i;
    }
    return out;
}

/* Exercises every kernel on a small deterministic dataset. */
function demo(): number {
    var data = range(6);
    var i;
    for (i = 0; i < data.length; i++) {
        data[i] = data[i] * 3 - 7;
    }
    var lo = min(data);
    var hi = max(data);
    var width = extentWidth(data);
    var total = sum(data);
    var c = cumsum(data);
    var last = 0;
    if (0 < c.length) {
        last = c[c.length - 1];
    }
    return lo + hi + width + total + scan(data) + last;
}
