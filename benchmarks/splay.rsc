/*
 * splay — the Octane splay-tree workload as RSC, over the flattened
 * representation the paper's port uses: keys live in a fixed-capacity
 * array ordered by recency, and "splaying" is the move-to-front
 * rotation. The class invariant ties the live size to the capacity, so
 * every rotation index is proved in bounds.
 */

type nat = {v: number | 0 <= v};
type pos = {v: number | 0 < v};
type idx<a> = {v: nat | v < len(a)};
type ArrayN<T, n> = {v: T[] | len(v) = n};

qualif UpTo(v: number, j: number): v <= j;

/* Rotates keys[0..j] right by one, moving keys[j] to the front. */
function splayToFront(keys: number[], j: idx<keys>): number {
    var key = keys[j];
    var i;
    for (i = j; 0 < i; i = i - 1) {
        keys[i] = keys[i - 1];
    }
    keys[0] = key;
    return key;
}

/* Linear probe for a key; returns its index, or -1 when absent. */
function findKey(keys: number[], size: number, key: number): number {
    var i;
    for (i = 0; i < keys.length; i++) {
        if (i < size) {
            if (keys[i] === key) { return i; }
        }
    }
    return 0 - 1;
}

/* The splay cache: a bounded recency-ordered key store. */
class SplayCache {
    immutable capacity : pos;
    keys : ArrayN<number, this.capacity>;
    size : {v: nat | v <= this.capacity};
    hits : nat;
    misses : nat;

    constructor(capacity: pos, backing: ArrayN<number, capacity>) {
        this.capacity = capacity;
        this.keys = backing;
        this.size = 0;
        this.hits = 0;
        this.misses = 0;
    }

    /* Lookup with splaying: hits move to the front. */
    access(key: number): number {
        var ks = this.keys;
        var at = findKey(ks, this.size, key);
        if (0 <= at) {
            if (at < ks.length) {
                this.hits = this.hits + 1;
                return splayToFront(ks, at);
            }
        }
        this.misses = this.misses + 1;
        return this.insert(key);
    }

    /* Inserts at the front, evicting the least recent on overflow. */
    insert(key: number): number {
        var s = this.size;
        if (s < this.capacity) {
            this.size = s + 1;
            s = s + 1;
        }
        var ks = this.keys;
        if (0 < s) {
            var last = s - 1;
            if (last < ks.length) {
                var t = splayToFront(ks, last);
                ks[0] = key;
            }
        }
        return key;
    }

    @ReadOnly score(): number {
        return this.hits * 10 - this.misses;
    }
}

/* The Octane access pattern in miniature: skewed repeated lookups. */
function demo(): number {
    var cache = new SplayCache(8, new Array(8));
    var round;
    for (round = 0; round < 5; round++) {
        var k;
        for (k = 0; k < 12; k++) {
            var key = k * k - k * 3 + 1;
            var got = cache.access(key);
        }
    }
    return cache.score() + cache.access(7);
}
