/*
 * tsc-checker — the TypeScript-compiler fragment of the paper's corpus
 * (§4.3): the TypeFlags hierarchy is encoded as bit-vector masks, the
 * flags field carries the invariant linking each mask to the interface
 * it witnesses, and downcasts are proved safe from `flags & mask`
 * guards alone. The demo classifies a numeric worklist the way the
 * checker's scanner buckets token codes.
 */

type nat = {v: number | 0 <= v};
type pos = {v: number | 0 < v};
type idx<a> = {v: nat | v < len(a)};
type NEArray<T> = {v: T[] | 0 < len(v)};

enum TypeFlags {
    Any = 0x00000001,
    String = 0x00000002,
    Number = 0x00000004,
    Class = 0x00000400,
    Interface = 0x00000800,
    Reference = 0x00001000,
    Object = 0x00001C00,
}

/* The §4.3 invariant: each mask bit witnesses a hierarchy membership. */
type flagsTy = {v: TypeFlags |
       (mask(v, 0x00000001) => impl(this, AnyType))
    && (mask(v, 0x00001C00) => impl(this, ObjectType)) };

interface Type {
    immutable flags : flagsTy;
    id : number;
}
interface AnyType extends Type { }
interface ObjectType extends Type {
    otMembers : number;
}
interface InterfaceType extends ObjectType {
    baseCount : number;
}

/* The guarded downcast the paper's Figure 9 walks through. */
function getProperties(t: Type): number {
    if (t.flags & TypeFlags.Object) {
        var o = <ObjectType> t;
        return o.otMembers;
    }
    return 0;
}

/* Class bit ⊆ Object mask: the subset test also justifies the cast. */
function getClassMembers(t: Type): number {
    if (t.flags & TypeFlags.Class) {
        var o = <ObjectType> t;
        return o.otMembers;
    }
    return 0 - 1;
}

/* Interface types refine object types: two-step narrowing. */
function countBases(t: Type): number {
    if (t.flags & TypeFlags.Interface) {
        var o = <ObjectType> t;
        return o.otMembers;
    }
    return 0;
}

/* ---- The scanner-flavored numeric part driven by demo(). ---- */

/* Buckets a token code the way the scanner switches on char classes. */
function bucket(code: number): number {
    if (code < 0) { return 0; }
    if (code < 10) { return 1; }
    if (code < 100) { return 2; }
    return 3;
}

/* Counts codes falling in each of the four buckets. */
function histogram(codes: number[]): number {
    var counts = new Array(4);
    var i;
    for (i = 0; i < codes.length; i++) {
        var b = bucket(codes[i]);
        if (0 <= b) {
            if (b < counts.length) {
                counts[b] = counts[b] + 1;
            }
        }
    }
    return counts[0] * 1000 + counts[1] * 100 + counts[2] * 10 + counts[3];
}

/* Scans for the first negative code — a malformed token. */
function firstBad(codes: number[]): number {
    var i;
    for (i = 0; i < codes.length; i++) {
        if (codes[i] < 0) { return i; }
    }
    return 0 - 1;
}

/* Checks the worklist and folds everything into one checksum. */
function demo(codes: number[]): number {
    var h = histogram(codes);
    var bad = firstBad(codes);
    var total = 0;
    var i;
    for (i = 0; i < codes.length; i++) {
        if (0 <= codes[i]) {
            total = total + codes[i];
        }
    }
    return h + bad + total;
}
