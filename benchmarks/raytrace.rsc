/*
 * raytrace — the vector kernel of the Octane/V8 raytracer as RSC: all
 * vectors are length-3 arrays (the vec3 refinement), so every component
 * access and every destination write is proved in bounds, and the scene
 * is a structure-of-arrays whose columns are proved the same length.
 */

type nat = {v: number | 0 <= v};
type pos = {v: number | 0 < v};
type idx<a> = {v: nat | v < len(a)};
type ArrayN<T, n> = {v: T[] | len(v) = n};
type vec3 = ArrayN<number, 3>;
type col<a> = {v: number[] | len(v) = len(a)};

/* Allocates a fresh vector. */
function mkvec(x: number, y: number, z: number): vec3 {
    var out = new Array(3);
    out[0] = x;
    out[1] = y;
    out[2] = z;
    return out;
}

/* Component-wise sum into a caller-provided destination. */
function add3(a: vec3, b: vec3, out: vec3): vec3 {
    out[0] = a[0] + b[0];
    out[1] = a[1] + b[1];
    out[2] = a[2] + b[2];
    return out;
}

/* Component-wise difference. */
function sub3(a: vec3, b: vec3, out: vec3): vec3 {
    out[0] = a[0] - b[0];
    out[1] = a[1] - b[1];
    out[2] = a[2] - b[2];
    return out;
}

/* Scalar multiply. */
function scale3(a: vec3, k: number, out: vec3): vec3 {
    out[0] = a[0] * k;
    out[1] = a[1] * k;
    out[2] = a[2] * k;
    return out;
}

/* Dot product. */
function dot3(a: vec3, b: vec3): number {
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

/* Squared norm — what the hit tests compare against radii. */
function norm2(a: vec3): number {
    return dot3(a, a);
}

/*
 * Sphere-hit predicate on squared distances: a ray from `orig` along
 * `dir` (sampled at t = 1) is "near" the sphere at center c with squared
 * radius r2 when |orig + dir - c|² ≤ r2.
 */
function nearHit(orig: vec3, dir: vec3, c: vec3, r2: number): boolean {
    var p = add3(orig, dir, mkvec(0, 0, 0));
    var d = sub3(p, c, mkvec(0, 0, 0));
    return norm2(d) <= r2;
}

/*
 * The scene is a structure of arrays: cx/cy/cz hold sphere centers and
 * r2 the squared radii. The column refinements tie every length to cx.
 */
function castRay(cx: number[], cy: col<cx>, cz: col<cx>, r2: col<cx>,
                 orig: vec3, dir: vec3): number {
    var hits = 0;
    var i;
    for (i = 0; i < cx.length; i++) {
        if (nearHit(orig, dir, mkvec(cx[i], cy[i], cz[i]), r2[i])) {
            hits = hits + 1;
        }
    }
    return hits;
}

/* Renders a tiny deterministic scene. */
function demo(): number {
    var cx = new Array(4);
    var cy = new Array(4);
    var cz = new Array(4);
    var r2 = new Array(4);
    var i;
    for (i = 0; i < cx.length; i++) {
        cx[i] = i * 2 - 3;
        cy[i] = i - 1;
        cz[i] = 2;
        r2[i] = 9 + i;
    }
    var orig = mkvec(0, 0, 0);
    var dir = mkvec(0, 0, 1);
    var sum = 0;
    var steps;
    for (steps = 0; steps < 3; steps++) {
        sum = sum + castRay(cx, cy, cz, r2, orig, scale3(dir, steps, mkvec(0, 0, 0)));
    }
    return sum;
}
