/*
 * richards — the Octane OS-scheduler kernel as RSC. Task control blocks
 * live in fixed-size parallel arrays indexed by task id; the id
 * refinement (idx over the state table) makes every queue operation and
 * every handler dispatch provably in bounds.
 */

type nat = {v: number | 0 <= v};
type pos = {v: number | 0 < v};
type idx<a> = {v: nat | v < len(a)};
type col<a> = {v: number[] | len(v) = len(a)};

/* Task states. */
declare IDLE : {v: number | v = 0};
declare RUNNABLE : {v: number | v = 1};
declare BLOCKED : {v: number | v = 2};

/* Looks up the handler routine for a task — the hot dispatch site. */
function dispatch(handlers: number[], id: idx<handlers>): number {
    return handlers[id];
}

/* Index of the first RUNNABLE task, or -1 when all are idle/blocked. */
function nextRunnable(state: number[]): number {
    var i;
    for (i = 0; i < state.length; i++) {
        if (state[i] === 1) { return i; }
    }
    return 0 - 1;
}

/*
 * One scheduler step: pick a runnable task, "run" its handler (here a
 * small arithmetic stand-in), update its packet count, then rotate its
 * state. Returns the handler value that ran, or -1 when idle.
 */
function schedulerStep(state: number[], handlers: col<state>,
                       packets: col<state>): number {
    var id = nextRunnable(state);
    if (id < 0) { return 0 - 1; }
    if (state.length <= id) { return 0 - 1; }
    var h = dispatch(handlers, id);
    if (0 < packets[id]) {
        packets[id] = packets[id] - 1;
        state[id] = 2;
    } else {
        state[id] = 0;
    }
    return h;
}

/* Unblocks every BLOCKED task (device interrupt sweep). */
function unblockAll(state: number[]): number {
    var woken = 0;
    var i;
    for (i = 0; i < state.length; i++) {
        if (state[i] === 2) {
            state[i] = 1;
            woken = woken + 1;
        }
    }
    return woken;
}

/* Runs the scheduler for a bounded number of rounds. */
function runScheduler(state: number[], handlers: col<state>,
                      packets: col<state>, rounds: nat): number {
    var total = 0;
    var r;
    for (r = 0; r < rounds; r++) {
        var h = schedulerStep(state, handlers, packets);
        if (h < 0) {
            var woken = unblockAll(state);
            if (woken === 0) { return total; }
        } else {
            total = total + h;
        }
    }
    return total;
}

/* Builds the classic 6-task Richards configuration and runs it. */
function demo(): number {
    var n = 6;
    var state = new Array(6);
    var handlers = new Array(6);
    var packets = new Array(6);
    var i;
    for (i = 0; i < state.length; i++) {
        state[i] = 1;
        handlers[i] = 10 + i;
        packets[i] = 2;
    }
    return runScheduler(state, handlers, packets, 40);
}
