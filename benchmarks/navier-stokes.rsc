/*
 * navier-stokes — the Octane fluid-solver kernel as RSC (§2.2.3 of the
 * paper). The simulation state is a (w+2)×(h+2) grid stored flat; the
 * nonlinear index arithmetic is discharged by a trusted ghost lemma
 * (§5 "Ghost Functions"), and the 1-D relaxation stencil proves its
 * neighbour accesses from the loop guard alone.
 */

type nat = {v: number | 0 <= v};
type pos = {v: number | 0 < v};
type idx<a> = {v: nat | v < len(a)};
type ArrayN<T, n> = {v: T[] | len(v) = n};
type grid<w, h> = ArrayN<number, (w + 2) * (h + 2)>;
type okW = {v: nat | v <= this.w};
type okH = {v: nat | v <= this.h};

/* Trusted nonlinear fact: interior coordinates index into the grid. */
declare gridIdxThm : (x: nat, y: nat, w: {v: number | x <= v}, h: {v: number | y <= v})
    => {v: boolean | 0 <= x + 1 + (y + 1) * (w + 2)
                  && x + 1 + (y + 1) * (w + 2) < (w + 2) * (h + 2)};

/* The fluid field: densities on a padded w×h grid. */
class FluidField {
    immutable w : pos;
    immutable h : pos;
    dens : grid<this.w, this.h>;

    constructor(w: pos, h: pos, d: grid<w, h>) {
        this.h = h;
        this.w = w;
        this.dens = d;
    }

    addDensity(x: okW, y: okH, d: number) {
        var t = gridIdxThm(x, y, this.w, this.h);
        var rowS = this.w + 2;
        var i = x + 1 + (y + 1) * rowS;
        this.dens[i] = this.dens[i] + d;
    }

    @ReadOnly density(x: okW, y: okH): number {
        var t = gridIdxThm(x, y, this.w, this.h);
        var rowS = this.w + 2;
        var i = x + 1 + (y + 1) * rowS;
        return this.dens[i];
    }

    swap(d: grid<this.w, this.h>) {
        this.dens = d;
    }
}

/*
 * One Gauss–Seidel relaxation sweep over a single row: each cell mixes
 * with its right neighbour. The guard proves both accesses in bounds.
 */
function relaxRow(row: number[], k: number): number {
    var acc = 0;
    var i;
    for (i = 0; i + 1 < row.length; i++) {
        acc = acc + row[i] * k + row[i + 1];
        row[i] = row[i] + row[i + 1] * k;
    }
    return acc;
}

/* Dissipates every cell of a row toward zero. */
function dissipate(row: number[], k: number): number {
    var total = 0;
    var i;
    for (i = 0; i < row.length; i++) {
        row[i] = row[i] * k;
        total = total + row[i];
    }
    return total;
}

/* A bounded solver loop: relax, dissipate, accumulate a checksum. */
function linSolve(row: number[], k: number, iters: nat): number {
    var checksum = 0;
    var it;
    for (it = 0; it < iters; it++) {
        checksum = checksum + relaxRow(row, k);
        checksum = checksum + dissipate(row, 1);
    }
    return checksum;
}

/* Seeds a 3×7 field, stirs it, and reports a checksum. */
function demo(): number {
    var f = new FluidField(3, 7, new Array(45));
    f.addDensity(2, 5, 40);
    f.addDensity(1, 1, 2);
    var probe = f.density(2, 5) + f.density(1, 1);
    var row = new Array(8);
    var i;
    for (i = 0; i < row.length; i++) {
        row[i] = i + 1;
    }
    var checksum = linSolve(row, 2, 3);
    f.swap(new Array(45));
    return probe + checksum + f.density(2, 5);
}
