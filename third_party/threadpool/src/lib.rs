//! A minimal, dependency-free scoped work-stealing thread pool.
//!
//! The build environment for this repository cannot fetch crates from a
//! registry, so the workspace vendors this small pool for the parallel
//! checking driver instead of pulling in `rayon`. It provides exactly one
//! operation: run a batch of independent jobs on `n` worker threads and
//! return their results **in input order**.
//!
//! Design:
//!
//! * jobs are dealt round-robin onto one deque per worker;
//! * a worker pops its own deque from the front (LIFO-ish cache locality
//!   does not matter here, jobs are coarse) and, when empty, *steals*
//!   from the back of the other workers' deques;
//! * threads are scoped ([`std::thread::scope`]), so jobs may borrow from
//!   the caller's stack — no `'static` bound;
//! * a panicking job aborts the batch: the panic payload is captured and
//!   re-raised on the calling thread once every worker has stopped.
//!
//! With `workers <= 1` (or a single job) everything runs inline on the
//! calling thread, which keeps single-threaded runs deterministic and
//! free of spawn overhead.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A fixed-width pool configuration. The pool itself is stateless between
/// [`Pool::run`] calls; threads live only for the duration of one batch.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool that runs batches on `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
        }
    }

    /// The configured number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job and returns the results in the order the jobs were
    /// given. Panics in jobs are propagated to the caller after the whole
    /// batch has wound down.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = jobs.len();
        if self.workers == 1 || n <= 1 {
            return jobs.into_iter().map(|f| f()).collect();
        }
        let workers = self.workers.min(n);

        // Deal jobs round-robin onto per-worker deques.
        let queues: Vec<Mutex<VecDeque<(usize, F)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            queues[i % workers].lock().unwrap().push_back((i, job));
        }

        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let poisoned = AtomicBool::new(false);
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let slots = &slots;
                let poisoned = &poisoned;
                let panic_payload = &panic_payload;
                scope.spawn(move || {
                    while !poisoned.load(Ordering::Relaxed) {
                        // Own queue first, then steal from the back of the
                        // busiest-looking victim.
                        let mut task = queues[w].lock().unwrap().pop_front();
                        if task.is_none() {
                            for (v, victim) in queues.iter().enumerate() {
                                if v == w {
                                    continue;
                                }
                                task = victim.lock().unwrap().pop_back();
                                if task.is_some() {
                                    break;
                                }
                            }
                        }
                        let Some((idx, job)) = task else { break };
                        match catch_unwind(AssertUnwindSafe(job)) {
                            Ok(out) => *slots[idx].lock().unwrap() = Some(out),
                            Err(payload) => {
                                poisoned.store(true, Ordering::Relaxed);
                                let mut slot = panic_payload.lock().unwrap();
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                                break;
                            }
                        }
                    }
                });
            }
        });

        if let Some(payload) = panic_payload.lock().unwrap().take() {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("job completed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        let pool = Pool::new(4);
        let jobs: Vec<_> = (0..64)
            .map(|i| {
                move || {
                    if i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    i * i
                }
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn borrows_from_caller_scope() {
        let data: Vec<u64> = (0..100).collect();
        let pool = Pool::new(3);
        let jobs: Vec<_> = data
            .chunks(13)
            .map(|chunk| move || chunk.iter().sum::<u64>())
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn single_worker_is_inline() {
        let pool = Pool::new(1);
        let out = pool.run(vec![|| 1, || 2, || 3]);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn steals_when_one_queue_is_slow() {
        // All the heavy jobs land on worker 0's deque (round-robin with
        // stride = workers); the others must steal to finish fast.
        let pool = Pool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> = Box::new(move || {
                    if i % 2 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    i
                });
                f
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_job_panics() {
        let pool = Pool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> = Box::new(move || {
                    if i == 11 {
                        panic!("boom");
                    }
                    i
                });
                f
            })
            .collect();
        pool.run(jobs);
    }
}
