//! A minimal, dependency-free shim for the slice of the
//! [`criterion`](https://docs.rs/criterion) API used by the RSC benches.
//!
//! The build environment for this repository cannot fetch crates from a
//! registry, so the workspace vendors this shim as a path dependency named
//! `criterion`. It supports `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}` and `Bencher::iter`. Timing is a simple
//! mean/min over the configured sample count, printed to stdout — enough
//! to compare runs by hand, with none of criterion's statistics.

#![warn(missing_docs)]

use std::time::Instant;

/// Entry point handed to benchmark functions by `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 30,
        }
    }
}

/// A named collection of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Time `f` and print mean/min per-iteration wall-clock times.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        // One warm-up pass, then the timed samples.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mean = b.samples.iter().sum::<f64>() / b.samples.len().max(1) as f64;
        let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "  {}/{}: mean {:>10.3} µs   min {:>10.3} µs   ({} samples)",
            self.name,
            id,
            mean / 1e3,
            min / 1e3,
            b.samples.len()
        );
        self
    }

    /// End the group (kept for API compatibility; prints nothing).
    pub fn finish(self) {}
}

/// Passed to the closure given to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Time one sample of `f`, keeping its result live via `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(out);
        self.samples.push(elapsed);
    }
}

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
