//! Collection strategies (`collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use crate::tree::{IntTree, ValueTree, VecTree};

/// Anything usable as the size argument of [`vec`].
pub trait IntoSizeRange {
    /// Convert to inclusive `(lo, hi)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (lo, hi) = size.bounds();
    VecStrategy { element, lo, hi }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.lo, self.hi + 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = Vec<S::Value>>> {
        let len = rng.usize_in(self.lo, self.hi + 1);
        let elems = (0..len).map(|_| self.element.new_tree(rng)).collect();
        Box::new(VecTree {
            elems,
            len: IntTree::new(len as i128, self.lo as i128),
            elem_phase: None,
        })
    }
}
