//! Value trees: the shrinking half of the proptest model.
//!
//! A [`ValueTree`] is a failing test case plus a search state over
//! simpler candidate cases. The `proptest!` macro drives the classic
//! binary-search protocol: after a failure it alternates
//! [`ValueTree::simplify`] (last candidate failed — try something
//! simpler) and [`ValueTree::complicate`] (last candidate passed — back
//! off toward the last known failure). Both return `false` when the
//! search is exhausted, and every tree maintains the invariant that
//! when its search ends, [`ValueTree::current`] is the simplest value
//! *known to fail*.

use std::rc::Rc;

/// A generated value together with a search over simpler values.
pub trait ValueTree {
    /// The type of value this tree produces.
    type Value;

    /// The current candidate value.
    fn current(&self) -> Self::Value;

    /// The current candidate failed: move to a simpler one. Returns
    /// `false` when no simpler candidate exists (the search is done and
    /// `current` is the minimal known failure).
    fn simplify(&mut self) -> bool;

    /// The current candidate passed: back off toward the last known
    /// failure. Returns `false` when the bracket is closed (and
    /// `current` has been restored to a known failure).
    fn complicate(&mut self) -> bool;
}

impl<T> ValueTree for Box<dyn ValueTree<Value = T>> {
    type Value = T;
    fn current(&self) -> T {
        (**self).current()
    }
    fn simplify(&mut self) -> bool {
        (**self).simplify()
    }
    fn complicate(&mut self) -> bool {
        (**self).complicate()
    }
}

/// A tree that never shrinks — the fallback for strategies without a
/// bespoke search.
pub struct NoShrink<T>(pub T);

impl<T: Clone> ValueTree for NoShrink<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
    fn simplify(&mut self) -> bool {
        false
    }
    fn complicate(&mut self) -> bool {
        false
    }
}

/// Binary search toward a target over an integer domain (in `i128` so
/// one tree serves every primitive width).
///
/// Bracket invariant: `lo <= curr <= hi`, `hi` always holds a known
/// failing value, and everything below `lo` is either untested-simpler
/// or known passing.
pub struct IntTree {
    lo: i128,
    curr: i128,
    hi: i128,
}

impl IntTree {
    /// A search from failing value `v` toward `target` (the simplest
    /// value of the range).
    pub fn new(v: i128, target: i128) -> IntTree {
        IntTree {
            lo: target,
            curr: v,
            hi: v,
        }
    }

    /// The current candidate.
    pub fn value(&self) -> i128 {
        self.curr
    }

    /// See [`ValueTree::simplify`].
    pub fn simplify(&mut self) -> bool {
        if self.curr == self.lo {
            return false;
        }
        self.hi = self.curr;
        self.curr = self.lo + (self.curr - self.lo) / 2;
        true
    }

    /// See [`ValueTree::complicate`].
    pub fn complicate(&mut self) -> bool {
        self.lo = self.curr + 1;
        if self.lo >= self.hi {
            self.curr = self.hi; // restore the last known failure
            return false;
        }
        self.curr = self.lo + (self.hi - self.lo) / 2;
        true
    }
}

impl ValueTree for IntTree {
    type Value = i128;
    fn current(&self) -> i128 {
        self.value()
    }
    fn simplify(&mut self) -> bool {
        IntTree::simplify(self)
    }
    fn complicate(&mut self) -> bool {
        IntTree::complicate(self)
    }
}

/// Tree for [`crate::strategy::Map`]: shrink the input, map the output.
pub struct MapTree<T, O> {
    /// The inner (input) tree.
    pub inner: Box<dyn ValueTree<Value = T>>,
    /// The mapping function, shared with the strategy.
    pub f: Rc<dyn Fn(T) -> O>,
}

impl<T, O> ValueTree for MapTree<T, O> {
    type Value = O;
    fn current(&self) -> O {
        (self.f)(self.inner.current())
    }
    fn simplify(&mut self) -> bool {
        self.inner.simplify()
    }
    fn complicate(&mut self) -> bool {
        self.inner.complicate()
    }
}

/// Tree for [`crate::strategy::Filter`]: shrink the inner value, but
/// never present a candidate that fails the predicate — after a move
/// lands outside the filter, back off toward the (always-accepted)
/// original failure.
pub struct FilterTree<T> {
    /// The inner tree.
    pub inner: Box<dyn ValueTree<Value = T>>,
    /// The acceptance predicate, shared with the strategy.
    pub pred: Rc<dyn Fn(&T) -> bool>,
}

impl<T> ValueTree for FilterTree<T> {
    type Value = T;
    fn current(&self) -> T {
        self.inner.current()
    }
    fn simplify(&mut self) -> bool {
        if !self.inner.simplify() {
            return false;
        }
        while !(self.pred)(&self.inner.current()) {
            if !self.inner.complicate() {
                break;
            }
        }
        (self.pred)(&self.inner.current())
    }
    fn complicate(&mut self) -> bool {
        if !self.inner.complicate() {
            return false;
        }
        while !(self.pred)(&self.inner.current()) {
            if !self.inner.complicate() {
                return false;
            }
        }
        true
    }
}

/// Tree for `collection::vec`: first a binary search over the length
/// (shorter is simpler; elements are dropped from the back), then an
/// element-wise pass shrinking each surviving element in order.
pub struct VecTree<T> {
    /// Per-element trees for the originally generated elements.
    pub elems: Vec<Box<dyn ValueTree<Value = T>>>,
    /// Length search (target = the strategy's minimum length).
    pub len: IntTree,
    /// Index of the element currently being shrunk, once the length
    /// search has finished.
    pub elem_phase: Option<usize>,
}

impl<T> ValueTree for VecTree<T> {
    type Value = Vec<T>;
    fn current(&self) -> Vec<T> {
        self.elems[..self.len.value() as usize]
            .iter()
            .map(|t| t.current())
            .collect()
    }
    fn simplify(&mut self) -> bool {
        match self.elem_phase {
            None => {
                if self.len.simplify() {
                    return true;
                }
                self.elem_phase = Some(0);
                self.simplify()
            }
            Some(i) => {
                let live = self.len.value() as usize;
                for j in i..live {
                    if self.elems[j].simplify() {
                        self.elem_phase = Some(j);
                        return true;
                    }
                    self.elem_phase = Some(j + 1);
                }
                false
            }
        }
    }
    fn complicate(&mut self) -> bool {
        match self.elem_phase {
            None => self.len.complicate(),
            Some(i) if i < self.elems.len() => self.elems[i].complicate(),
            Some(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a tree exactly as the `proptest!` macro does and returns
    /// the minimal failing value.
    fn shrink<V, T: ValueTree<Value = V>>(mut tree: T, fails: impl Fn(&V) -> bool) -> V {
        assert!(fails(&tree.current()), "initial case must fail");
        loop {
            let more = if fails(&tree.current()) {
                tree.simplify()
            } else {
                tree.complicate()
            };
            if !more {
                break;
            }
        }
        let v = tree.current();
        assert!(fails(&v), "search must end on a failing value");
        v
    }

    #[test]
    fn int_tree_finds_boundary() {
        for boundary in [1i128, 7, 100, 499, 500] {
            let t = IntTree::new(500, 0);
            let min = shrink(t, |v: &i128| *v >= boundary);
            assert_eq!(min, boundary, "boundary {boundary}");
        }
    }

    #[test]
    fn int_tree_respects_target() {
        // Everything fails: shrink all the way to the range start.
        let t = IntTree::new(77, 3);
        assert_eq!(shrink(t, |_| true), 3);
    }

    #[test]
    fn vec_tree_shrinks_length_then_elements() {
        let elems: Vec<Box<dyn ValueTree<Value = i128>>> = (0..8)
            .map(|_| Box::new(IntTree::new(50, 0)) as Box<dyn ValueTree<Value = i128>>)
            .collect();
        let t = VecTree {
            elems,
            len: IntTree::new(8, 0),
            elem_phase: None,
        };
        // Fails while it has >= 3 elements and the first element is >= 10.
        let min = shrink(t, |v: &Vec<i128>| v.len() >= 3 && v[0] >= 10);
        assert_eq!(min.len(), 3);
        assert_eq!(min[0], 10);
    }

    #[test]
    fn filter_tree_never_presents_rejected_values() {
        let inner = Box::new(IntTree::new(99, 0)) as Box<dyn ValueTree<Value = i128>>;
        let t = FilterTree {
            inner,
            pred: Rc::new(|v: &i128| *v % 2 == 1),
        };
        let min = shrink(t, |v: &i128| {
            assert!(*v % 2 == 1, "filter violated during shrinking");
            *v >= 21
        });
        assert!(min % 2 == 1 && (21..99).contains(&min));
    }
}
