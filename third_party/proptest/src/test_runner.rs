//! Test-runner configuration and the deterministic RNG behind generation.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Runs one test-case body over a generated value, catching panics.
/// Returns `true` when the case passed. The generic parameter pins the
/// closure's argument type to the value tree's output (the `proptest!`
/// macro calls this so type inference cannot drift to an unsized view
/// of the value inside the body).
pub fn run_one<V>(v: V, body: impl FnOnce(V)) -> bool {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || body(v))).is_ok()
}

/// Deterministic splitmix64 generator; seeded from the test name so every
/// run of a given property replays the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary byte string (normally the test-fn name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a well-mixed, stable seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Seed from an explicit numeric seed (tools like `rsc fuzz` take the
    /// seed on the command line so any failure replays exactly).
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for the tiny bounds used in tests.
        self.next_u64() % bound
    }

    /// Uniform `usize` in the half-open range `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as usize
    }
}
