//! The [`Strategy`] trait and the combinators the RSC suites rely on.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;
use crate::tree::{FilterTree, IntTree, MapTree, NoShrink, ValueTree};

/// A source of random values of type [`Strategy::Value`].
///
/// A strategy draws a value from the RNG ([`Strategy::generate`]) and,
/// for shrinking, can produce a [`ValueTree`] ([`Strategy::new_tree`])
/// that searches for the simplest failing value. Strategies without a
/// bespoke search fall back to a non-shrinking tree.
pub trait Strategy: 'static {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Draw one value as a shrinkable [`ValueTree`]. The default wraps
    /// [`Strategy::generate`] in a tree that never shrinks; combinators
    /// with a meaningful notion of "simpler" override it.
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = Self::Value>>
    where
        Self::Value: Clone + 'static,
    {
        Box::new(NoShrink(self.generate(rng)))
    }

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Keep only values passing `f`, retrying generation otherwise.
    /// The `reason` is kept for API compatibility and used in the panic
    /// message should generation never succeed.
    fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f: Rc::new(f),
        }
    }

    /// Build a recursive strategy: `self` generates leaves, and `branch`
    /// turns a strategy for depth-`k` values into one for depth-`k+1`
    /// values. `depth` bounds the nesting; the size/branch hints are
    /// accepted (and ignored) for API compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Mix leaves back in at every level so expected size stays
            // bounded and shallow values remain reachable.
            let deeper = branch(level).boxed();
            level = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        level
    }

    /// Type-erase this strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, reference-counted strategy handle.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = T>>
    where
        T: Clone,
    {
        self.inner.new_tree(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F: ?Sized> {
    inner: S,
    f: Rc<F>,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> O + 'static,
    O: 'static,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = O>>
    where
        O: Clone,
    {
        Box::new(MapTree {
            inner: self.inner.new_tree(rng),
            f: Rc::clone(&self.f) as Rc<dyn Fn(S::Value) -> O>,
        })
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F: ?Sized> {
    inner: S,
    reason: String,
    f: Rc<F>,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(&S::Value) -> bool + 'static,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}): no candidate accepted in 1000 draws",
            self.reason
        )
    }
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = S::Value>> {
        for _ in 0..1000 {
            let t = self.inner.new_tree(rng);
            if (self.f)(&t.current()) {
                return Box::new(FilterTree {
                    inner: t,
                    pred: Rc::clone(&self.f) as Rc<dyn Fn(&S::Value) -> bool>,
                });
            }
        }
        panic!(
            "prop_filter({:?}): no candidate accepted in 1000 draws",
            self.reason
        )
    }
}

/// Uniform choice among several strategies of the same value type
/// (what `prop_oneof!` builds). Shrinking stays within the chosen
/// alternative's own search.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of erased strategies.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union of zero strategies");
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = T>>
    where
        T: Clone,
    {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_tree(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
            fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = $t>> {
                Box::new(IntRangeTree::<$t> {
                    tree: IntTree::new(self.generate(rng) as i128, self.start as i128),
                    _marker: std::marker::PhantomData,
                })
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
            fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = $t>> {
                Box::new(IntRangeTree::<$t> {
                    tree: IntTree::new(self.generate(rng) as i128, *self.start() as i128),
                    _marker: std::marker::PhantomData,
                })
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Binary-search tree over a primitive integer range (shrinks toward
/// the range start).
struct IntRangeTree<T> {
    tree: IntTree,
    _marker: std::marker::PhantomData<T>,
}

macro_rules! int_range_tree {
    ($($t:ty),*) => {$(
        impl ValueTree for IntRangeTree<$t> {
            type Value = $t;
            fn current(&self) -> $t {
                self.tree.value() as $t
            }
            fn simplify(&mut self) -> bool {
                self.tree.simplify()
            }
            fn complicate(&mut self) -> bool {
                self.tree.complicate()
            }
        }
    )*};
}

int_range_tree!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn new_tree(&self, rng: &mut TestRng)
                -> Box<dyn ValueTree<Value = Self::Value>>
            {
                Box::new(TupleTree {
                    trees: ($(self.$idx.new_tree(rng),)+),
                    active: 0,
                    last: 0,
                })
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Shrinks tuple components left to right: exhaust the search of
/// component `i` before moving to `i + 1`.
struct TupleTree<T> {
    trees: T,
    active: usize,
    last: usize,
}

macro_rules! tuple_tree {
    ($(($($v:ident $idx:tt),+) => $n:expr;)*) => {$(
        impl<$($v: 'static),+> ValueTree
            for TupleTree<($(Box<dyn ValueTree<Value = $v>>,)+)>
        {
            type Value = ($($v,)+);
            fn current(&self) -> Self::Value {
                ($(self.trees.$idx.current(),)+)
            }
            fn simplify(&mut self) -> bool {
                while self.active < $n {
                    let moved = match self.active {
                        $($idx => self.trees.$idx.simplify(),)+
                        _ => unreachable!(),
                    };
                    if moved {
                        self.last = self.active;
                        return true;
                    }
                    self.active += 1;
                }
                false
            }
            fn complicate(&mut self) -> bool {
                match self.last {
                    $($idx => self.trees.$idx.complicate(),)+
                    _ => unreachable!(),
                }
            }
        }
    )*};
}

tuple_tree! {
    (A 0) => 1;
    (A 0, B 1) => 2;
    (A 0, B 1, C 2) => 3;
    (A 0, B 1, C 2, D 3) => 4;
    (A 0, B 1, C 2, D 3, E 4) => 5;
    (A 0, B 1, C 2, D 3, E 4, F 5) => 6;
}
