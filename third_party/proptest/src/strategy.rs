//! The [`Strategy`] trait and the combinators the RSC suites rely on.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A source of random values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from the RNG.
pub trait Strategy: 'static {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { inner: self, f }
    }

    /// Keep only values passing `f`, retrying generation otherwise.
    /// The `reason` is kept for API compatibility and used in the panic
    /// message should generation never succeed.
    fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Build a recursive strategy: `self` generates leaves, and `branch`
    /// turns a strategy for depth-`k` values into one for depth-`k+1`
    /// values. `depth` bounds the nesting; the size/branch hints are
    /// accepted (and ignored) for API compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Mix leaves back in at every level so expected size stays
            // bounded and shallow values remain reachable.
            let deeper = branch(level).boxed();
            level = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        level
    }

    /// Type-erase this strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, reference-counted strategy handle.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + 'static,
    O: 'static,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + 'static,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}): no candidate accepted in 1000 draws",
            self.reason
        )
    }
}

/// Uniform choice among several strategies of the same value type
/// (what `prop_oneof!` builds).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of erased strategies.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union of zero strategies");
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}
