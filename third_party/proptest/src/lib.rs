//! A minimal, dependency-free re-implementation of the slice of the
//! [`proptest`](https://docs.rs/proptest) API that the RSC test suites use.
//!
//! The build environment for this repository cannot fetch crates from a
//! registry, so the workspace vendors this shim as a path dependency named
//! `proptest`. It supports:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   attribute and `arg in strategy` bindings),
//! * [`strategy::Strategy`] with `prop_map`, `prop_filter`,
//!   `prop_recursive` and `boxed`,
//! * integer range strategies (`0u8..4`, `-6i32..=6`, …), tuple
//!   strategies up to arity 6, [`strategy::Just`] and
//!   [`strategy::Union`] (behind [`prop_oneof!`]),
//! * [`collection::vec`] with `Range`/`RangeInclusive`/exact sizes,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Generation is a deterministic splitmix64 stream (seeded per test from
//! the test-function name), so failures reproduce across runs. Failing
//! cases **shrink**: the macro drives the [`tree::ValueTree`] binary
//! search (simplify while failing, complicate while passing) to a
//! minimal failing case, then replays it uncaught so the panic message
//! comes from the simplest reproduction.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;
pub mod tree;

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::tree::ValueTree;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the `prop` namespace re-exported by proptest's prelude
    /// (`prop::collection::vec(..)` etc.).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the same shapes the real crate does for the suites in this
/// repository:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn roundtrip(x in 0i32..100, ys in prop::collection::vec(0u8..4, 1..6)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])+
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                let __strats = ($($strat,)+);
                for __case in 0..config.cases {
                    use $crate::tree::ValueTree as _;
                    let mut __tree =
                        $crate::strategy::Strategy::new_tree(&__strats, &mut rng);
                    if $crate::test_runner::run_one(
                        __tree.current(),
                        |($($arg,)+)| $body,
                    ) {
                        continue;
                    }
                    // Shrink: binary-search for the simplest failing
                    // case, with the panic hook silenced so the search
                    // doesn't spam the log, then replay it uncaught.
                    let __hook = ::std::panic::take_hook();
                    ::std::panic::set_hook(Box::new(|_| {}));
                    let mut __shrinks = 0u32;
                    let mut __passed = false;
                    loop {
                        let moved = if __passed {
                            __tree.complicate()
                        } else {
                            __tree.simplify()
                        };
                        if !moved {
                            break;
                        }
                        __shrinks += 1;
                        __passed = $crate::test_runner::run_one(
                            __tree.current(),
                            |($($arg,)+)| $body,
                        );
                    }
                    ::std::panic::set_hook(__hook);
                    eprintln!(
                        "proptest: case {} of {} failed; replaying minimal \
                         failure after {} shrink steps",
                        __case + 1,
                        stringify!($name),
                        __shrinks,
                    );
                    let ($($arg,)+) = __tree.current();
                    $body
                    panic!(
                        "proptest {}: shrunk case passed on replay (flaky test body?)",
                        stringify!($name),
                    );
                }
            }
        )*
    };
    ($($(#[$meta:meta])+
       fn $name:ident($($args:tt)*) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])+ fn $name($($args)*) $body)*
        }
    };
}

/// Builds a [`strategy::Union`] choosing uniformly among the given
/// strategies (all must produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Assertion inside a `proptest!` body; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}
