//! Operator semantics shared by the FRSC and IRSC interpreters, so the
//! consistency theorem (Thm 1) is tested against a single definition of
//! the primitive operations.

use rsc_syntax::ast::{BinOpE, UnOp};

use crate::value::{Heap, RuntimeError, Value};

/// Evaluates a strict binary operator on evaluated operands.
/// (`&&`/`||` short-circuit and are handled by the interpreters.)
pub fn binop(op: BinOpE, a: Value, b: Value) -> Result<Value, RuntimeError> {
    use BinOpE::*;
    match op {
        Add | Sub | Mul | Div | Mod => {
            let (x, y) = both_nums(op, a, b)?;
            let r = match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err(RuntimeError::DivByZero);
                    }
                    x.wrapping_div(y)
                }
                Mod => {
                    if y == 0 {
                        return Err(RuntimeError::DivByZero);
                    }
                    x.wrapping_rem(y)
                }
                _ => unreachable!(),
            };
            Ok(Value::Num(r))
        }
        Lt | Le | Gt | Ge => {
            let (x, y) = both_nums(op, a, b)?;
            let r = match op {
                Lt => x < y,
                Le => x <= y,
                Gt => x > y,
                Ge => x >= y,
                _ => unreachable!(),
            };
            Ok(Value::Bool(r))
        }
        Eq => Ok(Value::Bool(a.strict_eq(&b))),
        Ne => Ok(Value::Bool(!a.strict_eq(&b))),
        BitAnd | BitOr => {
            let x = as_bv(&a)?;
            let y = as_bv(&b)?;
            Ok(Value::Bv(if op == BitAnd { x & y } else { x | y }))
        }
        And | Or => Err(RuntimeError::TypeError(
            "short-circuit operator evaluated strictly".into(),
        )),
    }
}

fn both_nums(op: BinOpE, a: Value, b: Value) -> Result<(i64, i64), RuntimeError> {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => Ok((x, y)),
        (a, b) => Err(RuntimeError::TypeError(format!(
            "{op:?} on non-numbers {a} and {b}"
        ))),
    }
}

fn as_bv(v: &Value) -> Result<u32, RuntimeError> {
    match v {
        Value::Bv(n) => Ok(*n),
        Value::Num(n) if *n >= 0 && *n <= u32::MAX as i64 => Ok(*n as u32),
        other => Err(RuntimeError::TypeError(format!(
            "bit-vector operation on {other}"
        ))),
    }
}

/// Evaluates a unary operator.
pub fn unop(op: UnOp, v: Value, heap: &Heap) -> Result<Value, RuntimeError> {
    match op {
        UnOp::Not => Ok(Value::Bool(!v.truthy())),
        UnOp::Neg => match v {
            Value::Num(n) => Ok(Value::Num(n.wrapping_neg())),
            other => Err(RuntimeError::TypeError(format!("negation of {other}"))),
        },
        UnOp::TypeOf => Ok(Value::Str(v.type_tag(heap).to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(
            binop(BinOpE::Add, Value::Num(2), Value::Num(3)).unwrap(),
            Value::Num(5)
        );
        assert_eq!(
            binop(BinOpE::Div, Value::Num(7), Value::Num(2)).unwrap(),
            Value::Num(3)
        );
        assert_eq!(
            binop(BinOpE::Div, Value::Num(1), Value::Num(0)),
            Err(RuntimeError::DivByZero)
        );
    }

    #[test]
    fn comparisons_and_equality() {
        assert_eq!(
            binop(BinOpE::Lt, Value::Num(1), Value::Num(2)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            binop(BinOpE::Eq, Value::Str("a".into()), Value::Str("a".into())).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            binop(BinOpE::Ne, Value::Undefined, Value::Null).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn bitvectors() {
        assert_eq!(
            binop(BinOpE::BitAnd, Value::Bv(0x0c00), Value::Bv(0x3c00)).unwrap(),
            Value::Bv(0x0c00)
        );
    }

    #[test]
    fn typeof_tags() {
        let h = Heap::new();
        assert_eq!(
            unop(UnOp::TypeOf, Value::Num(1), &h).unwrap(),
            Value::Str("number".into())
        );
        assert_eq!(
            unop(UnOp::TypeOf, Value::Undefined, &h).unwrap(),
            Value::Str("undefined".into())
        );
    }

    #[test]
    fn type_errors() {
        assert!(binop(BinOpE::Add, Value::Num(1), Value::Bool(true)).is_err());
        let h = Heap::new();
        assert!(unop(UnOp::Neg, Value::Str("x".into()), &h).is_err());
    }
}
