//! A big-step interpreter for IRSC (the SSA functional core), following
//! Figure 12 of the paper, with the `letloop` extension.
//!
//! Used together with [`crate::frsc`] to test SSA Consistency (Theorem 1):
//! on the deterministic fragment, a program and its SSA translation
//! produce identical outcomes.

use std::collections::HashMap;

use rsc_logic::Sym;
use rsc_ssa::{Body, IrClass, IrExpr, IrFun, IrProgram};
use rsc_syntax::ast::BinOpE;

use crate::ops;
use crate::value::{Heap, Obj, RuntimeError, Value};

struct Closure {
    fun: IrFun,
    captured: HashMap<Sym, Value>,
}

/// The IRSC interpreter.
pub struct IrscInterp {
    heap: Heap,
    fuel: u64,
    closures: Vec<Closure>,
    classes: HashMap<Sym, IrClass>,
    enums: HashMap<Sym, HashMap<Sym, u32>>,
    declares: HashMap<Sym, ()>,
    globals: HashMap<Sym, Value>,
}

type Env = HashMap<Sym, Value>;

impl IrscInterp {
    /// Creates an interpreter with the given fuel.
    pub fn new(fuel: u64) -> Self {
        IrscInterp {
            heap: Heap::new(),
            fuel,
            closures: Vec::new(),
            classes: HashMap::new(),
            enums: HashMap::new(),
            declares: HashMap::new(),
            globals: HashMap::new(),
        }
    }

    /// Runs an SSA program; the result is the value of the top-level
    /// `return`, or `undefined`.
    pub fn run(&mut self, p: &IrProgram) -> Result<Value, RuntimeError> {
        for c in &p.classes {
            self.classes.insert(c.decl.name.clone(), c.clone());
        }
        for e in &p.enums {
            self.enums
                .insert(e.name.clone(), e.members.iter().cloned().collect());
        }
        for d in &p.declares {
            self.declares.insert(d.name.clone(), ());
        }
        for f in &p.funs {
            let idx = self.closures.len();
            self.closures.push(Closure {
                fun: f.clone(),
                captured: HashMap::new(),
            });
            let r = self.heap.alloc(Obj::Closure { fun: idx });
            self.globals.insert(f.name.clone(), Value::Ref(r));
        }
        let mut env = self.globals.clone();
        Ok(self.body(&p.top, &mut env)?.unwrap_or(Value::Undefined))
    }

    fn tick(&mut self) -> Result<(), RuntimeError> {
        if self.fuel == 0 {
            return Err(RuntimeError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Evaluates a body. `Ok(Some(v))` means a `return v` was executed;
    /// `Ok(None)` means the body fell through (branch arm end).
    fn body(&mut self, b: &Body, env: &mut Env) -> Result<Option<Value>, RuntimeError> {
        self.tick()?;
        match b {
            Body::Ret(None, _) => Ok(Some(Value::Undefined)),
            Body::Ret(Some(e), _) => {
                let v = self.eval(e, env)?;
                Ok(Some(v))
            }
            Body::EndBranch(_) => Ok(None),
            Body::Let { x, rhs, rest, .. } => {
                let v = self.eval(rhs, env)?;
                env.insert(x.clone(), v);
                self.body(rest, env)
            }
            Body::Effect { e, rest, .. } => {
                self.eval(e, env)?;
                self.body(rest, env)
            }
            Body::LetFun { fun, rest, .. } => {
                let idx = self.closures.len();
                self.closures.push(Closure {
                    fun: (**fun).clone(),
                    captured: env.clone(),
                });
                let r = self.heap.alloc(Obj::Closure { fun: idx });
                env.insert(fun.name.clone(), Value::Ref(r));
                self.body(rest, env)
            }
            Body::If {
                cond,
                phis,
                then_br,
                else_br,
                rest,
                ..
            } => {
                let c = self.eval(cond, env)?;
                let mut benv = env.clone();
                let taken_then = c.truthy();
                let arm = if taken_then { then_br } else { else_br };
                match self.body(arm, &mut benv)? {
                    Some(v) => Ok(Some(v)),
                    None => {
                        // R-LETIF: substitute the taken branch's φ sources.
                        for phi in phis {
                            let src = if taken_then {
                                phi.then_src.as_ref()
                            } else {
                                phi.else_src.as_ref()
                            };
                            let Some(src) = src else {
                                return Err(RuntimeError::Unbound(format!(
                                    "phi source for {} missing",
                                    phi.new
                                )));
                            };
                            let v = benv
                                .get(src)
                                .cloned()
                                .ok_or_else(|| RuntimeError::Unbound(src.to_string()))?;
                            env.insert(phi.new.clone(), v);
                        }
                        self.body(rest, env)
                    }
                }
            }
            Body::Loop {
                phis,
                cond,
                body,
                rest,
                ..
            } => {
                // Initialize loop-head φ variables.
                for phi in phis {
                    let v = env
                        .get(&phi.init_src)
                        .cloned()
                        .ok_or_else(|| RuntimeError::Unbound(phi.init_src.to_string()))?;
                    env.insert(phi.new.clone(), v);
                }
                loop {
                    self.tick()?;
                    let c = self.eval(cond, env)?;
                    if !c.truthy() {
                        break;
                    }
                    let mut benv = env.clone();
                    match self.body(body, &mut benv)? {
                        Some(v) => return Ok(Some(v)),
                        None => {
                            for phi in phis {
                                if let Some(src) = &phi.body_src {
                                    let v = benv
                                        .get(src)
                                        .cloned()
                                        .ok_or_else(|| RuntimeError::Unbound(src.to_string()))?;
                                    env.insert(phi.new.clone(), v);
                                }
                            }
                        }
                    }
                }
                self.body(rest, env)
            }
        }
    }

    fn eval(&mut self, e: &IrExpr, env: &mut Env) -> Result<Value, RuntimeError> {
        self.tick()?;
        match e {
            IrExpr::Num(n, _) => Ok(Value::Num(*n)),
            IrExpr::Bv(n, _) => Ok(Value::Bv(*n)),
            IrExpr::Str(s, _) => Ok(Value::Str(s.clone())),
            IrExpr::Bool(b, _) => Ok(Value::Bool(*b)),
            IrExpr::Null(_) => Ok(Value::Null),
            IrExpr::Undefined(_) => Ok(Value::Undefined),
            IrExpr::This(_) => env
                .get(&Sym::from("this"))
                .cloned()
                .ok_or_else(|| RuntimeError::Unbound("this".into())),
            IrExpr::Var(x, _) => env
                .get(x)
                .or_else(|| self.globals.get(x))
                .cloned()
                .ok_or_else(|| RuntimeError::Unbound(x.to_string())),
            IrExpr::Field(b, f, _) => {
                if let IrExpr::Var(name, _) = b.as_ref() {
                    if let Some(members) = self.enums.get(name) {
                        return members
                            .get(f)
                            .map(|v| Value::Bv(*v))
                            .ok_or_else(|| RuntimeError::BadField(format!("{name}.{f}")));
                    }
                }
                let o = self.eval(b, env)?;
                self.field_read(o, f)
            }
            IrExpr::Index(a, i, _) => {
                let av = self.eval(a, env)?;
                let iv = self.eval(i, env)?;
                self.array_read(av, iv)
            }
            IrExpr::Call(callee, args, _) => self.eval_call(callee, args, env),
            IrExpr::New(cname, _targs, args, _) => {
                let argv: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<_, _>>()?;
                self.construct(cname, argv)
            }
            IrExpr::Cast(_, e, _) => self.eval(e, env),
            IrExpr::Unary(op, e, _) => {
                let v = self.eval(e, env)?;
                ops::unop(*op, v, &self.heap)
            }
            IrExpr::Binary(op, a, b, _) => match op {
                BinOpE::And => {
                    let va = self.eval(a, env)?;
                    if va.truthy() {
                        self.eval(b, env)
                    } else {
                        Ok(va)
                    }
                }
                BinOpE::Or => {
                    let va = self.eval(a, env)?;
                    if va.truthy() {
                        Ok(va)
                    } else {
                        self.eval(b, env)
                    }
                }
                _ => {
                    let va = self.eval(a, env)?;
                    let vb = self.eval(b, env)?;
                    ops::binop(*op, va, vb)
                }
            },
            IrExpr::ArrayLit(es, _) => {
                let vs: Vec<Value> = es
                    .iter()
                    .map(|x| self.eval(x, env))
                    .collect::<Result<_, _>>()?;
                Ok(Value::Ref(self.heap.alloc(Obj::Arr(vs))))
            }
            IrExpr::FieldAssign(obj, f, v, _) => {
                let o = self.eval(obj, env)?;
                let val = self.eval(v, env)?;
                let Value::Ref(r) = o else {
                    return Err(RuntimeError::BadField(format!("field write on {o}")));
                };
                match self.heap.get_mut(r) {
                    Some(Obj::Instance { fields, .. }) => {
                        fields.insert(f.clone(), val.clone());
                        Ok(val)
                    }
                    _ => Err(RuntimeError::BadField(format!(
                        "field write .{f} on non-instance"
                    ))),
                }
            }
            IrExpr::IndexAssign(a, i, v, _) => {
                let av = self.eval(a, env)?;
                let iv = self.eval(i, env)?;
                let vv = self.eval(v, env)?;
                let Value::Ref(r) = av else {
                    return Err(RuntimeError::TypeError("index write on non-array".into()));
                };
                let Value::Num(ix) = iv else {
                    return Err(RuntimeError::TypeError("non-numeric index".into()));
                };
                match self.heap.get_mut(r) {
                    Some(Obj::Arr(elems)) => {
                        if ix < 0 || ix as usize >= elems.len() {
                            Err(RuntimeError::OutOfBounds(format!(
                                "write index {ix} on length {}",
                                elems.len()
                            )))
                        } else {
                            elems[ix as usize] = vv.clone();
                            Ok(vv)
                        }
                    }
                    _ => Err(RuntimeError::TypeError("index write on non-array".into())),
                }
            }
        }
    }

    fn field_read(&mut self, o: Value, f: &Sym) -> Result<Value, RuntimeError> {
        match o {
            Value::Ref(r) => match self.heap.get(r) {
                Some(Obj::Arr(elems)) => {
                    if f == &Sym::from("length") {
                        Ok(Value::Num(elems.len() as i64))
                    } else {
                        Err(RuntimeError::BadField(format!("array .{f}")))
                    }
                }
                Some(Obj::Instance { fields, class }) => fields.get(f).cloned().ok_or_else(|| {
                    RuntimeError::BadField(format!("{class} instance has no field {f}"))
                }),
                Some(Obj::Closure { .. }) => Err(RuntimeError::BadField(format!("closure .{f}"))),
                None => Err(RuntimeError::BadField("dangling reference".into())),
            },
            Value::Str(s) if f == &Sym::from("length") => Ok(Value::Num(s.len() as i64)),
            other => Err(RuntimeError::BadField(format!(
                "field .{f} on non-object {other}"
            ))),
        }
    }

    fn array_read(&mut self, a: Value, i: Value) -> Result<Value, RuntimeError> {
        match (&a, &i) {
            (Value::Ref(r), Value::Num(ix)) => match self.heap.get(*r) {
                Some(Obj::Arr(elems)) => {
                    if *ix < 0 || *ix as usize >= elems.len() {
                        Err(RuntimeError::OutOfBounds(format!(
                            "read index {ix} on length {}",
                            elems.len()
                        )))
                    } else {
                        Ok(elems[*ix as usize].clone())
                    }
                }
                _ => Err(RuntimeError::TypeError("index read on non-array".into())),
            },
            (Value::Str(s), Value::Num(ix)) => {
                let chars: Vec<char> = s.chars().collect();
                if *ix < 0 || *ix as usize >= chars.len() {
                    Err(RuntimeError::OutOfBounds(format!(
                        "string index {ix} on length {}",
                        chars.len()
                    )))
                } else {
                    Ok(Value::Str(chars[*ix as usize].to_string()))
                }
            }
            _ => Err(RuntimeError::TypeError(format!("index {i} on {a}"))),
        }
    }

    fn eval_call(
        &mut self,
        callee: &IrExpr,
        args: &[IrExpr],
        env: &mut Env,
    ) -> Result<Value, RuntimeError> {
        if let IrExpr::Var(name, _) = callee {
            match name.as_str() {
                "$ite" => {
                    let c = self.eval(&args[0], env)?;
                    return if c.truthy() {
                        self.eval(&args[1], env)
                    } else {
                        self.eval(&args[2], env)
                    };
                }
                "assert" | "assume" => {
                    let v = self.eval(&args[0], env)?;
                    return if v.truthy() {
                        Ok(Value::Undefined)
                    } else {
                        Err(RuntimeError::AssertFailed("assert(false)".into()))
                    };
                }
                _ => {
                    if self.declares.contains_key(name) && !self.globals.contains_key(name) {
                        for a in args {
                            self.eval(a, env)?;
                        }
                        return Ok(Value::Bool(true));
                    }
                }
            }
        }
        if let IrExpr::Field(obj, m, _) = callee {
            let recv = self.eval(obj, env)?;
            let argv: Vec<Value> = args
                .iter()
                .map(|a| self.eval(a, env))
                .collect::<Result<_, _>>()?;
            return self.call_method(recv, m, argv);
        }
        let f = self.eval(callee, env)?;
        let argv: Vec<Value> = args
            .iter()
            .map(|a| self.eval(a, env))
            .collect::<Result<_, _>>()?;
        self.apply(f, argv, None)
    }

    fn call_method(
        &mut self,
        recv: Value,
        m: &Sym,
        argv: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        if let Value::Ref(r) = recv {
            if let Some(Obj::Arr(_)) = self.heap.get(r) {
                match m.as_str() {
                    "push" => {
                        let Some(Obj::Arr(elems)) = self.heap.get_mut(r) else {
                            unreachable!()
                        };
                        elems.push(argv.into_iter().next().unwrap_or(Value::Undefined));
                        let n = elems.len() as i64;
                        return Ok(Value::Num(n));
                    }
                    "pop" => {
                        let Some(Obj::Arr(elems)) = self.heap.get_mut(r) else {
                            unreachable!()
                        };
                        return Ok(elems.pop().unwrap_or(Value::Undefined));
                    }
                    _ => {}
                }
            }
        }
        let Value::Ref(r) = recv else {
            return Err(RuntimeError::BadField(format!("method {m} on {recv}")));
        };
        let class = match self.heap.get(r) {
            Some(Obj::Instance { class, fields }) => {
                if let Some(v @ Value::Ref(_)) = fields.get(m) {
                    let v = v.clone();
                    if let Value::Ref(cr) = v {
                        if matches!(self.heap.get(cr), Some(Obj::Closure { .. })) {
                            return self.apply(v, argv, Some(Value::Ref(r)));
                        }
                    }
                }
                class.clone()
            }
            _ => {
                return Err(RuntimeError::BadField(format!(
                    "method {m} on non-instance"
                )))
            }
        };
        let (sig_params, body) = {
            let mut found = None;
            let mut cur = Some(class.clone());
            while let Some(cname) = cur {
                let Some(c) = self.classes.get(&cname) else {
                    break;
                };
                if let Some(md) = c.methods.iter().find(|md| &md.name == m) {
                    found = Some((
                        md.sig
                            .params
                            .iter()
                            .map(|(p, _)| p.clone())
                            .collect::<Vec<_>>(),
                        md.body.clone(),
                    ));
                    break;
                }
                cur = c.decl.extends.clone();
            }
            found
                .ok_or_else(|| RuntimeError::BadField(format!("class {class} has no method {m}")))?
        };
        let Some(body) = body else {
            return Err(RuntimeError::NotAFunction(format!("abstract method {m}")));
        };
        let mut frame = self.globals.clone();
        for (i, pname) in sig_params.iter().enumerate() {
            frame.insert(
                pname.clone(),
                argv.get(i).cloned().unwrap_or(Value::Undefined),
            );
        }
        frame.insert(Sym::from("this"), Value::Ref(r));
        Ok(self.body(&body, &mut frame)?.unwrap_or(Value::Undefined))
    }

    fn apply(
        &mut self,
        f: Value,
        argv: Vec<Value>,
        this: Option<Value>,
    ) -> Result<Value, RuntimeError> {
        let Value::Ref(r) = f else {
            return Err(RuntimeError::NotAFunction(format!("{f}")));
        };
        let Some(Obj::Closure { fun }) = self.heap.get(r) else {
            return Err(RuntimeError::NotAFunction(format!("{f}")));
        };
        let clos = &self.closures[*fun];
        let decl = clos.fun.clone();
        let mut frame = self.globals.clone();
        frame.extend(clos.captured.clone());
        for (i, p) in decl.params.iter().enumerate() {
            frame.insert(p.clone(), argv.get(i).cloned().unwrap_or(Value::Undefined));
        }
        let args_arr = self.heap.alloc(Obj::Arr(argv));
        frame.insert(Sym::from("arguments"), Value::Ref(args_arr));
        if let Some(t) = this {
            frame.insert(Sym::from("this"), t);
        }
        Ok(self
            .body(&decl.body, &mut frame)?
            .unwrap_or(Value::Undefined))
    }

    fn construct(&mut self, cname: &Sym, argv: Vec<Value>) -> Result<Value, RuntimeError> {
        if cname == &Sym::from("Array") {
            return match argv.as_slice() {
                [Value::Num(n)] => {
                    if *n < 0 {
                        Err(RuntimeError::TypeError("negative array length".into()))
                    } else {
                        Ok(Value::Ref(
                            self.heap.alloc(Obj::Arr(vec![Value::Num(0); *n as usize])),
                        ))
                    }
                }
                _ => Ok(Value::Ref(self.heap.alloc(Obj::Arr(argv)))),
            };
        }
        let class = self
            .classes
            .get(cname)
            .cloned()
            .ok_or_else(|| RuntimeError::Unbound(format!("class {cname}")))?;
        let r = self.heap.alloc(Obj::Instance {
            class: cname.clone(),
            fields: HashMap::new(),
        });
        if let Some(ctor) = &class.ctor {
            let mut frame = self.globals.clone();
            for (i, (pname, _)) in ctor.params.iter().enumerate() {
                frame.insert(
                    pname.clone(),
                    argv.get(i).cloned().unwrap_or(Value::Undefined),
                );
            }
            frame.insert(Sym::from("this"), Value::Ref(r));
            self.body(&ctor.body, &mut frame)?;
        }
        Ok(Value::Ref(r))
    }
}

/// Convenience entry point used by tests.
pub fn run_irsc(p: &IrProgram, fuel: u64) -> Result<Value, RuntimeError> {
    IrscInterp::new(fuel).run(p)
}
