//! # rsc-interp
//!
//! Executable operational semantics for both of the paper's languages:
//!
//! * [`frsc`] — the imperative surface language (Figure 10),
//! * [`irsc`] — the SSA functional core (Figure 12).
//!
//! Running both on the same program tests **SSA Consistency** (Theorem 1:
//! the translation preserves behaviour), and running verified programs
//! tests **type safety** end-to-end (Theorems 2–5: verified programs never
//! hit [`RuntimeError`]s).
//!
//! # Example
//!
//! ```
//! use rsc_interp::{run_frsc, run_irsc, Value};
//!
//! let src = "var x = 3; var y = 0;
//!            if (x > 2) { y = x * 2; } else { y = 0; }
//!            return y;";
//! let prog = rsc_syntax::parse_program(src).unwrap();
//! let ir = rsc_ssa::transform_program(&prog).unwrap();
//! let a = run_frsc(&prog, 10_000).unwrap();
//! let b = run_irsc(&ir, 10_000).unwrap();
//! assert_eq!(a, Value::Num(6));
//! assert_eq!(a, b);
//! ```

#![warn(missing_docs)]

pub mod frsc;
pub mod irsc;
pub mod ops;
pub mod value;

pub use frsc::{run_frsc, FrscInterp};
pub use irsc::{run_irsc, IrscInterp};
pub use value::{Heap, Obj, RuntimeError, Value};
