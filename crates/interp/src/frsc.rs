//! A big-step interpreter for FRSC (the imperative surface language),
//! following the reduction rules of Figure 10 in the paper.
//!
//! Deviations from JavaScript, fixed deliberately for the whole project
//! (both interpreters agree, and the checker assumes the same semantics):
//!
//! * numbers are 64-bit integers;
//! * closures capture a **snapshot** of the enclosing variables (the SSA
//!   translation hands closures the SSA names live at the definition
//!   point, so mutation-after-capture is out of the fragment);
//! * `new Array(n)` builds a zero-initialized numeric buffer (the Octane
//!   benchmarks use arrays this way — as `Float64Array`-style grids);
//! * casts are erased (Corollary 4: verified casts cannot fail).

use std::collections::HashMap;

use rsc_logic::Sym;
use rsc_syntax::ast::*;

use crate::ops;
use crate::value::{Heap, Obj, RuntimeError, Value};

/// Result of executing statements: fall through or return.
enum Flow {
    Normal,
    Returned(Value),
}

struct Closure {
    decl: FunDecl,
    captured: HashMap<Sym, Value>,
}

/// The FRSC interpreter.
pub struct FrscInterp {
    heap: Heap,
    fuel: u64,
    closures: Vec<Closure>,
    classes: HashMap<Sym, ClassDecl>,
    enums: HashMap<Sym, HashMap<Sym, u32>>,
    declares: HashMap<Sym, ()>,
    globals: HashMap<Sym, Value>,
}

impl FrscInterp {
    /// Creates an interpreter with the given fuel (step budget).
    pub fn new(fuel: u64) -> Self {
        FrscInterp {
            heap: Heap::new(),
            fuel,
            closures: Vec::new(),
            classes: HashMap::new(),
            enums: HashMap::new(),
            declares: HashMap::new(),
            globals: HashMap::new(),
        }
    }

    /// Runs a program: declarations are collected, top-level statements are
    /// executed in order, and the value of a top-level `return` (if any) is
    /// the program result.
    pub fn run(&mut self, p: &Program) -> Result<Value, RuntimeError> {
        let mut top: Vec<Stmt> = Vec::new();
        for item in &p.items {
            match item {
                Item::Class(c) => {
                    self.classes.insert(c.name.clone(), c.clone());
                }
                Item::Enum(e) => {
                    self.enums
                        .insert(e.name.clone(), e.members.iter().cloned().collect());
                }
                Item::Declare(d) => {
                    self.declares.insert(d.name.clone(), ());
                }
                Item::Fun(f) => {
                    let idx = self.closures.len();
                    self.closures.push(Closure {
                        decl: f.clone(),
                        captured: HashMap::new(),
                    });
                    let r = self.heap.alloc(Obj::Closure { fun: idx });
                    self.globals.insert(f.name.clone(), Value::Ref(r));
                }
                _ => {}
            }
            if let Item::Stmt(s) = item {
                top.push(s.clone());
            }
        }
        let mut frame = self.globals.clone();
        match self.exec_block(&top, &mut frame)? {
            Flow::Returned(v) => Ok(v),
            Flow::Normal => Ok(Value::Undefined),
        }
    }

    fn tick(&mut self) -> Result<(), RuntimeError> {
        if self.fuel == 0 {
            return Err(RuntimeError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        env: &mut HashMap<Sym, Value>,
    ) -> Result<Flow, RuntimeError> {
        for s in stmts {
            match self.exec(s, env)? {
                Flow::Normal => {}
                r @ Flow::Returned(_) => return Ok(r),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, s: &Stmt, env: &mut HashMap<Sym, Value>) -> Result<Flow, RuntimeError> {
        self.tick()?;
        match s {
            Stmt::Skip(_) => Ok(Flow::Normal),
            Stmt::Seq(ss, _) => self.exec_block(ss, env),
            Stmt::VarDecl { name, init, .. } => {
                let v = self.eval(init, env)?;
                env.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, value, .. } => {
                match target {
                    LValue::Var(x, _) => {
                        let v = self.eval(value, env)?;
                        env.insert(x.clone(), v);
                    }
                    LValue::Field(obj, f, _) => {
                        let o = self.eval(obj, env)?;
                        let v = self.eval(value, env)?;
                        let Value::Ref(r) = o else {
                            return Err(RuntimeError::BadField(format!("field write on {o}")));
                        };
                        match self.heap.get_mut(r) {
                            Some(Obj::Instance { fields, .. }) => {
                                fields.insert(f.clone(), v);
                            }
                            _ => {
                                return Err(RuntimeError::BadField(format!(
                                    "field write .{f} on non-instance"
                                )))
                            }
                        }
                    }
                    LValue::Index(arr, idx, _) => {
                        let a = self.eval(arr, env)?;
                        let i = self.eval(idx, env)?;
                        let v = self.eval(value, env)?;
                        self.array_write(a, i, v)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::ExprStmt { expr, .. } => {
                self.eval(expr, env)?;
                Ok(Flow::Normal)
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(e) => self.eval(e, env)?,
                    None => Value::Undefined,
                };
                Ok(Flow::Returned(v))
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                let c = self.eval(cond, env)?;
                if c.truthy() {
                    self.exec_block(&then_blk.stmts, env)
                } else {
                    self.exec_block(&else_blk.stmts, env)
                }
            }
            Stmt::While { cond, body, .. } => {
                loop {
                    self.tick()?;
                    let c = self.eval(cond, env)?;
                    if !c.truthy() {
                        break;
                    }
                    match self.exec_block(&body.stmts, env)? {
                        Flow::Normal => {}
                        r @ Flow::Returned(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Fun(f) => {
                let idx = self.closures.len();
                self.closures.push(Closure {
                    decl: f.clone(),
                    captured: env.clone(),
                });
                let r = self.heap.alloc(Obj::Closure { fun: idx });
                env.insert(f.name.clone(), Value::Ref(r));
                Ok(Flow::Normal)
            }
        }
    }

    fn array_write(&mut self, a: Value, i: Value, v: Value) -> Result<(), RuntimeError> {
        let Value::Ref(r) = a else {
            return Err(RuntimeError::TypeError(format!("index write on {a}")));
        };
        let Value::Num(ix) = i else {
            return Err(RuntimeError::TypeError(format!("non-numeric index {i}")));
        };
        match self.heap.get_mut(r) {
            Some(Obj::Arr(elems)) => {
                if ix < 0 || ix as usize >= elems.len() {
                    return Err(RuntimeError::OutOfBounds(format!(
                        "write index {ix} on length {}",
                        elems.len()
                    )));
                }
                elems[ix as usize] = v;
                Ok(())
            }
            _ => Err(RuntimeError::TypeError("index write on non-array".into())),
        }
    }

    fn eval(&mut self, e: &Expr, env: &mut HashMap<Sym, Value>) -> Result<Value, RuntimeError> {
        self.tick()?;
        match e {
            Expr::Num(n, _) => Ok(Value::Num(*n)),
            Expr::Bv(n, _) => Ok(Value::Bv(*n)),
            Expr::Str(s, _) => Ok(Value::Str(s.clone())),
            Expr::Bool(b, _) => Ok(Value::Bool(*b)),
            Expr::Null(_) => Ok(Value::Null),
            Expr::Undefined(_) => Ok(Value::Undefined),
            Expr::This(_) => env
                .get(&Sym::from("this"))
                .cloned()
                .ok_or_else(|| RuntimeError::Unbound("this".into())),
            Expr::Var(x, _) => env
                .get(x)
                .or_else(|| self.globals.get(x))
                .cloned()
                .or_else(|| {
                    if self.declares.contains_key(x) {
                        Some(Value::Str(format!("$declare:{x}")))
                    } else {
                        None
                    }
                })
                .ok_or_else(|| RuntimeError::Unbound(x.to_string())),
            Expr::Field(b, f, _) => {
                // Enum member access?
                if let Expr::Var(name, _) = b.as_ref() {
                    if let Some(members) = self.enums.get(name) {
                        return members
                            .get(f)
                            .map(|v| Value::Bv(*v))
                            .ok_or_else(|| RuntimeError::BadField(format!("{name}.{f}")));
                    }
                }
                let o = self.eval(b, env)?;
                self.field_read(o, f)
            }
            Expr::Index(a, i, _) => {
                let av = self.eval(a, env)?;
                let iv = self.eval(i, env)?;
                self.array_read(av, iv)
            }
            Expr::Call(callee, args, _) => self.eval_call(callee, args, env),
            Expr::New(cname, _targs, args, _) => {
                let argv: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<_, _>>()?;
                self.construct(cname, argv)
            }
            Expr::Cast(_, e, _) => self.eval(e, env),
            Expr::Unary(op, e, _) => {
                let v = self.eval(e, env)?;
                ops::unop(*op, v, &self.heap)
            }
            Expr::Binary(op, a, b, _) => match op {
                BinOpE::And => {
                    let va = self.eval(a, env)?;
                    if va.truthy() {
                        self.eval(b, env)
                    } else {
                        Ok(va)
                    }
                }
                BinOpE::Or => {
                    let va = self.eval(a, env)?;
                    if va.truthy() {
                        Ok(va)
                    } else {
                        self.eval(b, env)
                    }
                }
                _ => {
                    let va = self.eval(a, env)?;
                    let vb = self.eval(b, env)?;
                    ops::binop(*op, va, vb)
                }
            },
            Expr::Ternary(c, t, f, _) => {
                let vc = self.eval(c, env)?;
                if vc.truthy() {
                    self.eval(t, env)
                } else {
                    self.eval(f, env)
                }
            }
            Expr::ArrayLit(es, _) => {
                let vs: Vec<Value> = es
                    .iter()
                    .map(|x| self.eval(x, env))
                    .collect::<Result<_, _>>()?;
                Ok(Value::Ref(self.heap.alloc(Obj::Arr(vs))))
            }
        }
    }

    fn field_read(&mut self, o: Value, f: &Sym) -> Result<Value, RuntimeError> {
        match o {
            Value::Ref(r) => match self.heap.get(r) {
                Some(Obj::Arr(elems)) => {
                    if f == &Sym::from("length") {
                        Ok(Value::Num(elems.len() as i64))
                    } else {
                        Err(RuntimeError::BadField(format!("array .{f}")))
                    }
                }
                Some(Obj::Instance { fields, class }) => fields.get(f).cloned().ok_or_else(|| {
                    RuntimeError::BadField(format!("{class} instance has no field {f}"))
                }),
                Some(Obj::Closure { .. }) => Err(RuntimeError::BadField(format!("closure .{f}"))),
                None => Err(RuntimeError::BadField("dangling reference".into())),
            },
            Value::Str(s) if f == &Sym::from("length") => Ok(Value::Num(s.len() as i64)),
            other => Err(RuntimeError::BadField(format!(
                "field .{f} on non-object {other}"
            ))),
        }
    }

    fn array_read(&mut self, a: Value, i: Value) -> Result<Value, RuntimeError> {
        match (&a, &i) {
            (Value::Ref(r), Value::Num(ix)) => match self.heap.get(*r) {
                Some(Obj::Arr(elems)) => {
                    if *ix < 0 || *ix as usize >= elems.len() {
                        Err(RuntimeError::OutOfBounds(format!(
                            "read index {ix} on length {}",
                            elems.len()
                        )))
                    } else {
                        Ok(elems[*ix as usize].clone())
                    }
                }
                _ => Err(RuntimeError::TypeError("index read on non-array".into())),
            },
            (Value::Str(s), Value::Num(ix)) => {
                let chars: Vec<char> = s.chars().collect();
                if *ix < 0 || *ix as usize >= chars.len() {
                    Err(RuntimeError::OutOfBounds(format!(
                        "string index {ix} on length {}",
                        chars.len()
                    )))
                } else {
                    Ok(Value::Str(chars[*ix as usize].to_string()))
                }
            }
            _ => Err(RuntimeError::TypeError(format!("index {i} on {a}"))),
        }
    }

    fn eval_call(
        &mut self,
        callee: &Expr,
        args: &[Expr],
        env: &mut HashMap<Sym, Value>,
    ) -> Result<Value, RuntimeError> {
        // Built-ins and ghost axioms.
        if let Expr::Var(name, _) = callee {
            let n = name.as_str();
            if n == "assert" || n == "assume" {
                let v = self.eval(&args[0], env)?;
                return if v.truthy() {
                    Ok(Value::Undefined)
                } else {
                    Err(RuntimeError::AssertFailed("assert(false)".into()))
                };
            }
            if self.declares.contains_key(name) && !self.globals.contains_key(name) {
                // Trusted ghost function: evaluate arguments, return true.
                for a in args {
                    self.eval(a, env)?;
                }
                return Ok(Value::Bool(true));
            }
        }
        // Method call?
        if let Expr::Field(obj, m, _) = callee {
            let recv = self.eval(obj, env)?;
            let argv: Vec<Value> = args
                .iter()
                .map(|a| self.eval(a, env))
                .collect::<Result<_, _>>()?;
            return self.call_method(recv, m, argv);
        }
        let f = self.eval(callee, env)?;
        let argv: Vec<Value> = args
            .iter()
            .map(|a| self.eval(a, env))
            .collect::<Result<_, _>>()?;
        self.apply(f, argv, None)
    }

    fn call_method(
        &mut self,
        recv: Value,
        m: &Sym,
        argv: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        // Array built-ins.
        if let Value::Ref(r) = recv {
            if let Some(Obj::Arr(_)) = self.heap.get(r) {
                match m.as_str() {
                    "push" => {
                        let Some(Obj::Arr(elems)) = self.heap.get_mut(r) else {
                            unreachable!()
                        };
                        elems.push(argv.into_iter().next().unwrap_or(Value::Undefined));
                        let n = elems.len() as i64;
                        return Ok(Value::Num(n));
                    }
                    "pop" => {
                        let Some(Obj::Arr(elems)) = self.heap.get_mut(r) else {
                            unreachable!()
                        };
                        return Ok(elems.pop().unwrap_or(Value::Undefined));
                    }
                    _ => {}
                }
            }
        }
        let Value::Ref(r) = recv else {
            return Err(RuntimeError::BadField(format!("method {m} on {recv}")));
        };
        let class = match self.heap.get(r) {
            Some(Obj::Instance { class, fields }) => {
                // A function-valued field shadows methods.
                if let Some(v @ Value::Ref(_)) = fields.get(m) {
                    let v = v.clone();
                    if let Value::Ref(cr) = v {
                        if matches!(self.heap.get(cr), Some(Obj::Closure { .. })) {
                            return self.apply(v, argv, Some(Value::Ref(r)));
                        }
                    }
                }
                class.clone()
            }
            _ => {
                return Err(RuntimeError::BadField(format!(
                    "method {m} on non-instance"
                )))
            }
        };
        let method = self
            .lookup_method(&class, m)
            .ok_or_else(|| RuntimeError::BadField(format!("class {class} has no method {m}")))?;
        let Some(body) = method.body.clone() else {
            return Err(RuntimeError::NotAFunction(format!("abstract method {m}")));
        };
        let mut frame: HashMap<Sym, Value> = self.globals.clone();
        for (i, (pname, _)) in method.sig.params.iter().enumerate() {
            frame.insert(
                pname.clone(),
                argv.get(i).cloned().unwrap_or(Value::Undefined),
            );
        }
        frame.insert(Sym::from("this"), Value::Ref(r));
        match self.exec_block(&body.stmts, &mut frame)? {
            Flow::Returned(v) => Ok(v),
            Flow::Normal => Ok(Value::Undefined),
        }
    }

    fn lookup_method(&self, class: &Sym, m: &Sym) -> Option<MethodDecl> {
        let mut cur = Some(class.clone());
        while let Some(cname) = cur {
            let c = self.classes.get(&cname)?;
            if let Some(md) = c.methods.iter().find(|md| &md.name == m) {
                return Some(md.clone());
            }
            cur = c.extends.clone();
        }
        None
    }

    fn apply(
        &mut self,
        f: Value,
        argv: Vec<Value>,
        this: Option<Value>,
    ) -> Result<Value, RuntimeError> {
        let Value::Ref(r) = f else {
            return Err(RuntimeError::NotAFunction(format!("{f}")));
        };
        let Some(Obj::Closure { fun }) = self.heap.get(r) else {
            return Err(RuntimeError::NotAFunction(format!("{f}")));
        };
        let clos = &self.closures[*fun];
        let decl = clos.decl.clone();
        let mut frame = self.globals.clone();
        frame.extend(clos.captured.clone());
        for (i, p) in decl.params.iter().enumerate() {
            frame.insert(p.clone(), argv.get(i).cloned().unwrap_or(Value::Undefined));
        }
        // `arguments` array-like (value-based overloading, §2.1.2).
        let args_arr = self.heap.alloc(Obj::Arr(argv));
        frame.insert(Sym::from("arguments"), Value::Ref(args_arr));
        if let Some(t) = this {
            frame.insert(Sym::from("this"), t);
        }
        match self.exec_block(&decl.body.stmts, &mut frame)? {
            Flow::Returned(v) => Ok(v),
            Flow::Normal => Ok(Value::Undefined),
        }
    }

    fn construct(&mut self, cname: &Sym, argv: Vec<Value>) -> Result<Value, RuntimeError> {
        if cname == &Sym::from("Array") {
            return match argv.as_slice() {
                [Value::Num(n)] => {
                    if *n < 0 {
                        Err(RuntimeError::TypeError("negative array length".into()))
                    } else {
                        Ok(Value::Ref(
                            self.heap.alloc(Obj::Arr(vec![Value::Num(0); *n as usize])),
                        ))
                    }
                }
                _ => Ok(Value::Ref(self.heap.alloc(Obj::Arr(argv)))),
            };
        }
        let class = self
            .classes
            .get(cname)
            .cloned()
            .ok_or_else(|| RuntimeError::Unbound(format!("class {cname}")))?;
        let r = self.heap.alloc(Obj::Instance {
            class: cname.clone(),
            fields: HashMap::new(),
        });
        if let Some(ctor) = &class.ctor {
            let mut frame = self.globals.clone();
            for (i, (pname, _)) in ctor.params.iter().enumerate() {
                frame.insert(
                    pname.clone(),
                    argv.get(i).cloned().unwrap_or(Value::Undefined),
                );
            }
            frame.insert(Sym::from("this"), Value::Ref(r));
            self.exec_block(&ctor.body.stmts.clone(), &mut frame)?;
        }
        Ok(Value::Ref(r))
    }
}

/// Convenience: parse-free entry point used by tests.
pub fn run_frsc(p: &Program, fuel: u64) -> Result<Value, RuntimeError> {
    FrscInterp::new(fuel).run(p)
}
