//! Runtime values and heaps shared by the FRSC and IRSC interpreters.

use std::collections::HashMap;
use std::fmt;

use rsc_logic::Sym;

/// A runtime value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A number (integers, per the paper's LIA refinement logic).
    Num(i64),
    /// A 32-bit bit-vector (enum flags).
    Bv(u32),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
    /// `undefined`.
    Undefined,
    /// A heap reference.
    Ref(usize),
}

impl Value {
    /// JavaScript-style truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Num(n) => *n != 0,
            Value::Bv(n) => *n != 0,
            Value::Str(s) => !s.is_empty(),
            Value::Bool(b) => *b,
            Value::Null | Value::Undefined => false,
            Value::Ref(_) => true,
        }
    }

    /// The `typeof` tag (§4.2).
    pub fn type_tag(&self, heap: &Heap) -> &'static str {
        match self {
            Value::Num(_) | Value::Bv(_) => "number",
            Value::Str(_) => "string",
            Value::Bool(_) => "boolean",
            Value::Undefined => "undefined",
            Value::Null => "object",
            Value::Ref(r) => match heap.get(*r) {
                Some(Obj::Closure { .. }) => "function",
                _ => "object",
            },
        }
    }

    /// Strict (`===`) equality.
    pub fn strict_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Num(a), Value::Num(b)) => a == b,
            (Value::Bv(a), Value::Bv(b)) => a == b,
            (Value::Num(a), Value::Bv(b)) | (Value::Bv(b), Value::Num(a)) => {
                *a >= 0 && *a as u32 == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Null, Value::Null) => true,
            (Value::Undefined, Value::Undefined) => true,
            (Value::Ref(a), Value::Ref(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => write!(f, "{n}"),
            Value::Bv(n) => write!(f, "{n:#x}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "null"),
            Value::Undefined => write!(f, "undefined"),
            Value::Ref(r) => write!(f, "<ref {r}>"),
        }
    }
}

/// A heap object.
#[derive(Clone, Debug)]
pub enum Obj {
    /// A fixed-length array.
    Arr(Vec<Value>),
    /// A class instance.
    Instance {
        /// Its class name.
        class: Sym,
        /// Its fields.
        fields: HashMap<Sym, Value>,
    },
    /// A closure; the payload is interpreter-specific and indexed by id.
    Closure {
        /// Index into the interpreter's closure table.
        fun: usize,
    },
}

/// A growable heap of objects.
#[derive(Clone, Debug, Default)]
pub struct Heap {
    objs: Vec<Obj>,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Allocates an object, returning its address.
    pub fn alloc(&mut self, o: Obj) -> usize {
        self.objs.push(o);
        self.objs.len() - 1
    }

    /// The object at address `r`.
    pub fn get(&self, r: usize) -> Option<&Obj> {
        self.objs.get(r)
    }

    /// Mutable access to the object at `r`.
    pub fn get_mut(&mut self, r: usize) -> Option<&mut Obj> {
        self.objs.get_mut(r)
    }

    /// Number of live objects (monotone).
    pub fn len(&self) -> usize {
        self.objs.len()
    }

    /// True when nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty()
    }
}

/// A runtime error — exactly the outcomes type soundness (Theorems 2–5)
/// rules out for verified programs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// Array access out of bounds.
    OutOfBounds(String),
    /// Read of a missing field or property on a non-object.
    BadField(String),
    /// Call of a non-function.
    NotAFunction(String),
    /// `assert(false)`.
    AssertFailed(String),
    /// Arithmetic on non-numbers, etc.
    TypeError(String),
    /// Integer division by zero.
    DivByZero,
    /// Fuel exhausted (divergence guard in tests).
    OutOfFuel,
    /// Unbound variable (interpreter-internal).
    Unbound(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::OutOfBounds(m) => write!(f, "array index out of bounds: {m}"),
            RuntimeError::BadField(m) => write!(f, "bad field access: {m}"),
            RuntimeError::NotAFunction(m) => write!(f, "not a function: {m}"),
            RuntimeError::AssertFailed(m) => write!(f, "assertion failed: {m}"),
            RuntimeError::TypeError(m) => write!(f, "type error: {m}"),
            RuntimeError::DivByZero => write!(f, "division by zero"),
            RuntimeError::OutOfFuel => write!(f, "out of fuel"),
            RuntimeError::Unbound(m) => write!(f, "unbound variable: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}
