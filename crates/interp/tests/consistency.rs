//! SSA Consistency (Theorem 1): FRSC and its IRSC translation agree.
//!
//! Hand-written programs cover the paper's examples; a property test
//! generates random imperative integer programs and checks both
//! interpreters produce identical outcomes.

use proptest::prelude::*;
use rsc_interp::{run_frsc, run_irsc, RuntimeError, Value};

const FUEL: u64 = 2_000_000;

fn both(src: &str) -> (Result<Value, RuntimeError>, Result<Value, RuntimeError>) {
    let prog = rsc_syntax::parse_program(src).expect("parse");
    let ir = rsc_ssa::transform_program(&prog).expect("ssa");
    (run_frsc(&prog, FUEL), run_irsc(&ir, FUEL))
}

fn assert_consistent(src: &str) -> Result<Value, RuntimeError> {
    let (a, b) = both(src);
    assert_eq!(a, b, "FRSC and IRSC disagree on:\n{src}");
    a
}

#[test]
fn reduce_min_index() {
    let v = assert_consistent(
        r#"
        function reduce<A, B>(a: A[], f: (acc: B, x: A, i: idx<a>) => B, x: B): B {
            var res = x, i;
            for (i = 0; i < a.length; i++) {
                res = f(res, a[i], i);
            }
            return res;
        }
        function minIndex(a: number[]): number {
            if (a.length <= 0) { return -1; }
            function step(min: number, cur: number, i: number): number {
                return cur < a[min] ? i : min;
            }
            return reduce(a, step, 0);
        }
        return minIndex([30, 10, 20, 5, 40]);
    "#,
    )
    .unwrap();
    assert_eq!(v, Value::Num(3));
}

#[test]
fn field_class_get_set() {
    let v = assert_consistent(
        r#"
        class Field {
            immutable w : number;
            immutable h : number;
            dens : number[];
            constructor(w: number, h: number, d: number[]) {
                this.h = h; this.w = w; this.dens = d;
            }
            setDensity(x: number, y: number, d: number) {
                var rowS = this.w + 2;
                this.dens[x + 1 + (y + 1) * rowS] = d;
            }
            @ReadOnly getDensity(x: number, y: number): number {
                var rowS = this.w + 2;
                return this.dens[x + 1 + (y + 1) * rowS];
            }
        }
        var z = new Field(3, 7, new Array(45));
        z.setDensity(2, 5, -5);
        return z.getDensity(2, 5);
    "#,
    )
    .unwrap();
    assert_eq!(v, Value::Num(-5));
}

#[test]
fn overloaded_arguments_dispatch() {
    let v = assert_consistent(
        r#"
        sig f : (x: number, y: number) => number;
        sig f : (x: number) => number;
        function f(x, y) {
            if (arguments.length === 2) { return x + y; }
            return x * 10;
        }
        return f(7) + f(1, 2);
    "#,
    )
    .unwrap();
    assert_eq!(v, Value::Num(73));
}

#[test]
fn typeof_reflection() {
    let v = assert_consistent(
        r#"
        function incr(x: number + string): number {
            var r = 1;
            if (typeof x === "number") { r = r + x; }
            return r;
        }
        return incr(41) + incr("nope");
    "#,
    )
    .unwrap();
    assert_eq!(v, Value::Num(43));
}

#[test]
fn bitvector_flags() {
    let v = assert_consistent(
        r#"
        enum TypeFlags {
            Class = 0x0400,
            Interface = 0x0800,
            Reference = 0x1000,
            Object = 0x0400 | 0x0800 | 0x1000,
        }
        function test(flags: TypeFlags): number {
            if (flags & TypeFlags.Object) { return 1; }
            return 0;
        }
        return test(TypeFlags.Class) + test(0x0001);
    "#,
    )
    .unwrap();
    assert_eq!(v, Value::Num(1));
}

#[test]
fn loop_with_early_return() {
    let v = assert_consistent(
        r#"
        function find(a: number[], k: number): number {
            var i = 0;
            while (i < a.length) {
                if (a[i] === k) { return i; }
                i = i + 1;
            }
            return -1;
        }
        return find([5, 6, 7], 7) * 10 + find([5], 9);
    "#,
    )
    .unwrap();
    assert_eq!(v, Value::Num(19));
}

#[test]
fn out_of_bounds_agrees() {
    let (a, b) = both("var a = new Array(3); return a[5];");
    assert!(matches!(a, Err(RuntimeError::OutOfBounds(_))));
    assert_eq!(a, b);
}

#[test]
fn assert_failure_agrees() {
    let (a, b) = both("assert(1 < 0); return 1;");
    assert!(matches!(a, Err(RuntimeError::AssertFailed(_))));
    assert_eq!(a, b);
}

#[test]
fn ghost_function_returns_true() {
    let v = assert_consistent(
        r#"
        declare mulThm1 : (a: nat, b: {v: number | v >= 2}) => {v: boolean | a + a <= a * b};
        var t = mulThm1(3, 4);
        return t ? 1 : 0;
    "#,
    )
    .unwrap();
    assert_eq!(v, Value::Num(1));
}

#[test]
fn nested_if_phis() {
    let v = assert_consistent(
        r#"
        function g(n: number): number {
            var a = 0; var b = 0;
            if (n > 10) {
                a = 1;
                if (n > 20) { b = 2; } else { a = 3; }
            } else {
                b = 4;
            }
            return a * 100 + b;
        }
        return g(25) * 1000000 + g(15) * 1000 + g(5);
    "#,
    )
    .unwrap();
    // g(25)=102, g(15)=300, g(5)=4
    assert_eq!(v, Value::Num(102_300_004));
}

// ------------------------------------------------------------------------
// Random imperative programs over integers: a tiny generator producing
// assignments, arithmetic, conditionals and bounded loops.
// ------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum GExpr {
    Lit(i8),
    Var(u8),
    Add(Box<GExpr>, Box<GExpr>),
    Sub(Box<GExpr>, Box<GExpr>),
    Mul(Box<GExpr>, Box<GExpr>),
}

#[derive(Clone, Debug)]
enum GStmt {
    Assign(u8, GExpr),
    If(GExpr, GExpr, Vec<GStmt>, Vec<GStmt>),
    Loop(u8, Vec<GStmt>),
}

fn gexpr(e: &GExpr) -> String {
    match e {
        GExpr::Lit(n) => format!("({n})"),
        GExpr::Var(v) => format!("x{}", v % 4),
        GExpr::Add(a, b) => format!("({} + {})", gexpr(a), gexpr(b)),
        GExpr::Sub(a, b) => format!("({} - {})", gexpr(a), gexpr(b)),
        GExpr::Mul(a, b) => format!("({} * {})", gexpr(a), gexpr(b)),
    }
}

fn gstmt(s: &GStmt, out: &mut String, indent: usize, loop_id: &mut u32) {
    let pad = "  ".repeat(indent);
    match s {
        GStmt::Assign(v, e) => {
            out.push_str(&format!("{pad}x{} = {};\n", v % 4, gexpr(e)));
        }
        GStmt::If(a, b, t, f) => {
            out.push_str(&format!("{pad}if ({} < {}) {{\n", gexpr(a), gexpr(b)));
            for s in t {
                gstmt(s, out, indent + 1, loop_id);
            }
            out.push_str(&format!("{pad}}} else {{\n"));
            for s in f {
                gstmt(s, out, indent + 1, loop_id);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        GStmt::Loop(v, body) => {
            *loop_id += 1;
            let c = format!("c{loop_id}");
            out.push_str(&format!("{pad}var {c} = 0;\n"));
            out.push_str(&format!("{pad}while ({c} < {}) {{\n", v % 4 + 1));
            for s in body {
                gstmt(s, out, indent + 1, loop_id);
            }
            out.push_str(&format!("{pad}  {c} = {c} + 1;\n"));
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

fn program_of(stmts: &[GStmt]) -> String {
    let mut out = String::from("var x0 = 1; var x1 = 2; var x2 = 3; var x3 = 4;\n");
    let mut loop_id = 0;
    for s in stmts {
        gstmt(s, &mut out, 0, &mut loop_id);
    }
    out.push_str("return ((x0 * 1000003) + x1 * 1009 + x2 * 31 + x3);\n");
    out
}

fn arb_gexpr() -> impl Strategy<Value = GExpr> {
    let leaf = prop_oneof![
        (-9i8..=9).prop_map(GExpr::Lit),
        (0u8..4).prop_map(GExpr::Var)
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| GExpr::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_gstmt() -> impl Strategy<Value = GStmt> {
    let leaf = (0u8..4, arb_gexpr()).prop_map(|(v, e)| GStmt::Assign(v, e));
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                arb_gexpr(),
                arb_gexpr(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(a, b, t, f)| GStmt::If(a, b, t, f)),
            (0u8..4, prop::collection::vec(inner, 1..3)).prop_map(|(v, b)| GStmt::Loop(v, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]
    #[test]
    fn ssa_consistency_random_programs(stmts in prop::collection::vec(arb_gstmt(), 1..6)) {
        let src = program_of(&stmts);
        let prog = rsc_syntax::parse_program(&src).expect("generated program parses");
        let ir = rsc_ssa::transform_program(&prog).expect("ssa");
        let a = run_frsc(&prog, FUEL);
        let b = run_irsc(&ir, FUEL);
        prop_assert_eq!(a, b, "disagreement on:\n{}", src);
    }
}
