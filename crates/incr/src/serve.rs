//! The `rsc serve` protocol: newline-delimited JSON requests on stdin,
//! one JSON response per line on stdout.
//!
//! Two request shapes share the transport:
//!
//! # Legacy `cmd` requests
//!
//! | request                                   | effect                              |
//! |-------------------------------------------|-------------------------------------|
//! | `{"cmd":"load","path":"f.rsc"}`           | read file, (re-)check it            |
//! | `{"cmd":"load","source":"…"}`             | check the inline source             |
//! | `{"cmd":"edit","source":"…"}`             | replace the text, incremental check |
//! | `{"cmd":"edit","path":"f.rsc"}`           | re-read the file, incremental check |
//! | `{"cmd":"check"}`                         | re-check the current text           |
//! | `{"cmd":"stats"}`                         | session + VC-cache counters         |
//! | `{"cmd":"reset"}`                         | drop retained verdicts and cache    |
//! | `{"cmd":"quit"}`                          | acknowledge and exit                |
//!
//! Check responses look like:
//!
//! ```json
//! {"ok":true,"cmd":"edit","verified":false,
//!  "diagnostics":[{"severity":"error","line":12,"code":"R0008","message":"…"}],
//!  "bundles":9,"reused":8,"solved":1,"fast_path":false,
//!  "dirty_units":["fun:step"],"time_us":1234}
//! ```
//!
//! `load` and `edit` are deliberately the same operation on an existing
//! session — `load` additionally remembers the path so later bare
//! `edit`/`check` requests can re-read it. Errors (unreadable file, bad
//! JSON, unknown command) come back as `{"ok":false,"error":"…"}` and
//! never kill the loop.
//!
//! # LSP-shaped `method` requests
//!
//! Requests carrying a `method` field speak a Language-Server-Protocol
//! subset over the same NDJSON transport (one JSON value per line, no
//! `Content-Length` framing):
//!
//! | method                     | effect                                          |
//! |----------------------------|-------------------------------------------------|
//! | `initialize`               | `{"id":…,"result":{"capabilities":…}}`          |
//! | `initialized`              | notification, no response line                  |
//! | `textDocument/didOpen`     | check `params.textDocument.text`, publish       |
//! | `textDocument/didChange`   | check the last full `contentChanges` text       |
//! | `shutdown`                 | `{"id":…,"result":null}`                        |
//! | `exit`                     | leave the loop                                  |
//!
//! `didOpen`/`didChange` answer with a
//! `textDocument/publishDiagnostics` notification whose ranges are true
//! LSP positions — 0-based `{line, character}` pairs in the protocol's
//! default **UTF-16** position encoding (also advertised in the
//! `initialize` capabilities), derived from the blame spans through
//! [`rsc_syntax::LineIndex`] — plus the obligation code (`R0001`-style)
//! and a non-standard top-level `rsc` object with the session's
//! incremental counters. Malformed `didOpen`/`didChange` payloads are
//! answered with a JSON-RPC error only when the request carried an
//! `id`; true notifications are dropped silently, as the spec demands.

use std::io::{BufRead, Write};

use rsc_core::{CheckerOptions, Diagnostic};
use rsc_syntax::LineIndex;

use crate::json::Json;
use crate::session::{CheckSession, SessionOutcome};

/// The state behind one `rsc serve` loop.
pub struct Serve {
    session: CheckSession,
    /// The most recently named file (for bare `edit`/`check` requests).
    path: Option<String>,
    /// The current text, as last submitted or read.
    src: Option<String>,
    /// True when `src` arrived inline (an editor buffer) rather than
    /// from disk: a bare `check` must then re-check the buffer, not
    /// silently revert to the file's on-disk contents.
    src_is_inline: bool,
}

impl Serve {
    /// A fresh serve state checking with `opts`.
    pub fn new(opts: CheckerOptions) -> Serve {
        Serve {
            session: CheckSession::new(opts),
            path: None,
            src: None,
            src_is_inline: false,
        }
    }

    /// Handles one request line; returns the response line and whether
    /// the loop should exit.
    pub fn handle(&mut self, line: &str) -> (String, bool) {
        let line = line.trim();
        if line.is_empty() {
            return (err("empty request"), false);
        }
        let req = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return (err(&format!("bad JSON: {e}")), false),
        };
        if req.get("method").and_then(Json::as_str).is_some() {
            return self.handle_lsp(&req);
        }
        let cmd = match req.get("cmd").and_then(Json::as_str) {
            Some(c) => c.to_string(),
            None => return (err("missing \"cmd\" (or LSP \"method\")"), false),
        };
        match cmd.as_str() {
            "load" | "edit" => {
                let source = match self.resolve_source(&req) {
                    Ok(s) => s,
                    Err(e) => return (err(&e), false),
                };
                if let Some(p) = req.get("path").and_then(Json::as_str) {
                    self.path = Some(p.to_string());
                }
                self.src_is_inline = req.get("source").and_then(Json::as_str).is_some();
                self.src = Some(source.clone());
                let outcome = self.session.check(&source);
                (check_response(&cmd, &outcome), false)
            }
            "check" => match self.current_source() {
                Ok(source) => {
                    let outcome = self.session.check(&source);
                    (check_response("check", &outcome), false)
                }
                Err(e) => (err(&e), false),
            },
            "stats" => (self.stats_response(), false),
            "reset" => {
                self.session.reset();
                (
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("cmd".into(), Json::str("reset")),
                    ])
                    .to_string(),
                    false,
                )
            }
            "quit" => (
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("cmd".into(), Json::str("quit")),
                ])
                .to_string(),
                true,
            ),
            other => (err(&format!("unknown cmd {other:?}")), false),
        }
    }

    /// Dispatches one LSP-shaped request (`method` field present).
    /// Notifications that warrant no response return an empty line,
    /// which [`Serve::run`] skips.
    fn handle_lsp(&mut self, req: &Json) -> (String, bool) {
        let method = req.get("method").and_then(Json::as_str).unwrap_or_default();
        let id = req.get("id").cloned().unwrap_or(Json::Null);
        match method {
            "initialize" => {
                let result = Json::Obj(vec![
                    (
                        "capabilities".into(),
                        Json::Obj(vec![
                            // 1 = full-document sync; didChange carries the
                            // whole text.
                            ("textDocumentSync".into(), Json::num(1.0)),
                            ("positionEncoding".into(), Json::str("utf-16")),
                            ("diagnosticProvider".into(), Json::Bool(true)),
                        ]),
                    ),
                    (
                        "serverInfo".into(),
                        Json::Obj(vec![
                            ("name".into(), Json::str("rsc")),
                            ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
                        ]),
                    ),
                ]);
                (lsp_response(id, result), false)
            }
            "initialized" => (String::new(), false),
            "shutdown" => (lsp_response(id, Json::Null), false),
            "exit" => (String::new(), true),
            "textDocument/didOpen" => {
                let doc = req.get("params").and_then(|p| p.get("textDocument"));
                let uri = doc
                    .and_then(|d| d.get("uri"))
                    .and_then(Json::as_str)
                    .unwrap_or("untitled:buffer")
                    .to_string();
                let Some(text) = doc.and_then(|d| d.get("text")).and_then(Json::as_str) else {
                    return (
                        notification_param_error(req, id, "didOpen needs params.textDocument.text"),
                        false,
                    );
                };
                let text = text.to_string();
                (self.lsp_check(&uri, text), false)
            }
            "textDocument/didChange" => {
                let params = req.get("params");
                let uri = params
                    .and_then(|p| p.get("textDocument"))
                    .and_then(|d| d.get("uri"))
                    .and_then(Json::as_str)
                    .unwrap_or("untitled:buffer")
                    .to_string();
                // Full-document sync (advertised as textDocumentSync: 1):
                // take the last full-text change, and refuse
                // range-deltas loudly — silently checking a fragment as
                // the whole buffer would publish garbage diagnostics
                // and corrupt the remembered session text.
                let last_change =
                    params
                        .and_then(|p| p.get("contentChanges"))
                        .and_then(|c| match c {
                            Json::Arr(changes) => changes.last(),
                            _ => None,
                        });
                if last_change.is_some_and(|ch| ch.get("range").is_some()) {
                    return (
                        notification_param_error(
                            req,
                            id,
                            "incremental (range) changes are not supported; \
                             this server uses full-document sync (textDocumentSync: 1)",
                        ),
                        false,
                    );
                }
                let text = last_change
                    .and_then(|ch| ch.get("text"))
                    .and_then(Json::as_str)
                    .map(str::to_string);
                let Some(text) = text else {
                    return (
                        notification_param_error(
                            req,
                            id,
                            "didChange needs params.contentChanges[…].text",
                        ),
                        false,
                    );
                };
                (self.lsp_check(&uri, text), false)
            }
            other => (
                // MethodNotFound: spec-following clients degrade silently.
                lsp_error_code(id, -32601.0, &format!("unknown method {other:?}")),
                false,
            ),
        }
    }

    /// Checks `text` through the session and renders the LSP-shaped
    /// `textDocument/publishDiagnostics` notification.
    fn lsp_check(&mut self, uri: &str, text: String) -> String {
        let outcome = self.session.check(&text);
        let response = publish_diagnostics(uri, &text, &outcome);
        self.src = Some(text);
        self.src_is_inline = true;
        response
    }

    /// Source text for a `load`/`edit` request: inline `source` wins,
    /// else `path` (re-)read from disk, else the remembered path.
    fn resolve_source(&self, req: &Json) -> Result<String, String> {
        if let Some(s) = req.get("source").and_then(Json::as_str) {
            return Ok(s.to_string());
        }
        let path = req
            .get("path")
            .and_then(Json::as_str)
            .map(str::to_string)
            .or_else(|| self.path.clone())
            .ok_or("need \"source\" or \"path\"")?;
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))
    }

    /// The text a bare `check` re-checks: the inline buffer when the
    /// latest `load`/`edit` carried one (re-reading the path here would
    /// silently verify stale on-disk contents), otherwise a fresh read
    /// of the remembered path.
    fn current_source(&self) -> Result<String, String> {
        if !self.src_is_inline {
            if let Some(p) = &self.path {
                return std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
            }
        }
        self.src.clone().ok_or_else(|| "nothing loaded".to_string())
    }

    fn stats_response(&self) -> String {
        let c = self.session.cache().counters();
        let mut fields = vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("stats")),
            ("cache_entries".into(), Json::num(c.entries as f64)),
            ("cache_hits".into(), Json::num(c.hits as f64)),
            ("cache_misses".into(), Json::num(c.misses as f64)),
            ("cache_evictions".into(), Json::num(c.evictions as f64)),
        ];
        if let Some(last) = self.session.last() {
            fields.push(("bundles".into(), Json::num(last.incr.bundles as f64)));
            fields.push(("verified".into(), Json::Bool(last.result.ok())));
        }
        Json::Obj(fields).to_string()
    }

    /// Runs the serve loop over arbitrary reader/writer pairs (stdin and
    /// stdout in the binary; in-memory buffers in tests and CI drivers).
    pub fn run(
        opts: CheckerOptions,
        reader: impl BufRead,
        mut writer: impl Write,
    ) -> std::io::Result<()> {
        let mut serve = Serve::new(opts);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (response, quit) = serve.handle(&line);
            // LSP notifications (`initialized`, `exit`) have no response.
            if !response.is_empty() {
                writeln!(writer, "{response}")?;
                writer.flush()?;
            }
            if quit {
                break;
            }
        }
        Ok(())
    }
}

fn err(msg: &str) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::str(msg)),
    ])
    .to_string()
}

fn lsp_response(id: Json, result: Json) -> String {
    Json::Obj(vec![
        ("jsonrpc".into(), Json::str("2.0")),
        ("id".into(), id),
        ("result".into(), result),
    ])
    .to_string()
}

/// JSON-RPC error codes: `-32601` MethodNotFound, `-32602` InvalidParams.
fn lsp_error_code(id: Json, code: f64, msg: &str) -> String {
    Json::Obj(vec![
        ("jsonrpc".into(), Json::str("2.0")),
        ("id".into(), id),
        (
            "error".into(),
            Json::Obj(vec![
                ("code".into(), Json::num(code)),
                ("message".into(), Json::str(msg)),
            ]),
        ),
    ])
    .to_string()
}

fn lsp_error(id: Json, msg: &str) -> String {
    lsp_error_code(id, -32602.0, msg)
}

/// InvalidParams for a request that carried an `id`; silence for a true
/// notification (the spec forbids responding to notifications, and a
/// response with `id: null` reads as a protocol error to clients).
fn notification_param_error(req: &Json, id: Json, msg: &str) -> String {
    if req.get("id").is_some() {
        lsp_error(id, msg)
    } else {
        String::new()
    }
}

/// `{line, character}` — LSP positions are 0-based and count **UTF-16
/// code units** (the protocol's default encoding, advertised in the
/// `initialize` capabilities; see
/// [`rsc_syntax::LineIndex::line_col_utf16`]).
fn lsp_position(idx: &LineIndex, src: &str, offset: u32) -> Json {
    let lc = idx.line_col_utf16(src, offset);
    Json::Obj(vec![
        ("line".into(), Json::num((lc.line - 1) as f64)),
        ("character".into(), Json::num((lc.col - 1) as f64)),
    ])
}

/// One LSP diagnostic object from a checker [`Diagnostic`]: range from
/// the blame span, severity, obligation code, message with the
/// expected/actual notes folded in, secondary labels as
/// `relatedInformation`.
fn lsp_diagnostic(d: &Diagnostic, uri: &str, idx: &LineIndex, src: &str) -> Json {
    let severity = match d.severity {
        rsc_core::Severity::Error => 1.0,
        rsc_core::Severity::Note => 3.0,
    };
    let mut message = d.message.clone();
    for note in &d.notes {
        message.push('\n');
        message.push_str(note);
    }
    let mut fields = vec![
        (
            "range".into(),
            Json::Obj(vec![
                ("start".into(), lsp_position(idx, src, d.span.lo)),
                ("end".into(), lsp_position(idx, src, d.span.hi)),
            ]),
        ),
        ("severity".into(), Json::num(severity)),
        ("source".into(), Json::str("rsc")),
        ("message".into(), Json::str(message)),
    ];
    if let Some(code) = d.code {
        fields.insert(2, ("code".into(), Json::str(code)));
    }
    if !d.secondary.is_empty() {
        let related: Vec<Json> = d
            .secondary
            .iter()
            .map(|(span, label)| {
                Json::Obj(vec![
                    (
                        "location".into(),
                        Json::Obj(vec![
                            ("uri".into(), Json::str(uri)),
                            (
                                "range".into(),
                                Json::Obj(vec![
                                    ("start".into(), lsp_position(idx, src, span.lo)),
                                    ("end".into(), lsp_position(idx, src, span.hi)),
                                ]),
                            ),
                        ]),
                    ),
                    ("message".into(), Json::str(label.clone())),
                ])
            })
            .collect();
        fields.push(("relatedInformation".into(), Json::Arr(related)));
    }
    Json::Obj(fields)
}

/// The `textDocument/publishDiagnostics` notification for one check,
/// with the session's incremental counters in a non-standard top-level
/// `rsc` object (the params stay strictly LSP-shaped).
fn publish_diagnostics(uri: &str, src: &str, outcome: &SessionOutcome) -> String {
    let idx = LineIndex::new(src);
    let diags: Vec<Json> = outcome
        .result
        .diagnostics
        .iter()
        .map(|d| lsp_diagnostic(d, uri, &idx, src))
        .collect();
    Json::Obj(vec![
        ("jsonrpc".into(), Json::str("2.0")),
        (
            "method".into(),
            Json::str("textDocument/publishDiagnostics"),
        ),
        (
            "params".into(),
            Json::Obj(vec![
                ("uri".into(), Json::str(uri)),
                ("diagnostics".into(), Json::Arr(diags)),
            ]),
        ),
        (
            "rsc".into(),
            Json::Obj(vec![
                ("verified".into(), Json::Bool(outcome.result.ok())),
                ("bundles".into(), Json::num(outcome.incr.bundles as f64)),
                ("reused".into(), Json::num(outcome.incr.reused as f64)),
                ("solved".into(), Json::num(outcome.incr.solved as f64)),
                ("fast_path".into(), Json::Bool(outcome.incr.fast_path)),
                (
                    "time_us".into(),
                    Json::num(outcome.incr.total_micros as f64),
                ),
            ]),
        ),
    ])
    .to_string()
}

fn check_response(cmd: &str, outcome: &SessionOutcome) -> String {
    let diags: Vec<Json> = outcome
        .result
        .diagnostics
        .iter()
        .map(|d| {
            let severity = match d.severity {
                rsc_core::Severity::Error => "error",
                rsc_core::Severity::Note => "note",
            };
            let mut fields = vec![
                ("severity".into(), Json::str(severity)),
                ("line".into(), Json::num(d.span.line as f64)),
                ("message".into(), Json::str(d.message.clone())),
            ];
            if let Some(code) = d.code {
                fields.insert(1, ("code".into(), Json::str(code)));
            }
            Json::Obj(fields)
        })
        .collect();
    let dirty: Vec<Json> = outcome
        .incr
        .dirty_units
        .iter()
        .map(|u| Json::str(u.clone()))
        .collect();
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("cmd".into(), Json::str(cmd)),
        ("verified".into(), Json::Bool(outcome.result.ok())),
        ("diagnostics".into(), Json::Arr(diags)),
        ("bundles".into(), Json::num(outcome.incr.bundles as f64)),
        ("reused".into(), Json::num(outcome.incr.reused as f64)),
        ("solved".into(), Json::num(outcome.incr.solved as f64)),
        ("fast_path".into(), Json::Bool(outcome.incr.fast_path)),
        ("dirty_units".into(), Json::Arr(dirty)),
        (
            "time_us".into(),
            Json::num(outcome.incr.total_micros as f64),
        ),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "type nat = {v: number | 0 <= v};\nfunction abs(x: number): nat {\n    if (x < 0) { return 0 - x; }\n    return x;\n}\nfunction dbl(y: nat): nat { return y + y; }\n";

    fn load_req(src: &str) -> String {
        Json::Obj(vec![
            ("cmd".into(), Json::str("load")),
            ("source".into(), Json::str(src)),
        ])
        .to_string()
    }

    fn edit_req(src: &str) -> String {
        Json::Obj(vec![
            ("cmd".into(), Json::str("edit")),
            ("source".into(), Json::str(src)),
        ])
        .to_string()
    }

    #[test]
    fn load_edit_cycle() {
        let mut serve = Serve::new(CheckerOptions::default());
        let (resp, quit) = serve.handle(&load_req(PROG));
        assert!(!quit);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("verified"), Some(&Json::Bool(true)));
        assert_eq!(v.get("reused").unwrap().as_f64(), Some(0.0));

        // Break abs (x = 0 falls through and returns -1); id's bundle
        // is reused and the error is reported.
        let bad = PROG.replace("return x;\n}", "return x - 1;\n}");
        let (resp, _) = serve.handle(&edit_req(&bad));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("verified"), Some(&Json::Bool(false)));
        assert!(v.get("reused").unwrap().as_f64().unwrap() > 0.0);
        match v.get("diagnostics") {
            Some(Json::Arr(ds)) => assert!(!ds.is_empty()),
            other => panic!("bad diagnostics: {other:?}"),
        }

        // Fix it again: fast, verified.
        let (resp, _) = serve.handle(&edit_req(PROG));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("verified"), Some(&Json::Bool(true)));
    }

    /// A bare `check` after an inline `edit` must re-check the inline
    /// buffer, not silently re-read the older on-disk file.
    #[test]
    fn bare_check_prefers_the_inline_buffer() {
        let dir = std::env::temp_dir().join("rsc_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("buffer.rsc");
        std::fs::write(&file, PROG).unwrap();
        let mut serve = Serve::new(CheckerOptions::default());
        let load = Json::Obj(vec![
            ("cmd".into(), Json::str("load")),
            ("path".into(), Json::str(file.to_str().unwrap())),
        ])
        .to_string();
        let (resp, _) = serve.handle(&load);
        assert_eq!(
            Json::parse(&resp).unwrap().get("verified"),
            Some(&Json::Bool(true))
        );
        // Editor submits a broken buffer; the disk file stays clean.
        let bad = PROG.replace("return x;\n}", "return x - 1;\n}");
        serve.handle(&edit_req(&bad));
        let (resp, _) = serve.handle(r#"{"cmd":"check"}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(
            v.get("verified"),
            Some(&Json::Bool(false)),
            "bare check must see the inline edit, not the stale file: {resp}"
        );
        // A path-carrying edit switches back to disk.
        let reload = Json::Obj(vec![
            ("cmd".into(), Json::str("edit")),
            ("path".into(), Json::str(file.to_str().unwrap())),
        ])
        .to_string();
        let (resp, _) = serve.handle(&reload);
        assert_eq!(
            Json::parse(&resp).unwrap().get("verified"),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn protocol_errors_do_not_kill_the_loop() {
        let mut serve = Serve::new(CheckerOptions::default());
        for bad in ["not json", "{}", r#"{"cmd":"nope"}"#, r#"{"cmd":"check"}"#] {
            let (resp, quit) = serve.handle(bad);
            assert!(!quit);
            let v = Json::parse(&resp).unwrap();
            assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{bad}");
        }
        let (_, quit) = serve.handle(r#"{"cmd":"quit"}"#);
        assert!(quit);
    }

    fn lsp_req(method: &str, params: Json, id: Option<f64>) -> String {
        let mut fields = vec![
            ("jsonrpc".into(), Json::str("2.0")),
            ("method".into(), Json::str(method)),
        ];
        if let Some(id) = id {
            fields.insert(1, ("id".into(), Json::num(id)));
        }
        fields.push(("params".into(), params));
        Json::Obj(fields).to_string()
    }

    fn did_open(uri: &str, text: &str) -> String {
        lsp_req(
            "textDocument/didOpen",
            Json::Obj(vec![(
                "textDocument".into(),
                Json::Obj(vec![
                    ("uri".into(), Json::str(uri)),
                    ("text".into(), Json::str(text)),
                ]),
            )]),
            None,
        )
    }

    fn did_change(uri: &str, text: &str) -> String {
        lsp_req(
            "textDocument/didChange",
            Json::Obj(vec![
                (
                    "textDocument".into(),
                    Json::Obj(vec![("uri".into(), Json::str(uri))]),
                ),
                (
                    "contentChanges".into(),
                    Json::Arr(vec![Json::Obj(vec![("text".into(), Json::str(text))])]),
                ),
            ]),
            None,
        )
    }

    #[test]
    fn lsp_initialize_and_shutdown() {
        let mut serve = Serve::new(CheckerOptions::default());
        let (resp, quit) =
            serve.handle(r#"{"jsonrpc":"2.0","id":1,"method":"initialize","params":{}}"#);
        assert!(!quit);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_f64), Some(1.0));
        let caps = v.get("result").and_then(|r| r.get("capabilities"));
        assert!(caps.is_some(), "{resp}");
        // `initialized` is a notification: no response line.
        let (resp, quit) = serve.handle(r#"{"jsonrpc":"2.0","method":"initialized","params":{}}"#);
        assert!(resp.is_empty() && !quit);
        let (resp, _) = serve.handle(r#"{"jsonrpc":"2.0","id":2,"method":"shutdown"}"#);
        assert_eq!(Json::parse(&resp).unwrap().get("result"), Some(&Json::Null));
        let (resp, quit) = serve.handle(r#"{"jsonrpc":"2.0","method":"exit"}"#);
        assert!(resp.is_empty() && quit);
    }

    #[test]
    fn lsp_open_edit_cycle_publishes_ranged_diagnostics() {
        let uri = "file:///buffer.rsc";
        let mut serve = Serve::new(CheckerOptions::default());

        // Clean open: publishDiagnostics with an empty list.
        let (resp, _) = serve.handle(&did_open(uri, PROG));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(
            v.get("method").and_then(Json::as_str),
            Some("textDocument/publishDiagnostics"),
            "{resp}"
        );
        let params = v.get("params").unwrap();
        assert_eq!(params.get("uri").and_then(Json::as_str), Some(uri));
        assert_eq!(params.get("diagnostics"), Some(&Json::Arr(vec![])));
        assert_eq!(
            v.get("rsc").and_then(|r| r.get("verified")),
            Some(&Json::Bool(true))
        );

        // Broken edit: a diagnostic with a non-dummy LSP range and a code.
        let bad = PROG.replace("return x;\n}", "return x - 1;\n}");
        let (resp, _) = serve.handle(&did_change(uri, &bad));
        let v = Json::parse(&resp).unwrap();
        let diags = match v.get("params").and_then(|p| p.get("diagnostics")) {
            Some(Json::Arr(ds)) if !ds.is_empty() => ds.clone(),
            other => panic!("expected diagnostics, got {other:?}: {resp}"),
        };
        for d in &diags {
            let range = d.get("range").expect("range");
            let start = range.get("start").expect("start");
            let end = range.get("end").expect("end");
            let sl = start.get("line").and_then(Json::as_f64).unwrap();
            let sc = start.get("character").and_then(Json::as_f64).unwrap();
            let el = end.get("line").and_then(Json::as_f64).unwrap();
            let ec = end.get("character").and_then(Json::as_f64).unwrap();
            assert!(
                (el, ec) > (sl, sc),
                "range must be non-dummy (start < end): {d:?}"
            );
            let code = d.get("code").and_then(Json::as_str).expect("code");
            assert!(code.starts_with('R'), "{code}");
            assert_eq!(d.get("severity").and_then(Json::as_f64), Some(1.0));
        }
        // The session reused the untouched function's bundle.
        let rsc = v.get("rsc").unwrap();
        assert_eq!(rsc.get("verified"), Some(&Json::Bool(false)));
        assert!(rsc.get("reused").and_then(Json::as_f64).unwrap() > 0.0);

        // Fix it back: clean again.
        let (resp, _) = serve.handle(&did_change(uri, PROG));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(
            v.get("rsc").and_then(|r| r.get("verified")),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn lsp_and_legacy_requests_interleave() {
        let mut serve = Serve::new(CheckerOptions::default());
        let (resp, _) = serve.handle(&did_open("file:///x.rsc", PROG));
        assert!(resp.contains("publishDiagnostics"));
        // A legacy bare `check` sees the LSP buffer.
        let (resp, _) = serve.handle(r#"{"cmd":"check"}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("verified"), Some(&Json::Bool(true)), "{resp}");
        // Malformed LSP *request* (it carries an id) errors without
        // killing the loop…
        let (resp, quit) =
            serve.handle(r#"{"jsonrpc":"2.0","id":9,"method":"textDocument/didOpen","params":{}}"#);
        assert!(!quit);
        assert!(Json::parse(&resp).unwrap().get("error").is_some(), "{resp}");
        // …while a malformed *notification* (no id) is dropped silently:
        // the spec forbids responding to notifications.
        let (resp, quit) =
            serve.handle(r#"{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{}}"#);
        assert!(resp.is_empty() && !quit, "{resp}");
    }

    #[test]
    fn run_loop_over_buffers() {
        let script = format!(
            "{}\n{}\n{}\n{}\n",
            load_req(PROG),
            r#"{"cmd":"stats"}"#,
            r#"{"cmd":"reset"}"#,
            r#"{"cmd":"quit"}"#
        );
        let mut out = Vec::new();
        Serve::run(
            CheckerOptions::default(),
            std::io::BufReader::new(script.as_bytes()),
            &mut out,
        )
        .unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
        assert_eq!(lines.len(), 4);
        for l in &lines {
            assert_eq!(
                Json::parse(l).unwrap().get("ok"),
                Some(&Json::Bool(true)),
                "{l}"
            );
        }
    }
}
