//! The `rsc serve` protocol: newline-delimited JSON requests on stdin,
//! one JSON value per line on stdout.
//!
//! The server state is a [`Workspace`]: one document session per
//! URI/path, each retaining its own verdicts over one shared VC cache,
//! so interleaved edits across documents never re-check cold and
//! `import`-connected files re-check their importers automatically.
//!
//! Two request shapes share the transport:
//!
//! # Legacy `cmd` requests
//!
//! | request                                   | effect                              |
//! |-------------------------------------------|-------------------------------------|
//! | `{"cmd":"load","path":"f.rsc"}`           | read file, (re-)check its closure   |
//! | `{"cmd":"load","source":"…"}`             | check the inline source             |
//! | `{"cmd":"edit","source":"…"}`             | replace the text, incremental check |
//! | `{"cmd":"edit","path":"f.rsc"}`           | re-read the file, incremental check |
//! | `{"cmd":"check"}`                         | re-check the active document        |
//! | `{"cmd":"stats"}`                         | session + VC-cache counters + timing|
//! | `{"cmd":"metrics"}`                       | counters, cache rates, latency, phases |
//! | `{"cmd":"reset"}`                         | drop all documents and the cache    |
//! | `{"cmd":"quit"}`                          | acknowledge and exit                |
//!
//! Each `load`/`edit` names a document: the `path` is its key (inline
//! sources without a path share the `inline:buffer` key). Check
//! responses look like:
//!
//! ```json
//! {"ok":true,"cmd":"edit","path":"a.rsc","verified":false,
//!  "diagnostics":[{"severity":"error","line":12,"code":"R0008","message":"…"}],
//!  "bundles":9,"reused":8,"solved":1,"fast_path":false,
//!  "dirty_units":["fun:step"],"deps_changed":[],"dirty_own":["fun:step"],
//!  "importers":[{"path":"b.rsc","verified":true,"reused":4,"solved":0,
//!                "deps_changed":[],"dirty_own":[]}],
//!  "time_us":1234}
//! ```
//!
//! In a multi-file closure each diagnostic carries a `file` field and a
//! `line` local to that file; editing a file that other loaded
//! documents import re-checks those importers too (summarized under
//! `importers`). Errors (unreadable file, bad JSON, unknown command)
//! come back as `{"ok":false,"error":"…"}` and never kill the loop.
//!
//! # LSP-shaped `method` requests
//!
//! Requests carrying a `method` field speak a Language-Server-Protocol
//! subset over the same NDJSON transport (one JSON value per line, no
//! `Content-Length` framing):
//!
//! | method                     | effect                                          |
//! |----------------------------|-------------------------------------------------|
//! | `initialize`               | `{"id":…,"result":{"capabilities":…}}`          |
//! | `initialized`              | notification, no response line                  |
//! | `textDocument/didOpen`     | open `params.textDocument.uri`, check, publish  |
//! | `textDocument/didChange`   | re-check the URI with the last full text        |
//! | `textDocument/didClose`    | drop the URI's session, clear its diagnostics   |
//! | `shutdown`                 | `{"id":…,"result":null}`                        |
//! | `exit`                     | leave the loop                                  |
//!
//! `didOpen`/`didChange` answer with one
//! `textDocument/publishDiagnostics` notification **per affected URI**:
//! the edited document first (plus any closure files that are not
//! themselves open documents), then each open importer that was
//! re-checked. Ranges are true LSP positions — 0-based `{line,
//! character}` pairs in the protocol's default **UTF-16** position
//! encoding, local to each file — and cross-file blame flows through
//! `relatedInformation`, whose locations name the *exporting* file's
//! URI. Each notification also carries a non-standard top-level `rsc`
//! object with the incremental counters of the check that produced it,
//! plus `deps_changed` (dependencies whose export surface changed) and
//! `dirty_own` (dirty units in the published document itself).
//!
//! A missing `params.textDocument.uri` is an `InvalidParams` error —
//! defaulting two malformed clients onto one shared buffer would alias
//! their documents. So are range-carrying `contentChanges` entries
//! (*any* element, not just the last: this server advertises
//! full-document sync) and an empty `contentChanges` array. As the spec
//! demands, malformed *requests* (carrying an `id`) get a JSON-RPC
//! error while malformed notifications are dropped silently.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{BufRead, Write};
use std::sync::Mutex;

use rsc_core::{CheckerOptions, Diagnostic};
use rsc_syntax::LineIndex;

use crate::json::Json;
use crate::workspace::{disk_path, DocReport, Workspace};

/// The document key for legacy inline sources that never named a path.
const INLINE_KEY: &str = "inline:buffer";

/// The state behind one `rsc serve` loop.
pub struct Serve {
    ws: Workspace,
    /// The most recently checked document (bare `edit`/`check` target).
    active: Option<String>,
    /// Per-document: true when the current text arrived inline (an
    /// editor buffer) rather than from disk — a bare `check` must then
    /// re-check the buffer, not silently revert to the file's on-disk
    /// contents.
    inline: HashMap<String, bool>,
    /// Per-document: the URIs its last check published diagnostics for.
    /// When a file leaves a document's closure (an import removed, a
    /// specifier that stopped resolving), its URI gets one final empty
    /// publish — otherwise the client would pin its stale errors
    /// forever.
    published: HashMap<String, BTreeSet<String>>,
    /// Cumulative per-phase `(count, total_ns)` across every check this
    /// server ran — the `stats`/`metrics` timing summary. Keyed by phase
    /// name (sorted), so exports are deterministic given the same spans.
    phase_acc: BTreeMap<&'static str, (u64, u64)>,
    /// Monotonic counters plus the check-latency histogram
    /// (p50/p90/p99) behind `{"cmd":"metrics"}`.
    registry: rsc_obs::Registry,
}

impl Serve {
    /// A fresh serve state checking with `opts`.
    pub fn new(opts: CheckerOptions) -> Serve {
        Serve::over(Workspace::new(opts))
    }

    /// A fresh serve state over a caller-built workspace (how the
    /// binary attaches the persistent `--vc-cache` disk tier).
    pub fn over(ws: Workspace) -> Serve {
        Serve {
            ws,
            active: None,
            inline: HashMap::new(),
            published: HashMap::new(),
            phase_acc: BTreeMap::new(),
            registry: rsc_obs::Registry::new(),
        }
    }

    /// Runs one workspace update with span collection enabled, returning
    /// the reports plus the per-phase timing object for exactly this
    /// check. Collection is metrics-only: the reports are byte-identical
    /// to an uninstrumented update (enforced by
    /// `tests/profile_determinism.rs` at the workspace root).
    fn checked_update(&mut self, key: &str, text: String) -> (Vec<DocReport>, Json) {
        // The span collector is process-global; serialize the
        // enable → check → drain window so concurrent `Serve` instances
        // (tests) cannot drain each other's spans mid-check.
        static OBS_LOCK: Mutex<()> = Mutex::new(());
        let _obs = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let was_enabled = rsc_obs::enabled();
        rsc_obs::set_enabled(true);
        rsc_obs::drain(); // attribute spans to this check only
        let reports = self.ws.update(key, text);
        let profile = rsc_obs::drain();
        rsc_obs::set_enabled(was_enabled);

        profile.accumulate_into(&mut self.phase_acc);
        self.registry.add("checks_total", 1);
        for r in &reports {
            let incr = &r.outcome.incr;
            self.registry.add("bundles_total", incr.bundles as u64);
            self.registry
                .add("bundles_reused_total", incr.reused as u64);
            self.registry
                .add("bundles_solved_total", incr.solved as u64);
            self.registry
                .add("importers_skipped_total", incr.importers_skipped as u64);
            if !r.outcome.result.ok() {
                self.registry.add("checks_failed_total", 1);
            }
            self.registry.add(
                "obligations_discharged_total",
                r.outcome.result.stats.obligations_discharged,
            );
            self.registry
                .add("lints_total", r.outcome.result.lints.len() as u64);
            self.registry.observe_us("check_latency", incr.total_micros);
        }
        (reports, timing_json(&profile.phase_totals()))
    }

    /// Handles one request line; returns the response (possibly several
    /// newline-separated JSON values, one per published notification;
    /// empty for silent notifications) and whether the loop should
    /// exit.
    pub fn handle(&mut self, line: &str) -> (String, bool) {
        let line = line.trim();
        if line.is_empty() {
            return (err("empty request"), false);
        }
        let req = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return (err(&format!("bad JSON: {e}")), false),
        };
        if req.get("method").and_then(Json::as_str).is_some() {
            return self.handle_lsp(&req);
        }
        let cmd = match req.get("cmd").and_then(Json::as_str) {
            Some(c) => c.to_string(),
            None => return (err("missing \"cmd\" (or LSP \"method\")"), false),
        };
        match cmd.as_str() {
            "load" | "edit" => {
                let inline_src = req.get("source").and_then(Json::as_str).map(str::to_string);
                let path = req.get("path").and_then(Json::as_str).map(str::to_string);
                let key = match path.clone().or_else(|| self.active.clone()) {
                    Some(k) => k,
                    None if inline_src.is_some() => INLINE_KEY.to_string(),
                    None => return (err("need \"source\" or \"path\""), false),
                };
                let (text, is_inline) = match inline_src {
                    Some(s) => (s, true),
                    None => match read_doc(&key) {
                        Ok(t) => (t, false),
                        Err(e) => return (err(&e), false),
                    },
                };
                self.inline.insert(key.clone(), is_inline);
                self.active = Some(key.clone());
                let (reports, timing) = self.checked_update(&key, text);
                (check_response(&cmd, &key, &reports, timing), false)
            }
            "check" => {
                let Some(key) = self.active.clone() else {
                    return (err("nothing loaded"), false);
                };
                // Inline buffers re-check as-is; path-backed documents
                // re-read the disk (the file may have changed under us).
                let inline = self.inline.get(&key).copied().unwrap_or(true);
                let text = if inline {
                    self.ws.doc_text(&key).unwrap_or_default().to_string()
                } else {
                    match read_doc(&key) {
                        Ok(text) => text,
                        Err(e) => return (err(&e), false),
                    }
                };
                let (reports, timing) = self.checked_update(&key, text);
                (check_response("check", &key, &reports, timing), false)
            }
            "stats" => (self.stats_response(), false),
            "metrics" => (self.metrics_response(), false),
            "reset" => {
                self.ws.reset();
                self.active = None;
                self.inline.clear();
                self.published.clear();
                (
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("cmd".into(), Json::str("reset")),
                    ])
                    .to_string(),
                    false,
                )
            }
            "quit" => (
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("cmd".into(), Json::str("quit")),
                ])
                .to_string(),
                true,
            ),
            other => (err(&format!("unknown cmd {other:?}")), false),
        }
    }

    /// Dispatches one LSP-shaped request (`method` field present).
    /// Notifications that warrant no response return an empty line,
    /// which [`Serve::run`] skips.
    fn handle_lsp(&mut self, req: &Json) -> (String, bool) {
        let method = req.get("method").and_then(Json::as_str).unwrap_or_default();
        let id = req.get("id").cloned().unwrap_or(Json::Null);
        match method {
            "initialize" => {
                let result = Json::Obj(vec![
                    (
                        "capabilities".into(),
                        Json::Obj(vec![
                            // 1 = full-document sync; didChange carries the
                            // whole text.
                            ("textDocumentSync".into(), Json::num(1.0)),
                            ("positionEncoding".into(), Json::str("utf-16")),
                            ("diagnosticProvider".into(), Json::Bool(true)),
                        ]),
                    ),
                    (
                        "serverInfo".into(),
                        Json::Obj(vec![
                            ("name".into(), Json::str("rsc")),
                            ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
                        ]),
                    ),
                ]);
                (lsp_response(id, result), false)
            }
            "initialized" => (String::new(), false),
            "shutdown" => (lsp_response(id, Json::Null), false),
            "exit" => (String::new(), true),
            "textDocument/didOpen" => {
                let doc = req.get("params").and_then(|p| p.get("textDocument"));
                // A missing URI is a hard parameter error: defaulting to
                // a shared buffer would alias documents from two
                // malformed clients onto one session.
                let Some(uri) = doc.and_then(|d| d.get("uri")).and_then(Json::as_str) else {
                    return (
                        notification_param_error(req, id, "didOpen needs params.textDocument.uri"),
                        false,
                    );
                };
                let uri = uri.to_string();
                let Some(text) = doc.and_then(|d| d.get("text")).and_then(Json::as_str) else {
                    return (
                        notification_param_error(req, id, "didOpen needs params.textDocument.text"),
                        false,
                    );
                };
                let text = text.to_string();
                (self.lsp_check(&uri, text), false)
            }
            "textDocument/didChange" => {
                let params = req.get("params");
                let Some(uri) = params
                    .and_then(|p| p.get("textDocument"))
                    .and_then(|d| d.get("uri"))
                    .and_then(Json::as_str)
                else {
                    return (
                        notification_param_error(
                            req,
                            id,
                            "didChange needs params.textDocument.uri",
                        ),
                        false,
                    );
                };
                let uri = uri.to_string();
                // Full-document sync (advertised as textDocumentSync: 1):
                // fold the changes over the current overlay. An element
                // without a `range` replaces the whole document, and so
                // does one whose range demonstrably *covers* the whole
                // current document (start at 0:0, end at or past the
                // last position) — some clients spell full sync that
                // way. A genuinely partial range is refused loudly:
                // silently checking a fragment as the whole buffer
                // would publish garbage diagnostics and corrupt the
                // remembered document text.
                let changes = match params.and_then(|p| p.get("contentChanges")) {
                    Some(Json::Arr(changes)) if !changes.is_empty() => changes.clone(),
                    _ => {
                        return (
                            notification_param_error(
                                req,
                                id,
                                "didChange needs a non-empty params.contentChanges array",
                            ),
                            false,
                        )
                    }
                };
                let mut cur = self
                    .ws
                    .doc_text(&uri)
                    .map(str::to_string)
                    .unwrap_or_default();
                for ch in &changes {
                    let Some(text) = ch.get("text").and_then(Json::as_str) else {
                        return (
                            notification_param_error(
                                req,
                                id,
                                "didChange needs params.contentChanges[…].text",
                            ),
                            false,
                        );
                    };
                    if let Some(range) = ch.get("range") {
                        if !range_covers_document(range, &cur) {
                            return (
                                notification_param_error(
                                    req,
                                    id,
                                    "incremental (partial range) changes are not supported; \
                                     this server uses full-document sync (textDocumentSync: 1, \
                                     whole-document ranges accepted)",
                                ),
                                false,
                            );
                        }
                    }
                    cur = text.to_string();
                }
                (self.lsp_check(&uri, cur), false)
            }
            "textDocument/didClose" => {
                let Some(uri) = req
                    .get("params")
                    .and_then(|p| p.get("textDocument"))
                    .and_then(|d| d.get("uri"))
                    .and_then(Json::as_str)
                else {
                    return (
                        notification_param_error(req, id, "didClose needs params.textDocument.uri"),
                        false,
                    );
                };
                let uri = uri.to_string();
                self.ws.close(&uri);
                self.inline.remove(&uri);
                if self.active.as_deref() == Some(uri.as_str()) {
                    self.active = None;
                }
                // Clear the closed document's diagnostics client-side —
                // its own URI plus every closure URI its last check
                // published for (open importers will re-claim theirs on
                // their next check).
                let mut uris = self.published.remove(&uri).unwrap_or_default();
                uris.insert(uri);
                let lines: Vec<String> = uris.iter().map(|u| publish_empty(u)).collect();
                (lines.join("\n"), false)
            }
            other => (
                // MethodNotFound: spec-following clients degrade silently.
                lsp_error_code(id, -32601.0, &format!("unknown method {other:?}")),
                false,
            ),
        }
    }

    /// Checks `text` as the document `uri` through the workspace and
    /// renders one `publishDiagnostics` notification per affected URI —
    /// plus one final *empty* publish for every URI the same document
    /// published for last time but no longer covers (a removed import's
    /// diagnostics must not stay pinned in the editor).
    fn lsp_check(&mut self, uri: &str, text: String) -> String {
        self.inline.insert(uri.to_string(), true);
        self.active = Some(uri.to_string());
        let (reports, timing) = self.checked_update(uri, text);
        let mut lines = Vec::new();
        for report in &reports {
            let (published, now) = publishes_for(&self.ws, report, &timing);
            lines.extend(published);
            let before = self
                .published
                .insert(report.uri.clone(), now.clone())
                .unwrap_or_default();
            for gone in before.difference(&now) {
                lines.push(publish_empty(gone));
            }
        }
        lines.join("\n")
    }

    fn stats_response(&self) -> String {
        let c = self.ws.cache().counters();
        let mut fields = vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("stats")),
            ("docs".into(), Json::num(self.ws.doc_count() as f64)),
            ("cache_entries".into(), Json::num(c.entries as f64)),
            ("cache_hits".into(), Json::num(c.hits as f64)),
            ("cache_misses".into(), Json::num(c.misses as f64)),
            ("cache_evictions".into(), Json::num(c.evictions as f64)),
            // Cumulative across the server's lifetime, so the smoke
            // harness can assert session + skip counters + timing on
            // this one object.
            (
                "importers_skipped".into(),
                Json::num(self.registry.counter("importers_skipped_total") as f64),
            ),
            ("timing".into(), self.timing_summary()),
        ];
        if let Some(last) = self.active.as_ref().and_then(|k| self.ws.last(k)) {
            fields.push((
                "bundles".into(),
                Json::num(last.outcome.incr.bundles as f64),
            ));
            fields.push(("verified".into(), Json::Bool(last.outcome.result.ok())));
        }
        Json::Obj(fields).to_string()
    }

    /// The aggregate timing summary shared by `stats` and `metrics`:
    /// check-latency percentiles plus cumulative per-phase milliseconds.
    fn timing_summary(&self) -> Json {
        let lat = self.registry.histogram("check_latency");
        let phases = Json::Obj(
            self.phase_acc
                .iter()
                .map(|(name, (_, total_ns))| (name.to_string(), Json::num(ns_to_ms(*total_ns))))
                .collect(),
        );
        Json::Obj(vec![
            (
                "checks".into(),
                Json::num(self.registry.counter("checks_total") as f64),
            ),
            (
                "check_p50_us".into(),
                Json::num(lat.map_or(0, |h| h.p50_us()) as f64),
            ),
            (
                "check_p90_us".into(),
                Json::num(lat.map_or(0, |h| h.p90_us()) as f64),
            ),
            (
                "check_p99_us".into(),
                Json::num(lat.map_or(0, |h| h.p99_us()) as f64),
            ),
            ("phases_ms".into(), phases),
        ])
    }

    /// `{"cmd":"metrics"}`: the ROADMAP's `/metrics`-style surface —
    /// monotonic counters, cache hit rate, and check-latency
    /// percentiles, all derived from the registry (never from verdicts).
    fn metrics_response(&self) -> String {
        let c = self.ws.cache().counters();
        let counters = Json::Obj(
            self.registry
                .counters()
                .map(|(name, v)| (name.to_string(), Json::num(v as f64)))
                .collect(),
        );
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("metrics")),
            ("docs".into(), Json::num(self.ws.doc_count() as f64)),
            ("counters".into(), counters),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("entries".into(), Json::num(c.entries as f64)),
                    ("hits".into(), Json::num(c.hits as f64)),
                    ("misses".into(), Json::num(c.misses as f64)),
                    ("evictions".into(), Json::num(c.evictions as f64)),
                    ("hit_rate".into(), Json::num(c.hit_rate())),
                ]),
            ),
            ("timing".into(), self.timing_summary()),
        ])
        .to_string()
    }

    /// Runs the serve loop over arbitrary reader/writer pairs (stdin and
    /// stdout in the binary; in-memory buffers in tests and CI drivers).
    pub fn run(
        opts: CheckerOptions,
        reader: impl BufRead,
        writer: impl Write,
    ) -> std::io::Result<()> {
        Serve::run_over(Workspace::new(opts), reader, writer)
    }

    /// [`Serve::run`] over a caller-built workspace (e.g. one with a
    /// persistent `--vc-cache` tier attached).
    pub fn run_over(
        ws: Workspace,
        reader: impl BufRead,
        mut writer: impl Write,
    ) -> std::io::Result<()> {
        let mut serve = Serve::over(ws);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (response, quit) = serve.handle(&line);
            // LSP notifications (`initialized`, `exit`) have no response.
            if !response.is_empty() {
                writeln!(writer, "{response}")?;
                writer.flush()?;
            }
            if quit {
                break;
            }
        }
        Ok(())
    }
}

/// The publish notifications for one document check: the document's
/// own URI first, then closure files that are not open documents
/// themselves (an open document's diagnostics are owned by its own
/// check). Returns the rendered lines and the set of URIs published.
fn publishes_for(
    ws: &Workspace,
    report: &DocReport,
    timing: &Json,
) -> (Vec<String>, BTreeSet<String>) {
    let idxs: Vec<LineIndex> = report
        .merged
        .files
        .iter()
        .map(|f| LineIndex::new(&f.text))
        .collect();
    let groups = report.diags_by_file();
    let mut order: Vec<usize> = vec![report.merged.root];
    for (i, f) in report.merged.files.iter().enumerate() {
        if i != report.merged.root && !ws.contains(&f.name) {
            order.push(i);
        }
    }
    let uris = order
        .iter()
        .map(|&fi| report.merged.files[fi].name.clone())
        .collect();
    let lines = order
        .into_iter()
        .map(|fi| publish_diagnostics(report, fi, &groups[fi].1, &idxs, timing))
        .collect();
    (lines, uris)
}

/// Nanoseconds → fractional milliseconds.
fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1_000_000.0
}

/// The per-phase millisecond timing object for one check, keyed by
/// phase name (already sorted by [`rsc_obs::Profile::phase_totals`]).
fn timing_json(phases: &[rsc_obs::Phase]) -> Json {
    Json::Obj(
        phases
            .iter()
            .map(|p| (p.name.to_string(), Json::num(ns_to_ms(p.total_ns))))
            .collect(),
    )
}

/// Reads a legacy document key's backing file from disk.
fn read_doc(key: &str) -> Result<String, String> {
    let path = disk_path(key).ok_or_else(|| format!("`{key}` has no backing file"))?;
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn err(msg: &str) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::str(msg)),
    ])
    .to_string()
}

fn lsp_response(id: Json, result: Json) -> String {
    Json::Obj(vec![
        ("jsonrpc".into(), Json::str("2.0")),
        ("id".into(), id),
        ("result".into(), result),
    ])
    .to_string()
}

/// JSON-RPC error codes: `-32601` MethodNotFound, `-32602` InvalidParams.
fn lsp_error_code(id: Json, code: f64, msg: &str) -> String {
    Json::Obj(vec![
        ("jsonrpc".into(), Json::str("2.0")),
        ("id".into(), id),
        (
            "error".into(),
            Json::Obj(vec![
                ("code".into(), Json::num(code)),
                ("message".into(), Json::str(msg)),
            ]),
        ),
    ])
    .to_string()
}

fn lsp_error(id: Json, msg: &str) -> String {
    lsp_error_code(id, -32602.0, msg)
}

/// InvalidParams for a request that carried an `id`; silence for a true
/// notification (the spec forbids responding to notifications, and a
/// response with `id: null` reads as a protocol error to clients).
fn notification_param_error(req: &Json, id: Json, msg: &str) -> String {
    if req.get("id").is_some() {
        lsp_error(id, msg)
    } else {
        String::new()
    }
}

/// True when an LSP `{start, end}` range covers the entire `doc`:
/// start at 0:0 and end at or past the document's last position
/// (0-based UTF-16 line/character, the same convention the server
/// publishes). A malformed range (missing or non-numeric positions)
/// is never "covering".
fn range_covers_document(range: &Json, doc: &str) -> bool {
    let pos = |key: &str| -> Option<(f64, f64)> {
        let p = range.get(key)?;
        Some((
            p.get("line").and_then(Json::as_f64)?,
            p.get("character").and_then(Json::as_f64)?,
        ))
    };
    let (Some((start_line, start_char)), Some((end_line, end_char))) = (pos("start"), pos("end"))
    else {
        return false;
    };
    if start_line != 0.0 || start_char != 0.0 {
        return false;
    }
    let idx = LineIndex::new(doc);
    let last = idx.line_col_utf16(doc, doc.len() as u32);
    let (last_line, last_char) = ((last.line - 1) as f64, (last.col - 1) as f64);
    end_line > last_line || (end_line == last_line && end_char >= last_char)
}

/// `{line, character}` — LSP positions are 0-based and count **UTF-16
/// code units** (the protocol's default encoding, advertised in the
/// `initialize` capabilities; see
/// [`rsc_syntax::LineIndex::line_col_utf16`]).
fn lsp_position(idx: &LineIndex, src: &str, offset: u32) -> Json {
    let lc = idx.line_col_utf16(src, offset);
    Json::Obj(vec![
        ("line".into(), Json::num((lc.line - 1) as f64)),
        ("character".into(), Json::num((lc.col - 1) as f64)),
    ])
}

/// A `{start, end}` LSP range for a merged span, in the owning file's
/// local coordinates.
fn lsp_range(report: &DocReport, idxs: &[LineIndex], span: rsc_syntax::Span) -> (usize, Json) {
    let (fi, local) = report.merged.local_span(span);
    let src = &report.merged.files[fi].text;
    (
        fi,
        Json::Obj(vec![
            ("start".into(), lsp_position(&idxs[fi], src, local.lo)),
            ("end".into(), lsp_position(&idxs[fi], src, local.hi)),
        ]),
    )
}

/// One LSP diagnostic object from a checker [`Diagnostic`]: range from
/// the blame span (file-local), severity, obligation code, message with
/// the expected/actual notes folded in, secondary labels as
/// `relatedInformation` — whose locations may name *other* files of the
/// closure (cross-file blame).
fn lsp_diagnostic(d: &Diagnostic, report: &DocReport, idxs: &[LineIndex]) -> Json {
    let severity = match d.severity {
        rsc_core::Severity::Error => 1.0,
        rsc_core::Severity::Warning => 2.0,
        rsc_core::Severity::Note => 3.0,
    };
    // Demangle module-qualified names: the user must never see
    // `m{id}$helper`, only `helper`.
    let mut message = report.merged.demangle(&d.message);
    for note in &d.notes {
        message.push('\n');
        message.push_str(&report.merged.demangle(note));
    }
    let (_, range) = lsp_range(report, idxs, d.span);
    let mut fields = vec![
        ("range".into(), range),
        ("severity".into(), Json::num(severity)),
        ("source".into(), Json::str("rsc")),
        ("message".into(), Json::str(message)),
    ];
    if let Some(code) = d.code {
        fields.insert(2, ("code".into(), Json::str(code)));
    }
    if !d.secondary.is_empty() {
        let related: Vec<Json> = d
            .secondary
            .iter()
            .map(|(span, label)| {
                let (sfi, srange) = lsp_range(report, idxs, *span);
                Json::Obj(vec![
                    (
                        "location".into(),
                        Json::Obj(vec![
                            (
                                "uri".into(),
                                Json::str(report.merged.files[sfi].name.clone()),
                            ),
                            ("range".into(), srange),
                        ]),
                    ),
                    ("message".into(), Json::str(report.merged.demangle(label))),
                ])
            })
            .collect();
        fields.push(("relatedInformation".into(), Json::Arr(related)));
    }
    Json::Obj(fields)
}

fn str_arr(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::str(s.clone())).collect())
}

/// The non-standard `rsc` counters object attached to every publish of
/// one document check. `timing` carries the per-phase millisecond
/// breakdown of the update that produced the report (shared by every
/// report of one update — phases are collected per update, not per
/// document).
fn rsc_counters(report: &DocReport, timing: &Json) -> Json {
    let incr = &report.outcome.incr;
    Json::Obj(vec![
        ("verified".into(), Json::Bool(report.outcome.result.ok())),
        ("bundles".into(), Json::num(incr.bundles as f64)),
        ("reused".into(), Json::num(incr.reused as f64)),
        ("solved".into(), Json::num(incr.solved as f64)),
        ("fast_path".into(), Json::Bool(incr.fast_path)),
        (
            "importers_skipped".into(),
            Json::num(incr.importers_skipped as f64),
        ),
        ("deps_changed".into(), str_arr(&report.deps_changed)),
        ("dirty_own".into(), str_arr(&report.dirty_own)),
        ("time_us".into(), Json::num(incr.total_micros as f64)),
        ("timing_ms".into(), timing.clone()),
    ])
}

/// The `textDocument/publishDiagnostics` notification for one file of
/// one document check.
fn publish_diagnostics(
    report: &DocReport,
    fi: usize,
    diags: &[&Diagnostic],
    idxs: &[LineIndex],
    timing: &Json,
) -> String {
    let uri = report.merged.files[fi].name.clone();
    let rendered: Vec<Json> = diags
        .iter()
        .map(|d| lsp_diagnostic(d, report, idxs))
        .collect();
    Json::Obj(vec![
        ("jsonrpc".into(), Json::str("2.0")),
        (
            "method".into(),
            Json::str("textDocument/publishDiagnostics"),
        ),
        (
            "params".into(),
            Json::Obj(vec![
                ("uri".into(), Json::str(uri)),
                ("diagnostics".into(), Json::Arr(rendered)),
            ]),
        ),
        ("rsc".into(), rsc_counters(report, timing)),
    ])
    .to_string()
}

/// An empty publish clearing a closed document's diagnostics.
fn publish_empty(uri: &str) -> String {
    Json::Obj(vec![
        ("jsonrpc".into(), Json::str("2.0")),
        (
            "method".into(),
            Json::str("textDocument/publishDiagnostics"),
        ),
        (
            "params".into(),
            Json::Obj(vec![
                ("uri".into(), Json::str(uri)),
                ("diagnostics".into(), Json::Arr(Vec::new())),
            ]),
        ),
    ])
    .to_string()
}

/// One importer's summary inside a legacy check response.
fn importer_summary(report: &DocReport) -> Json {
    Json::Obj(vec![
        ("path".into(), Json::str(report.uri.clone())),
        ("verified".into(), Json::Bool(report.outcome.result.ok())),
        (
            "reused".into(),
            Json::num(report.outcome.incr.reused as f64),
        ),
        (
            "solved".into(),
            Json::num(report.outcome.incr.solved as f64),
        ),
        ("deps_changed".into(), str_arr(&report.deps_changed)),
        ("dirty_own".into(), str_arr(&report.dirty_own)),
    ])
}

fn check_response(cmd: &str, key: &str, reports: &[DocReport], timing: Json) -> String {
    let report = &reports[0];
    let outcome = &report.outcome;
    let multi_file = report.merged.files.len() > 1;
    let render_diag = |d: &Diagnostic| {
        let (fi, local) = report.merged.localize(d);
        let severity = match local.severity {
            rsc_core::Severity::Error => "error",
            rsc_core::Severity::Warning => "warning",
            rsc_core::Severity::Note => "note",
        };
        let mut fields = vec![
            ("severity".into(), Json::str(severity)),
            ("line".into(), Json::num(local.span.line as f64)),
            ("message".into(), Json::str(local.message.clone())),
        ];
        if let Some(code) = local.code {
            fields.insert(1, ("code".into(), Json::str(code)));
        }
        if multi_file {
            fields.push((
                "file".into(),
                Json::str(report.merged.files[fi].name.clone()),
            ));
        }
        Json::Obj(fields)
    };
    let diags: Vec<Json> = outcome.result.diagnostics.iter().map(render_diag).collect();
    let lints: Vec<Json> = outcome.result.lints.iter().map(render_diag).collect();
    // Unit names over a qualified merged program carry module prefixes;
    // strip them — user-visible output never shows mangled names.
    let dirty_units: Vec<String> = outcome
        .incr
        .dirty_units
        .iter()
        .map(|n| report.merged.demangle(n))
        .collect();
    let mut fields = vec![
        ("ok".into(), Json::Bool(true)),
        ("cmd".into(), Json::str(cmd)),
        ("path".into(), Json::str(key)),
        ("verified".into(), Json::Bool(outcome.result.ok())),
        ("diagnostics".into(), Json::Arr(diags)),
        ("lints".into(), Json::Arr(lints)),
        ("bundles".into(), Json::num(outcome.incr.bundles as f64)),
        ("reused".into(), Json::num(outcome.incr.reused as f64)),
        ("solved".into(), Json::num(outcome.incr.solved as f64)),
        ("fast_path".into(), Json::Bool(outcome.incr.fast_path)),
        (
            "importers_skipped".into(),
            Json::num(outcome.incr.importers_skipped as f64),
        ),
        ("dirty_units".into(), str_arr(&dirty_units)),
        ("deps_changed".into(), str_arr(&report.deps_changed)),
        ("dirty_own".into(), str_arr(&report.dirty_own)),
    ];
    if reports.len() > 1 {
        fields.push((
            "importers".into(),
            Json::Arr(reports[1..].iter().map(importer_summary).collect()),
        ));
    }
    fields.push((
        "time_us".into(),
        Json::num(outcome.incr.total_micros as f64),
    ));
    fields.push(("timing_ms".into(), timing));
    Json::Obj(fields).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "type nat = {v: number | 0 <= v};\nfunction abs(x: number): nat {\n    if (x < 0) { return 0 - x; }\n    return x;\n}\nfunction dbl(y: nat): nat { return y + y; }\n";

    fn load_req(src: &str) -> String {
        Json::Obj(vec![
            ("cmd".into(), Json::str("load")),
            ("source".into(), Json::str(src)),
        ])
        .to_string()
    }

    fn edit_req(src: &str) -> String {
        Json::Obj(vec![
            ("cmd".into(), Json::str("edit")),
            ("source".into(), Json::str(src)),
        ])
        .to_string()
    }

    #[test]
    fn load_edit_cycle() {
        let mut serve = Serve::new(CheckerOptions::default());
        let (resp, quit) = serve.handle(&load_req(PROG));
        assert!(!quit);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("verified"), Some(&Json::Bool(true)));
        assert_eq!(v.get("reused").unwrap().as_f64(), Some(0.0));

        // Break abs (x = 0 falls through and returns -1); id's bundle
        // is reused and the error is reported.
        let bad = PROG.replace("return x;\n}", "return x - 1;\n}");
        let (resp, _) = serve.handle(&edit_req(&bad));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("verified"), Some(&Json::Bool(false)));
        assert!(v.get("reused").unwrap().as_f64().unwrap() > 0.0);
        match v.get("diagnostics") {
            Some(Json::Arr(ds)) => assert!(!ds.is_empty()),
            other => panic!("bad diagnostics: {other:?}"),
        }

        // Fix it again: fast, verified.
        let (resp, _) = serve.handle(&edit_req(PROG));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("verified"), Some(&Json::Bool(true)));
    }

    /// A bare `check` after an inline `edit` must re-check the inline
    /// buffer, not silently re-read the older on-disk file.
    #[test]
    fn bare_check_prefers_the_inline_buffer() {
        let dir = std::env::temp_dir().join("rsc_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("buffer.rsc");
        std::fs::write(&file, PROG).unwrap();
        let mut serve = Serve::new(CheckerOptions::default());
        let load = Json::Obj(vec![
            ("cmd".into(), Json::str("load")),
            ("path".into(), Json::str(file.to_str().unwrap())),
        ])
        .to_string();
        let (resp, _) = serve.handle(&load);
        assert_eq!(
            Json::parse(&resp).unwrap().get("verified"),
            Some(&Json::Bool(true))
        );
        // Editor submits a broken buffer; the disk file stays clean.
        let bad = PROG.replace("return x;\n}", "return x - 1;\n}");
        serve.handle(&edit_req(&bad));
        let (resp, _) = serve.handle(r#"{"cmd":"check"}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(
            v.get("verified"),
            Some(&Json::Bool(false)),
            "bare check must see the inline edit, not the stale file: {resp}"
        );
        // A path-carrying edit switches back to disk.
        let reload = Json::Obj(vec![
            ("cmd".into(), Json::str("edit")),
            ("path".into(), Json::str(file.to_str().unwrap())),
        ])
        .to_string();
        let (resp, _) = serve.handle(&reload);
        assert_eq!(
            Json::parse(&resp).unwrap().get("verified"),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn protocol_errors_do_not_kill_the_loop() {
        let mut serve = Serve::new(CheckerOptions::default());
        for bad in ["not json", "{}", r#"{"cmd":"nope"}"#, r#"{"cmd":"check"}"#] {
            let (resp, quit) = serve.handle(bad);
            assert!(!quit);
            let v = Json::parse(&resp).unwrap();
            assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{bad}");
        }
        let (_, quit) = serve.handle(r#"{"cmd":"quit"}"#);
        assert!(quit);
    }

    fn lsp_req(method: &str, params: Json, id: Option<f64>) -> String {
        let mut fields = vec![
            ("jsonrpc".into(), Json::str("2.0")),
            ("method".into(), Json::str(method)),
        ];
        if let Some(id) = id {
            fields.insert(1, ("id".into(), Json::num(id)));
        }
        fields.push(("params".into(), params));
        Json::Obj(fields).to_string()
    }

    fn did_open(uri: &str, text: &str) -> String {
        lsp_req(
            "textDocument/didOpen",
            Json::Obj(vec![(
                "textDocument".into(),
                Json::Obj(vec![
                    ("uri".into(), Json::str(uri)),
                    ("text".into(), Json::str(text)),
                ]),
            )]),
            None,
        )
    }

    fn did_change(uri: &str, text: &str) -> String {
        lsp_req(
            "textDocument/didChange",
            Json::Obj(vec![
                (
                    "textDocument".into(),
                    Json::Obj(vec![("uri".into(), Json::str(uri))]),
                ),
                (
                    "contentChanges".into(),
                    Json::Arr(vec![Json::Obj(vec![("text".into(), Json::str(text))])]),
                ),
            ]),
            None,
        )
    }

    /// Parses a (possibly multi-line) response into JSON values.
    fn parse_lines(resp: &str) -> Vec<Json> {
        resp.lines().map(|l| Json::parse(l).unwrap()).collect()
    }

    #[test]
    fn lsp_initialize_and_shutdown() {
        let mut serve = Serve::new(CheckerOptions::default());
        let (resp, quit) =
            serve.handle(r#"{"jsonrpc":"2.0","id":1,"method":"initialize","params":{}}"#);
        assert!(!quit);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_f64), Some(1.0));
        let caps = v.get("result").and_then(|r| r.get("capabilities"));
        assert!(caps.is_some(), "{resp}");
        // `initialized` is a notification: no response line.
        let (resp, quit) = serve.handle(r#"{"jsonrpc":"2.0","method":"initialized","params":{}}"#);
        assert!(resp.is_empty() && !quit);
        let (resp, _) = serve.handle(r#"{"jsonrpc":"2.0","id":2,"method":"shutdown"}"#);
        assert_eq!(Json::parse(&resp).unwrap().get("result"), Some(&Json::Null));
        let (resp, quit) = serve.handle(r#"{"jsonrpc":"2.0","method":"exit"}"#);
        assert!(resp.is_empty() && quit);
    }

    #[test]
    fn lsp_open_edit_cycle_publishes_ranged_diagnostics() {
        let uri = "file:///buffer.rsc";
        let mut serve = Serve::new(CheckerOptions::default());

        // Clean open: publishDiagnostics with an empty list.
        let (resp, _) = serve.handle(&did_open(uri, PROG));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(
            v.get("method").and_then(Json::as_str),
            Some("textDocument/publishDiagnostics"),
            "{resp}"
        );
        let params = v.get("params").unwrap();
        assert_eq!(params.get("uri").and_then(Json::as_str), Some(uri));
        assert_eq!(params.get("diagnostics"), Some(&Json::Arr(vec![])));
        assert_eq!(
            v.get("rsc").and_then(|r| r.get("verified")),
            Some(&Json::Bool(true))
        );

        // Broken edit: a diagnostic with a non-dummy LSP range and a code.
        let bad = PROG.replace("return x;\n}", "return x - 1;\n}");
        let (resp, _) = serve.handle(&did_change(uri, &bad));
        let v = Json::parse(&resp).unwrap();
        let diags = match v.get("params").and_then(|p| p.get("diagnostics")) {
            Some(Json::Arr(ds)) if !ds.is_empty() => ds.clone(),
            other => panic!("expected diagnostics, got {other:?}: {resp}"),
        };
        for d in &diags {
            let range = d.get("range").expect("range");
            let start = range.get("start").expect("start");
            let end = range.get("end").expect("end");
            let sl = start.get("line").and_then(Json::as_f64).unwrap();
            let sc = start.get("character").and_then(Json::as_f64).unwrap();
            let el = end.get("line").and_then(Json::as_f64).unwrap();
            let ec = end.get("character").and_then(Json::as_f64).unwrap();
            assert!(
                (el, ec) > (sl, sc),
                "range must be non-dummy (start < end): {d:?}"
            );
            let code = d.get("code").and_then(Json::as_str).expect("code");
            assert!(code.starts_with('R'), "{code}");
            assert_eq!(d.get("severity").and_then(Json::as_f64), Some(1.0));
        }
        // The session reused the untouched function's bundle.
        let rsc = v.get("rsc").unwrap();
        assert_eq!(rsc.get("verified"), Some(&Json::Bool(false)));
        assert!(rsc.get("reused").and_then(Json::as_f64).unwrap() > 0.0);

        // Fix it back: clean again.
        let (resp, _) = serve.handle(&did_change(uri, PROG));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(
            v.get("rsc").and_then(|r| r.get("verified")),
            Some(&Json::Bool(true))
        );
    }

    /// The PR-5 headline regression: two documents, interleaved
    /// didOpen/didChange — each document's counters stay warm across
    /// switches (the single-session server re-checked cold on every
    /// switch).
    #[test]
    fn multi_document_sessions_stay_warm() {
        let u1 = "file:///w/a.rsc";
        let u2 = "file:///w/b.rsc";
        let prog2 = PROG.replace("abs", "abs2").replace("dbl", "dbl2");
        let mut serve = Serve::new(CheckerOptions::default());

        let (resp, _) = serve.handle(&did_open(u1, PROG));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(
            v.get("rsc").unwrap().get("verified"),
            Some(&Json::Bool(true))
        );

        let (resp, _) = serve.handle(&did_open(u2, &prog2));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(
            v.get("params").unwrap().get("uri").and_then(Json::as_str),
            Some(u2)
        );

        // Switch back to document 1 and edit it: its other function's
        // bundle must be *reused*, not re-solved cold.
        let bad = PROG.replace("return x;\n}", "return x - 1;\n}");
        let (resp, _) = serve.handle(&did_change(u1, &bad));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(
            v.get("params").unwrap().get("uri").and_then(Json::as_str),
            Some(u1)
        );
        let rsc = v.get("rsc").unwrap();
        assert_eq!(rsc.get("verified"), Some(&Json::Bool(false)));
        assert!(
            rsc.get("reused").and_then(Json::as_f64).unwrap() > 0.0,
            "document 1 re-checked cold after a switch: {resp}"
        );

        // Edit document 2: warm too.
        let bad2 = prog2.replace("return x;\n}", "return x - 1;\n}");
        let (resp, _) = serve.handle(&did_change(u2, &bad2));
        let rsc = Json::parse(&resp).unwrap().get("rsc").cloned().unwrap();
        assert!(rsc.get("reused").and_then(Json::as_f64).unwrap() > 0.0);

        // Edit document 1 again (third switch): still warm, and
        // re-sending its text verbatim hits the fast path.
        let (resp, _) = serve.handle(&did_change(u1, PROG));
        let rsc = Json::parse(&resp).unwrap().get("rsc").cloned().unwrap();
        assert!(rsc.get("reused").and_then(Json::as_f64).unwrap() > 0.0);
        let (resp, _) = serve.handle(&did_change(u1, PROG));
        let rsc = Json::parse(&resp).unwrap().get("rsc").cloned().unwrap();
        assert_eq!(rsc.get("fast_path"), Some(&Json::Bool(true)), "{resp}");
    }

    /// An import-connected pair: editing the exporting document
    /// re-checks the importer and publishes for both URIs; cross-file
    /// dirtiness is reported precisely.
    #[test]
    fn imports_recheck_importers_across_uris() {
        let lib_uri = "file:///w/lib.rsc";
        let app_uri = "file:///w/app.rsc";
        let lib = "type nat = {v: number | 0 <= v};\n\
            export function step(x: number): nat {\n\
                if (x < 0) { return 0; }\n\
                return x + 1;\n\
            }\n\
            function helper(y: number): number { return y; }\n";
        let app = "import {step} from \"./lib.rsc\";\n\
            function use(k: number): {v: number | 0 <= v} {\n\
                return step(k);\n\
            }\n";
        let mut serve = Serve::new(CheckerOptions::default());
        let (resp, _) = serve.handle(&did_open(lib_uri, lib));
        assert_eq!(parse_lines(&resp).len(), 1);
        let (resp, _) = serve.handle(&did_open(app_uri, app));
        // lib is an open document, so app's check publishes only for app.
        let lines = parse_lines(&resp);
        assert_eq!(lines.len(), 1, "{resp}");
        assert_eq!(
            lines[0]
                .get("params")
                .unwrap()
                .get("uri")
                .and_then(Json::as_str),
            Some(app_uri)
        );
        assert_eq!(
            lines[0].get("rsc").unwrap().get("verified"),
            Some(&Json::Bool(true)),
            "{resp}"
        );

        // Non-exported body edit in lib: nothing the importer can
        // observe changed, so its re-check is skipped entirely — only
        // lib re-publishes, and the skip is reported in its counters.
        let (resp, _) = serve.handle(&did_change(
            lib_uri,
            &lib.replace("return y;", "return y + 1;"),
        ));
        let lines = parse_lines(&resp);
        assert_eq!(lines.len(), 1, "{resp}");
        assert_eq!(
            lines[0]
                .get("params")
                .unwrap()
                .get("uri")
                .and_then(Json::as_str),
            Some(lib_uri)
        );
        let lib_rsc = lines[0].get("rsc").unwrap();
        assert_eq!(
            lib_rsc.get("importers_skipped").and_then(Json::as_f64),
            Some(1.0),
            "{resp}"
        );

        // Exported-signature edit: the importer's calling unit is dirty
        // and the dependency is named.
        let sig_edit = lib.replace(
            "export function step(x: number): nat {",
            "export function step(x: number): {v: number | 0 <= v && x < v} {",
        );
        let (resp, _) = serve.handle(&did_change(lib_uri, &sig_edit));
        let lines = parse_lines(&resp);
        assert_eq!(lines.len(), 2, "{resp}");
        assert_eq!(
            lines[0]
                .get("rsc")
                .unwrap()
                .get("importers_skipped")
                .and_then(Json::as_f64),
            Some(0.0),
            "{resp}"
        );
        let app_rsc = lines[1].get("rsc").unwrap();
        assert_eq!(
            app_rsc.get("deps_changed"),
            Some(&Json::Arr(vec![Json::str(lib_uri)]))
        );
        match app_rsc.get("dirty_own") {
            Some(Json::Arr(units)) => {
                assert!(units.contains(&Json::str("fun:use")), "{resp}")
            }
            other => panic!("missing dirty_own: {other:?}"),
        }
    }

    /// Satellite: a mixed contentChanges array where only a *non-last*
    /// element carries a range must be rejected, and an empty array is a
    /// parameter error.
    #[test]
    fn did_change_rejects_any_range_and_empty_changes() {
        let uri = "file:///x.rsc";
        let mut serve = Serve::new(CheckerOptions::default());
        serve.handle(&did_open(uri, PROG));
        // Mixed array: [{range,text}, {text}] — previously accepted
        // silently because only the last element was inspected.
        let mixed = lsp_req(
            "textDocument/didChange",
            Json::Obj(vec![
                (
                    "textDocument".into(),
                    Json::Obj(vec![("uri".into(), Json::str(uri))]),
                ),
                (
                    "contentChanges".into(),
                    Json::Arr(vec![
                        Json::Obj(vec![
                            ("range".into(), Json::Obj(vec![])),
                            ("text".into(), Json::str("x")),
                        ]),
                        Json::Obj(vec![("text".into(), Json::str(PROG))]),
                    ]),
                ),
            ]),
            Some(7.0),
        );
        let (resp, quit) = serve.handle(&mixed);
        assert!(!quit);
        let v = Json::parse(&resp).unwrap();
        let msg = v
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or_default();
        assert!(msg.contains("full-document sync"), "{resp}");
        // Empty contentChanges: a clear parameter error, not a crash or
        // a silent no-op check.
        let empty = lsp_req(
            "textDocument/didChange",
            Json::Obj(vec![
                (
                    "textDocument".into(),
                    Json::Obj(vec![("uri".into(), Json::str(uri))]),
                ),
                ("contentChanges".into(), Json::Arr(vec![])),
            ]),
            Some(8.0),
        );
        let (resp, _) = serve.handle(&empty);
        let v = Json::parse(&resp).unwrap();
        let msg = v
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or_default();
        assert!(msg.contains("non-empty"), "{resp}");
    }

    fn range_json(sl: f64, sc: f64, el: f64, ec: f64) -> Json {
        let pos = |l: f64, c: f64| {
            Json::Obj(vec![
                ("line".into(), Json::num(l)),
                ("character".into(), Json::num(c)),
            ])
        };
        Json::Obj(vec![
            ("start".into(), pos(sl, sc)),
            ("end".into(), pos(el, ec)),
        ])
    }

    fn did_change_ranged(uri: &str, range: Json, text: &str, id: Option<f64>) -> String {
        lsp_req(
            "textDocument/didChange",
            Json::Obj(vec![
                (
                    "textDocument".into(),
                    Json::Obj(vec![("uri".into(), Json::str(uri))]),
                ),
                (
                    "contentChanges".into(),
                    Json::Arr(vec![Json::Obj(vec![
                        ("range".into(), range),
                        ("text".into(), Json::str(text)),
                    ])]),
                ),
            ]),
            id,
        )
    }

    /// Satellite: a contentChange whose range covers the whole current
    /// document is full-document sync spelled verbosely — accepted and
    /// applied — while a genuinely partial range is still refused.
    #[test]
    fn did_change_accepts_a_whole_document_range() {
        let uri = "file:///x.rsc";
        let mut serve = Serve::new(CheckerOptions::default());
        serve.handle(&did_open(uri, PROG));
        // PROG is 6 newline-terminated lines, so its last position is
        // 0-based {line: 6, character: 0} — the exact boundary.
        let bad = PROG.replace("return x;\n}", "return x - 1;\n}");
        let (resp, _) = serve.handle(&did_change_ranged(
            uri,
            range_json(0.0, 0.0, 6.0, 0.0),
            &bad,
            None,
        ));
        let lines = parse_lines(&resp);
        assert_eq!(lines.len(), 1, "{resp}");
        assert_eq!(
            lines[0].get("rsc").unwrap().get("verified"),
            Some(&Json::Bool(false)),
            "whole-document range edit was not applied: {resp}"
        );
        // A range past the end also counts as covering.
        let (resp, _) = serve.handle(&did_change_ranged(
            uri,
            range_json(0.0, 0.0, 999.0, 0.0),
            PROG,
            None,
        ));
        assert_eq!(
            parse_lines(&resp)[0].get("rsc").unwrap().get("verified"),
            Some(&Json::Bool(true)),
            "{resp}"
        );
        // A genuinely partial range (first line only) is still an
        // InvalidParams error and the overlay is untouched.
        let (resp, _) = serve.handle(&did_change_ranged(
            uri,
            range_json(0.0, 0.0, 1.0, 0.0),
            "type nat = {v: number | 0 <= v};\n",
            Some(11.0),
        ));
        let v = Json::parse(&resp).unwrap();
        let msg = v
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or_default();
        assert!(msg.contains("full-document sync"), "{resp}");
    }

    /// Satellite: a missing URI is an InvalidParams error (on requests)
    /// or silently dropped (on notifications) — never an alias onto a
    /// shared default buffer.
    #[test]
    fn missing_uri_is_a_param_error() {
        let mut serve = Serve::new(CheckerOptions::default());
        // didOpen with text but no uri, as a request: error mentioning
        // the uri.
        let open = lsp_req(
            "textDocument/didOpen",
            Json::Obj(vec![(
                "textDocument".into(),
                Json::Obj(vec![("text".into(), Json::str(PROG))]),
            )]),
            Some(3.0),
        );
        let (resp, _) = serve.handle(&open);
        let v = Json::parse(&resp).unwrap();
        let msg = v
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or_default();
        assert!(msg.contains("uri"), "{resp}");
        // As a notification: dropped silently, and *no* document was
        // created under any default key.
        let open_notif = lsp_req(
            "textDocument/didOpen",
            Json::Obj(vec![(
                "textDocument".into(),
                Json::Obj(vec![("text".into(), Json::str(PROG))]),
            )]),
            None,
        );
        let (resp, _) = serve.handle(&open_notif);
        assert!(resp.is_empty(), "{resp}");
        let (resp, _) = serve.handle(r#"{"cmd":"stats"}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("docs").and_then(Json::as_f64), Some(0.0), "{resp}");
        // didChange without a uri: same contract.
        let change = lsp_req(
            "textDocument/didChange",
            Json::Obj(vec![(
                "contentChanges".into(),
                Json::Arr(vec![Json::Obj(vec![("text".into(), Json::str(PROG))])]),
            )]),
            Some(4.0),
        );
        let (resp, _) = serve.handle(&change);
        let v = Json::parse(&resp).unwrap();
        assert!(v.get("error").is_some(), "{resp}");
    }

    #[test]
    fn did_close_clears_diagnostics_and_session() {
        let uri = "file:///x.rsc";
        let mut serve = Serve::new(CheckerOptions::default());
        serve.handle(&did_open(uri, PROG));
        let close = lsp_req(
            "textDocument/didClose",
            Json::Obj(vec![(
                "textDocument".into(),
                Json::Obj(vec![("uri".into(), Json::str(uri))]),
            )]),
            None,
        );
        let (resp, _) = serve.handle(&close);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(
            v.get("params").unwrap().get("diagnostics"),
            Some(&Json::Arr(vec![]))
        );
        let (resp, _) = serve.handle(r#"{"cmd":"stats"}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("docs").and_then(Json::as_f64), Some(0.0), "{resp}");
    }

    /// Diagnostics published under a *non-open* closure file's URI must
    /// be cleared with an empty publish once that file leaves the
    /// closure — otherwise the editor pins its stale errors forever.
    #[test]
    fn removed_import_clears_the_dependency_uri() {
        let dir = std::env::temp_dir().join("rsc_serve_stale_dep");
        std::fs::create_dir_all(&dir).unwrap();
        // lib.rsc lives only on disk (never didOpen'ed) and is broken.
        std::fs::write(
            dir.join("lib.rsc"),
            "export function f(): {v: number | 0 <= v} { return 0 - 1; }\n",
        )
        .unwrap();
        let app_uri = format!("file://{}/app.rsc", dir.to_str().unwrap());
        let lib_uri = format!("file://{}/lib.rsc", dir.to_str().unwrap());
        let app = "import {f} from \"./lib.rsc\";\nvar z = f();\n";
        let mut serve = Serve::new(CheckerOptions::default());
        let (resp, _) = serve.handle(&did_open(&app_uri, app));
        let lines = parse_lines(&resp);
        assert_eq!(lines.len(), 2, "app + non-open lib: {resp}");
        let lib_line = lines
            .iter()
            .find(|l| {
                l.get("params").unwrap().get("uri").and_then(Json::as_str) == Some(lib_uri.as_str())
            })
            .expect("publish for the non-open dependency");
        match lib_line.get("params").unwrap().get("diagnostics") {
            Some(Json::Arr(ds)) => assert!(!ds.is_empty(), "{resp}"),
            other => panic!("bad diagnostics: {other:?}"),
        }
        // Drop the import: lib leaves the closure, so its URI must get
        // one final empty publish.
        let (resp, _) = serve.handle(&did_change(&app_uri, "var z = 1;\n"));
        let lines = parse_lines(&resp);
        assert_eq!(lines.len(), 2, "app + clearing publish for lib: {resp}");
        let lib_line = lines
            .iter()
            .find(|l| {
                l.get("params").unwrap().get("uri").and_then(Json::as_str) == Some(lib_uri.as_str())
            })
            .expect("clearing publish for the departed dependency");
        assert_eq!(
            lib_line.get("params").unwrap().get("diagnostics"),
            Some(&Json::Arr(vec![])),
            "{resp}"
        );
        // Steady state: no more publishes for lib.
        let (resp, _) = serve.handle(&did_change(&app_uri, "var z = 2;\n"));
        assert_eq!(parse_lines(&resp).len(), 1, "{resp}");
    }

    #[test]
    fn lsp_and_legacy_requests_interleave() {
        let mut serve = Serve::new(CheckerOptions::default());
        let (resp, _) = serve.handle(&did_open("file:///x.rsc", PROG));
        assert!(resp.contains("publishDiagnostics"));
        // A legacy bare `check` sees the LSP buffer.
        let (resp, _) = serve.handle(r#"{"cmd":"check"}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("verified"), Some(&Json::Bool(true)), "{resp}");
        // Malformed LSP *request* (it carries an id) errors without
        // killing the loop…
        let (resp, quit) =
            serve.handle(r#"{"jsonrpc":"2.0","id":9,"method":"textDocument/didOpen","params":{}}"#);
        assert!(!quit);
        assert!(Json::parse(&resp).unwrap().get("error").is_some(), "{resp}");
        // …while a malformed *notification* (no id) is dropped silently:
        // the spec forbids responding to notifications.
        let (resp, quit) =
            serve.handle(r#"{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{}}"#);
        assert!(resp.is_empty() && !quit, "{resp}");
    }

    #[test]
    fn run_loop_over_buffers() {
        let script = format!(
            "{}\n{}\n{}\n{}\n",
            load_req(PROG),
            r#"{"cmd":"stats"}"#,
            r#"{"cmd":"reset"}"#,
            r#"{"cmd":"quit"}"#
        );
        let mut out = Vec::new();
        Serve::run(
            CheckerOptions::default(),
            std::io::BufReader::new(script.as_bytes()),
            &mut out,
        )
        .unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
        assert_eq!(lines.len(), 4);
        for l in &lines {
            assert_eq!(
                Json::parse(l).unwrap().get("ok"),
                Some(&Json::Bool(true)),
                "{l}"
            );
        }
    }
}
