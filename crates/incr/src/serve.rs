//! The `rsc serve` protocol: newline-delimited JSON requests on stdin,
//! one JSON response per line on stdout.
//!
//! Requests are objects with a `cmd` field:
//!
//! | request                                   | effect                              |
//! |-------------------------------------------|-------------------------------------|
//! | `{"cmd":"load","path":"f.rsc"}`           | read file, (re-)check it            |
//! | `{"cmd":"load","source":"…"}`             | check the inline source             |
//! | `{"cmd":"edit","source":"…"}`             | replace the text, incremental check |
//! | `{"cmd":"edit","path":"f.rsc"}`           | re-read the file, incremental check |
//! | `{"cmd":"check"}`                         | re-check the current text           |
//! | `{"cmd":"stats"}`                         | session + VC-cache counters         |
//! | `{"cmd":"reset"}`                         | drop retained verdicts and cache    |
//! | `{"cmd":"quit"}`                          | acknowledge and exit                |
//!
//! Check responses look like:
//!
//! ```json
//! {"ok":true,"cmd":"edit","verified":false,
//!  "diagnostics":[{"severity":"error","line":12,"message":"…"}],
//!  "bundles":9,"reused":8,"solved":1,"fast_path":false,
//!  "dirty_units":["fun:step"],"time_us":1234}
//! ```
//!
//! `load` and `edit` are deliberately the same operation on an existing
//! session — `load` additionally remembers the path so later bare
//! `edit`/`check` requests can re-read it. Errors (unreadable file, bad
//! JSON, unknown command) come back as `{"ok":false,"error":"…"}` and
//! never kill the loop.

use std::io::{BufRead, Write};

use rsc_core::CheckerOptions;

use crate::json::Json;
use crate::session::{CheckSession, SessionOutcome};

/// The state behind one `rsc serve` loop.
pub struct Serve {
    session: CheckSession,
    /// The most recently named file (for bare `edit`/`check` requests).
    path: Option<String>,
    /// The current text, as last submitted or read.
    src: Option<String>,
    /// True when `src` arrived inline (an editor buffer) rather than
    /// from disk: a bare `check` must then re-check the buffer, not
    /// silently revert to the file's on-disk contents.
    src_is_inline: bool,
}

impl Serve {
    /// A fresh serve state checking with `opts`.
    pub fn new(opts: CheckerOptions) -> Serve {
        Serve {
            session: CheckSession::new(opts),
            path: None,
            src: None,
            src_is_inline: false,
        }
    }

    /// Handles one request line; returns the response line and whether
    /// the loop should exit.
    pub fn handle(&mut self, line: &str) -> (String, bool) {
        let line = line.trim();
        if line.is_empty() {
            return (err("empty request"), false);
        }
        let req = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return (err(&format!("bad JSON: {e}")), false),
        };
        let cmd = match req.get("cmd").and_then(Json::as_str) {
            Some(c) => c.to_string(),
            None => return (err("missing \"cmd\""), false),
        };
        match cmd.as_str() {
            "load" | "edit" => {
                let source = match self.resolve_source(&req) {
                    Ok(s) => s,
                    Err(e) => return (err(&e), false),
                };
                if let Some(p) = req.get("path").and_then(Json::as_str) {
                    self.path = Some(p.to_string());
                }
                self.src_is_inline = req.get("source").and_then(Json::as_str).is_some();
                self.src = Some(source.clone());
                let outcome = self.session.check(&source);
                (check_response(&cmd, &outcome), false)
            }
            "check" => match self.current_source() {
                Ok(source) => {
                    let outcome = self.session.check(&source);
                    (check_response("check", &outcome), false)
                }
                Err(e) => (err(&e), false),
            },
            "stats" => (self.stats_response(), false),
            "reset" => {
                self.session.reset();
                (
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("cmd".into(), Json::str("reset")),
                    ])
                    .to_string(),
                    false,
                )
            }
            "quit" => (
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("cmd".into(), Json::str("quit")),
                ])
                .to_string(),
                true,
            ),
            other => (err(&format!("unknown cmd {other:?}")), false),
        }
    }

    /// Source text for a `load`/`edit` request: inline `source` wins,
    /// else `path` (re-)read from disk, else the remembered path.
    fn resolve_source(&self, req: &Json) -> Result<String, String> {
        if let Some(s) = req.get("source").and_then(Json::as_str) {
            return Ok(s.to_string());
        }
        let path = req
            .get("path")
            .and_then(Json::as_str)
            .map(str::to_string)
            .or_else(|| self.path.clone())
            .ok_or("need \"source\" or \"path\"")?;
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))
    }

    /// The text a bare `check` re-checks: the inline buffer when the
    /// latest `load`/`edit` carried one (re-reading the path here would
    /// silently verify stale on-disk contents), otherwise a fresh read
    /// of the remembered path.
    fn current_source(&self) -> Result<String, String> {
        if !self.src_is_inline {
            if let Some(p) = &self.path {
                return std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
            }
        }
        self.src.clone().ok_or_else(|| "nothing loaded".to_string())
    }

    fn stats_response(&self) -> String {
        let c = self.session.cache().counters();
        let mut fields = vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("stats")),
            ("cache_entries".into(), Json::num(c.entries as f64)),
            ("cache_hits".into(), Json::num(c.hits as f64)),
            ("cache_misses".into(), Json::num(c.misses as f64)),
        ];
        if let Some(last) = self.session.last() {
            fields.push(("bundles".into(), Json::num(last.incr.bundles as f64)));
            fields.push(("verified".into(), Json::Bool(last.result.ok())));
        }
        Json::Obj(fields).to_string()
    }

    /// Runs the serve loop over arbitrary reader/writer pairs (stdin and
    /// stdout in the binary; in-memory buffers in tests and CI drivers).
    pub fn run(
        opts: CheckerOptions,
        reader: impl BufRead,
        mut writer: impl Write,
    ) -> std::io::Result<()> {
        let mut serve = Serve::new(opts);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (response, quit) = serve.handle(&line);
            writeln!(writer, "{response}")?;
            writer.flush()?;
            if quit {
                break;
            }
        }
        Ok(())
    }
}

fn err(msg: &str) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::str(msg)),
    ])
    .to_string()
}

fn check_response(cmd: &str, outcome: &SessionOutcome) -> String {
    let diags: Vec<Json> = outcome
        .result
        .diagnostics
        .iter()
        .map(|d| {
            let severity = match d.severity {
                rsc_core::Severity::Error => "error",
                rsc_core::Severity::Note => "note",
            };
            Json::Obj(vec![
                ("severity".into(), Json::str(severity)),
                ("line".into(), Json::num(d.span.line as f64)),
                ("message".into(), Json::str(d.message.clone())),
            ])
        })
        .collect();
    let dirty: Vec<Json> = outcome
        .incr
        .dirty_units
        .iter()
        .map(|u| Json::str(u.clone()))
        .collect();
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("cmd".into(), Json::str(cmd)),
        ("verified".into(), Json::Bool(outcome.result.ok())),
        ("diagnostics".into(), Json::Arr(diags)),
        ("bundles".into(), Json::num(outcome.incr.bundles as f64)),
        ("reused".into(), Json::num(outcome.incr.reused as f64)),
        ("solved".into(), Json::num(outcome.incr.solved as f64)),
        ("fast_path".into(), Json::Bool(outcome.incr.fast_path)),
        ("dirty_units".into(), Json::Arr(dirty)),
        (
            "time_us".into(),
            Json::num(outcome.incr.total_micros as f64),
        ),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "type nat = {v: number | 0 <= v};\nfunction abs(x: number): nat {\n    if (x < 0) { return 0 - x; }\n    return x;\n}\nfunction dbl(y: nat): nat { return y + y; }\n";

    fn load_req(src: &str) -> String {
        Json::Obj(vec![
            ("cmd".into(), Json::str("load")),
            ("source".into(), Json::str(src)),
        ])
        .to_string()
    }

    fn edit_req(src: &str) -> String {
        Json::Obj(vec![
            ("cmd".into(), Json::str("edit")),
            ("source".into(), Json::str(src)),
        ])
        .to_string()
    }

    #[test]
    fn load_edit_cycle() {
        let mut serve = Serve::new(CheckerOptions::default());
        let (resp, quit) = serve.handle(&load_req(PROG));
        assert!(!quit);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("verified"), Some(&Json::Bool(true)));
        assert_eq!(v.get("reused").unwrap().as_f64(), Some(0.0));

        // Break abs (x = 0 falls through and returns -1); id's bundle
        // is reused and the error is reported.
        let bad = PROG.replace("return x;\n}", "return x - 1;\n}");
        let (resp, _) = serve.handle(&edit_req(&bad));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("verified"), Some(&Json::Bool(false)));
        assert!(v.get("reused").unwrap().as_f64().unwrap() > 0.0);
        match v.get("diagnostics") {
            Some(Json::Arr(ds)) => assert!(!ds.is_empty()),
            other => panic!("bad diagnostics: {other:?}"),
        }

        // Fix it again: fast, verified.
        let (resp, _) = serve.handle(&edit_req(PROG));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("verified"), Some(&Json::Bool(true)));
    }

    /// A bare `check` after an inline `edit` must re-check the inline
    /// buffer, not silently re-read the older on-disk file.
    #[test]
    fn bare_check_prefers_the_inline_buffer() {
        let dir = std::env::temp_dir().join("rsc_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("buffer.rsc");
        std::fs::write(&file, PROG).unwrap();
        let mut serve = Serve::new(CheckerOptions::default());
        let load = Json::Obj(vec![
            ("cmd".into(), Json::str("load")),
            ("path".into(), Json::str(file.to_str().unwrap())),
        ])
        .to_string();
        let (resp, _) = serve.handle(&load);
        assert_eq!(
            Json::parse(&resp).unwrap().get("verified"),
            Some(&Json::Bool(true))
        );
        // Editor submits a broken buffer; the disk file stays clean.
        let bad = PROG.replace("return x;\n}", "return x - 1;\n}");
        serve.handle(&edit_req(&bad));
        let (resp, _) = serve.handle(r#"{"cmd":"check"}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(
            v.get("verified"),
            Some(&Json::Bool(false)),
            "bare check must see the inline edit, not the stale file: {resp}"
        );
        // A path-carrying edit switches back to disk.
        let reload = Json::Obj(vec![
            ("cmd".into(), Json::str("edit")),
            ("path".into(), Json::str(file.to_str().unwrap())),
        ])
        .to_string();
        let (resp, _) = serve.handle(&reload);
        assert_eq!(
            Json::parse(&resp).unwrap().get("verified"),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn protocol_errors_do_not_kill_the_loop() {
        let mut serve = Serve::new(CheckerOptions::default());
        for bad in ["not json", "{}", r#"{"cmd":"nope"}"#, r#"{"cmd":"check"}"#] {
            let (resp, quit) = serve.handle(bad);
            assert!(!quit);
            let v = Json::parse(&resp).unwrap();
            assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{bad}");
        }
        let (_, quit) = serve.handle(r#"{"cmd":"quit"}"#);
        assert!(quit);
    }

    #[test]
    fn run_loop_over_buffers() {
        let script = format!(
            "{}\n{}\n{}\n{}\n",
            load_req(PROG),
            r#"{"cmd":"stats"}"#,
            r#"{"cmd":"reset"}"#,
            r#"{"cmd":"quit"}"#
        );
        let mut out = Vec::new();
        Serve::run(
            CheckerOptions::default(),
            std::io::BufReader::new(script.as_bytes()),
            &mut out,
        )
        .unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
        assert_eq!(lines.len(), 4);
        for l in &lines {
            assert_eq!(
                Json::parse(l).unwrap().get("ok"),
                Some(&Json::Bool(true)),
                "{l}"
            );
        }
    }
}
