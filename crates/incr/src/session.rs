//! Persistent check sessions: re-check an evolving program, re-solving
//! only what changed.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use rsc_core::{
    generate_artifacts, solve_artifacts, CheckResult, CheckStats, CheckerOptions, Diagnostic,
    RetainedBundle,
};
use rsc_smt::{cache::ENCODER_VERSION, DiskCache, VcCache};

use crate::graph::DepGraph;
use crate::persist::BundleStore;

/// Incremental bookkeeping for one [`CheckSession::check`] call.
#[derive(Clone, Debug, Default)]
pub struct IncrStats {
    /// Bundles in this run.
    pub bundles: usize,
    /// Bundles whose verdicts were reused from the previous run.
    pub reused: usize,
    /// Bundles actually re-solved.
    pub solved: usize,
    /// Names of units the dependency graph flagged dirty (empty on the
    /// first check of a session).
    pub dirty_units: Vec<String>,
    /// True when the whole-program hash matched and the previous result
    /// was returned without re-generating anything.
    pub fast_path: bool,
    /// Importer documents whose re-check was skipped entirely because
    /// the edited dependency's export surface did not change (filled in
    /// by the workspace layer on the edited document's report; always 0
    /// for plain single-document sessions).
    pub importers_skipped: usize,
    /// Wall-clock time of this check, in microseconds.
    pub total_micros: u64,
}

/// The result of one session re-check: the ordinary [`CheckResult`]
/// (byte-identical to a cold `check_program` of the same source) plus
/// the session's incremental bookkeeping.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// The checker result, exactly as a cold run would produce it.
    pub result: CheckResult,
    /// What the session reused versus re-solved.
    pub incr: IncrStats,
}

/// State carried from the previous successful generation run.
struct State {
    graph: DepGraph,
    retained: HashMap<u128, RetainedBundle>,
    last: SessionOutcome,
}

/// A persistent checking session.
///
/// The session owns the cross-run VC cache and, after each run, the
/// per-bundle verdicts keyed by their canonical fingerprints
/// (`rsc_liquid::bundle_fingerprint`). On the next [`CheckSession::check`]
/// it re-generates constraints for the new source (cheap; narrowing
/// queries mostly hit the persistent VC cache), reuses every bundle whose
/// canonical problem is unchanged, and re-solves the rest. Verdicts are
/// pure functions of the canonical bundle problem, so the merged output
/// is byte-identical to a cold check of the same source — the retention
/// map is rebuilt from each run's reports, so verdicts for deleted code
/// are garbage-collected automatically.
pub struct CheckSession {
    opts: CheckerOptions,
    cache: Arc<VcCache>,
    state: Option<State>,
    /// Directory of the persistent disk tier (`--vc-cache DIR`), if any.
    disk_dir: Option<PathBuf>,
    /// The open disk tier. Lazily (re)opened after constraint
    /// generation: the cache version mixes the run-global fingerprint
    /// (qualifier set + sort environment, known only post-generation)
    /// with [`ENCODER_VERSION`].
    disk: Option<DiskState>,
}

/// The two persistent tiers, opened for one cache version.
struct DiskState {
    version: u64,
    vc: DiskCache,
    bundles: BundleStore,
}

/// The on-disk cache version for a run: the run-global solve
/// fingerprint mixed with the encoder version (splitmix64 finalizer, so
/// close fingerprints land in unrelated files).
fn disk_version(global_fp: u64) -> u64 {
    let mut z = global_fp
        .wrapping_add(ENCODER_VERSION.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl CheckSession {
    /// A fresh session checking with `opts`. The options are fixed for
    /// the session's lifetime (retained verdicts are only valid under
    /// the options that produced them). The session's cross-run VC cache
    /// honors `opts.cache_capacity` / `RSC_CACHE_CAP`, which is what
    /// keeps week-long sessions at a flat memory footprint.
    pub fn new(opts: CheckerOptions) -> CheckSession {
        CheckSession::with_cache(
            opts,
            VcCache::shared_with_capacity(opts.effective_cache_capacity()),
        )
    }

    /// A fresh session over a caller-supplied VC cache. This is how a
    /// [`crate::Workspace`] makes every document share one cache:
    /// verdicts are pure functions of the canonical VC (the cache keys
    /// fold in all applied symbol signatures), so sharing across
    /// documents is sound and makes opening a second file that overlaps
    /// the first mostly cache hits.
    pub fn with_cache(opts: CheckerOptions, cache: Arc<VcCache>) -> CheckSession {
        CheckSession {
            opts,
            cache,
            state: None,
            disk_dir: None,
            disk: None,
        }
    }

    /// A fresh session whose VC verdicts and bundle verdicts persist to
    /// `dir` across process restarts (the `--vc-cache DIR` tier). Warm
    /// verdicts for an unchanged program are served entirely from disk:
    /// the solve phase reuses every bundle and issues zero SMT queries.
    pub fn with_disk(opts: CheckerOptions, dir: impl Into<PathBuf>) -> CheckSession {
        CheckSession::new(opts).persisting_to(dir)
    }

    /// Attaches the persistent disk tier rooted at `dir` (builder-style;
    /// see [`CheckSession::with_disk`]). The tier is opened lazily on
    /// the next check — an unreadable directory degrades to a cold
    /// in-memory cache with a warning, never a failed check.
    pub fn persisting_to(mut self, dir: impl Into<PathBuf>) -> CheckSession {
        self.disk_dir = Some(dir.into());
        self.disk = None;
        self
    }

    /// The session's options.
    pub fn options(&self) -> CheckerOptions {
        self.opts
    }

    /// The cross-run VC cache.
    pub fn cache(&self) -> &Arc<VcCache> {
        &self.cache
    }

    /// The previous check's outcome, if any.
    pub fn last(&self) -> Option<&SessionOutcome> {
        self.state.as_ref().map(|s| &s.last)
    }

    /// The dependency graph of the last successfully generated snapshot
    /// (used by the workspace layer to attribute dirty units to files).
    pub fn graph(&self) -> Option<&DepGraph> {
        self.state.as_ref().map(|s| &s.graph)
    }

    /// Drops all retained verdicts and the VC cache (the next check is
    /// cold).
    pub fn reset(&mut self) {
        self.state = None;
        self.cache = VcCache::shared_with_capacity(self.opts.effective_cache_capacity());
        // Reopen (and re-seed from) the disk tier on the next check: a
        // reset empties the in-memory caches, not the persistent files.
        self.disk = None;
    }

    /// Opens (or re-opens, when the run-global fingerprint changed) the
    /// persistent tiers for this run's cache version, seeding the
    /// in-memory VC cache with every proof on disk. No-op without a
    /// configured `--vc-cache` directory; I/O failures degrade to a
    /// cold in-memory cache with a warning on stderr.
    fn open_disk(&mut self, global_fp: u64) {
        let Some(dir) = &self.disk_dir else { return };
        let version = disk_version(global_fp);
        if self.disk.as_ref().is_some_and(|d| d.version == version) {
            return;
        }
        self.disk = None;
        let vc = match DiskCache::open(dir, version) {
            Ok(vc) => vc,
            Err(e) => {
                eprintln!("rsc: cannot open VC cache in {}: {e}", dir.display());
                return;
            }
        };
        let bundles = match BundleStore::open(dir, version) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("rsc: cannot open bundle cache in {}: {e}", dir.display());
                return;
            }
        };
        vc.load_into(&self.cache);
        self.disk = Some(DiskState {
            version,
            vc,
            bundles,
        });
    }

    /// Appends this run's new proofs and bundle verdicts to the disk
    /// tier (the delta only — both stores track what is already
    /// persisted). Write failures warn and leave the in-memory run
    /// intact.
    fn flush_disk(&mut self, retained: &HashMap<u128, RetainedBundle>) {
        let Some(disk) = &mut self.disk else { return };
        if let Err(e) = disk.vc.flush(&self.cache) {
            eprintln!("rsc: cannot write VC cache: {e}");
        }
        if let Err(e) = disk.bundles.flush(retained.iter().map(|(fp, b)| (*fp, b))) {
            eprintln!("rsc: cannot write bundle cache: {e}");
        }
    }

    /// Checks `src`, reusing whatever the previous run proved.
    pub fn check(&mut self, src: &str) -> SessionOutcome {
        let start = Instant::now();
        let prog = match rsc_syntax::parse_program(src) {
            Ok(p) => p,
            Err(e) => return self.front_error(e.message, e.span, start),
        };
        self.check_prog(&prog, start)
    }

    /// Checks an already-parsed program, reusing whatever the previous
    /// run proved. This is the workspace layer's entry point for merged
    /// closures whose items were module-qualified in memory (there is no
    /// source text whose parse yields the qualified AST). The session
    /// invariant is the same as [`CheckSession::check`]: the result is
    /// byte-identical to a cold `check_program_ast` of the same AST.
    pub fn check_ast(&mut self, prog: &rsc_syntax::Program) -> SessionOutcome {
        let start = Instant::now();
        self.check_prog(prog, start)
    }

    fn check_prog(&mut self, prog: &rsc_syntax::Program, start: Instant) -> SessionOutcome {
        let _sp = rsc_obs::span!("check");
        let ir = match rsc_ssa::transform_program(prog) {
            Ok(i) => i,
            Err(e) => return self.front_error(e.message, e.span, start),
        };
        let graph = DepGraph::build(&ir);

        // Fast path: byte-for-byte identical SSA program (e.g. a watch
        // loop waking up on an mtime touch) — nothing can change.
        if let Some(state) = &self.state {
            if state.graph.program_hash == graph.program_hash {
                let mut out = state.last.clone();
                out.incr.fast_path = true;
                out.incr.reused = out.incr.bundles;
                out.incr.solved = 0;
                out.incr.dirty_units = Vec::new();
                out.incr.total_micros = start.elapsed().as_micros() as u64;
                return out;
            }
        }

        let prev = self.state.take();
        let dirty_units = prev
            .as_ref()
            .map(|s| graph.dirty_against(&s.graph))
            .unwrap_or_default();

        let artifacts = generate_artifacts(&ir, self.opts, Arc::clone(&self.cache));
        self.open_disk(artifacts.global_fp);
        let disk = self.disk.as_ref();
        let retained_ref = prev.as_ref().map(|s| &s.retained);
        let result = solve_artifacts(artifacts, &mut |fp| {
            retained_ref
                .and_then(|m| m.get(&fp))
                .or_else(|| disk.and_then(|d| d.bundles.get(fp)))
                .cloned()
        });

        drop(prev);

        // Rebuild retention from this run's reports: content-keyed, so
        // verdicts for edited-away bundles disappear naturally.
        let retained: HashMap<u128, RetainedBundle> = result
            .bundle_reports
            .iter()
            .map(|r| (r.fingerprint, r.retained()))
            .collect();
        self.flush_disk(&retained);
        let incr = IncrStats {
            bundles: result.bundle_reports.len(),
            reused: result.stats.bundles_reused,
            solved: result.bundle_reports.len() - result.stats.bundles_reused,
            dirty_units,
            fast_path: false,
            importers_skipped: 0,
            total_micros: start.elapsed().as_micros() as u64,
        };
        let outcome = SessionOutcome { result, incr };
        self.state = Some(State {
            graph,
            retained,
            last: outcome.clone(),
        });
        outcome
    }

    /// Replays an edit script — a sequence of full program snapshots —
    /// through the session, returning one outcome per step. Each
    /// outcome is byte-identical to a cold check of that snapshot (the
    /// session invariant), which is exactly what the `rsc fuzz`
    /// incremental-equivalence oracle replays generated edit scripts
    /// to confirm.
    pub fn replay_script<'a>(
        &mut self,
        steps: impl IntoIterator<Item = &'a str>,
    ) -> Vec<SessionOutcome> {
        steps.into_iter().map(|s| self.check(s)).collect()
    }

    /// A parse/SSA front-end error: reported like a cold check would
    /// (one diagnostic, no stats), previous retained state kept for the
    /// next parseable snapshot.
    fn front_error(
        &mut self,
        message: String,
        span: rsc_syntax::Span,
        start: Instant,
    ) -> SessionOutcome {
        SessionOutcome {
            result: CheckResult {
                diagnostics: vec![Diagnostic::error(message, span)],
                lints: Vec::new(),
                stats: CheckStats::default(),
                bundle_reports: Vec::new(),
            },
            incr: IncrStats {
                total_micros: start.elapsed().as_micros() as u64,
                ..IncrStats::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_core::check_program;

    const PROG: &str = r#"
        type nat = {v: number | 0 <= v};
        function abs(x: number): nat {
            if (x < 0) { return 0 - x; }
            return x;
        }
        function clamp(x: number): nat {
            if (x < 0) { return 0; }
            return x;
        }
    "#;

    fn render(r: &CheckResult) -> String {
        r.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn edit_matches_cold_and_reuses() {
        let mut s = CheckSession::new(CheckerOptions::default());
        let first = s.check(PROG);
        assert!(first.result.ok(), "{}", render(&first.result));
        assert_eq!(first.incr.reused, 0);

        // Body edit in `abs` only: clamp's bundle must be reused.
        let edited = PROG.replace("return 0 - x;", "return (0 - x) + 1;");
        let second = s.check(&edited);
        let cold = check_program(&edited, CheckerOptions::default());
        assert_eq!(render(&second.result), render(&cold));
        assert_eq!(second.result.ok(), cold.ok());
        assert!(
            second.incr.reused > 0,
            "expected reuse, got {:?}",
            second.incr
        );
        assert!(second.incr.solved < second.incr.bundles);
        assert!(second.incr.dirty_units.contains(&"fun:abs".to_string()));

        // Edit back: everything retained from the first run still keyed.
        let third = s.check(PROG);
        assert!(third.result.ok());
        assert!(third.incr.reused > 0);
    }

    #[test]
    fn fast_path_on_identical_source() {
        let mut s = CheckSession::new(CheckerOptions::default());
        let first = s.check(PROG);
        let again = s.check(PROG);
        assert!(again.incr.fast_path);
        assert_eq!(render(&first.result), render(&again.result));
        assert_eq!(again.incr.solved, 0);
    }

    #[test]
    fn parse_error_reports_and_recovers() {
        let mut s = CheckSession::new(CheckerOptions::default());
        assert!(s.check(PROG).result.ok());
        let broken = s.check("function ((");
        assert!(!broken.result.ok());
        // Retained state survives the broken snapshot.
        let back = s.check(PROG);
        assert!(back.result.ok());
        assert!(back.incr.reused > 0 || back.incr.fast_path);
    }

    /// A global error (class-table build failure) reports exactly like a
    /// cold check. The old "transiently duplicated class name" band-aid
    /// that special-cased zero-bundle failures is gone: cross-file name
    /// collisions can no longer nuke the class table (closure merging
    /// α-renames each module's declarations — see `workspace`), so the
    /// session no longer needs a recovery path for them.
    #[test]
    fn class_table_error_reports_like_cold() {
        let mut s = CheckSession::new(CheckerOptions::default());
        assert!(s.check(PROG).result.ok());
        let broken_src = format!("{PROG}\nclass D {{\n    f : Missing;\n}}\n");
        let broken = s.check(&broken_src);
        let cold = check_program(&broken_src, CheckerOptions::default());
        assert_eq!(render(&broken.result), render(&cold));
        assert!(!broken.result.ok());
        // The fix re-checks correctly (identity with cold holds on every
        // snapshot, which is the invariant that matters).
        let back = s.check(PROG);
        assert!(back.result.ok());
    }

    #[test]
    fn failing_edit_is_byte_identical_to_cold() {
        let mut s = CheckSession::new(CheckerOptions::default());
        s.check(PROG);
        let bad = PROG.replace("if (x < 0) { return 0; }", "if (x < 1) { return 0 - 1; }");
        let session = s.check(&bad);
        let cold = check_program(&bad, CheckerOptions::default());
        assert_eq!(render(&session.result), render(&cold));
        assert!(!session.result.ok());
    }
}
