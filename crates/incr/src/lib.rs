//! # rsc-incr
//!
//! Incremental checking sessions: the layer that turns the batch checker
//! of [`rsc_core`] into a long-lived service whose unit of work is "one
//! function changed, re-check now" instead of "check the whole program".
//!
//! A [`CheckSession`] persists across edits and holds, from the previous
//! run: the unit-level dependency graph with per-unit content
//! fingerprints ([`DepGraph`]), every bundle's verdict keyed by its
//! canonical cross-run fingerprint, and the run-spanning VC cache (legal
//! since `rsc_smt::cache` folds uninterpreted-symbol signatures into its
//! keys). On an edit the session re-generates constraints (cheap, and
//! mostly VC-cache hits), diffs per-unit fingerprints for reporting,
//! re-solves exactly the bundles whose canonical problem changed, and
//! merges fresh diagnostics with retained ones — byte-identical to a
//! from-scratch run, which `tests/incremental_equivalence.rs` enforces
//! over random edit scripts.
//!
//! One layer up, a [`Workspace`] scales sessions to *documents*: one
//! [`CheckSession`] per URI/path over a shared VC cache, `import`
//! resolution into a merged (concatenated) program, and cross-file
//! dependency edges keyed by each file's export-surface hash — see
//! [`workspace`].
//!
//! Two front-ends surface the subsystem through the `rsc` binary:
//! `rsc serve` (newline-delimited JSON requests on stdin, speaking both
//! the legacy `cmd` protocol and an LSP subset with per-URI
//! `publishDiagnostics` — see [`serve`]) and `rsc --watch` (re-check on
//! mtime change of any file in the watched documents' import closures).

#![warn(missing_docs)]

pub mod graph;
pub mod json;
pub mod persist;
pub mod serve;
mod session;
pub mod workspace;

pub use graph::DepGraph;
pub use json::Json;
pub use persist::BundleStore;
pub use serve::Serve;
pub use session::{CheckSession, IncrStats, SessionOutcome};
pub use workspace::{
    qualified_program, resolve_closure, DocReport, Merged, ModuleFile, Workspace, WorkspaceError,
};

// Re-exported so batch drivers can build the shared cache
// [`Workspace::with_cache`] expects without depending on `rsc_smt`.
pub use rsc_smt::VcCache;
