//! On-disk persistence of per-bundle verdicts — the second tier of the
//! persistent VC cache (`--vc-cache DIR`).
//!
//! The [`rsc_smt::DiskCache`] tier persists *Unsat* canonical VCs, which
//! covers every query that proved something. But a cold fixpoint also
//! issues Sat queries (each dropped candidate costs one), and those are
//! deliberately never cached (`Sat` may be a resource-capped `Unknown`,
//! so caching it could mask a later, stronger proof). Re-checking an
//! unchanged program with only the VC tier warm would therefore still
//! re-solve every Sat query. This module closes that gap at the bundle
//! level: a [`BundleStore`] persists each bundle's *verdict*
//! ([`RetainedBundle`]) keyed by its canonical cross-run fingerprint
//! (`rsc_liquid::bundle_fingerprint`), so a warm re-check reuses whole
//! bundles and issues **zero** solve-phase SMT queries for unchanged
//! code.
//!
//! # Soundness
//!
//! A bundle fingerprint folds in the canonical renderings of every
//! constraint, the qualifier set, and the sort environment (via the
//! run-global fingerprint) — a verdict is a pure function of it. The
//! same versioning contract as the VC tier applies on top: files are
//! named `bundles-{version:016x}.rbc` and carry the version in their
//! header, where `version` mixes the run-global fingerprint with
//! [`rsc_smt::cache::ENCODER_VERSION`]. A checker with different
//! qualifiers or a different encoder opens a different file and starts
//! cold; stale files are ignored, never misread.
//!
//! # Format and crash tolerance
//!
//! After a `rsc-bundle-cache v2 {version:016x}\n` header the file is a
//! sequence of fixed-layout little-endian records:
//!
//! ```text
//! u128 fingerprint
//! u64  smt_queries, u64 discharged, u64 solve_ns
//! u64×6 solver counters (queries, valid, sat_rounds,
//!        theory_conflicts, cache_hits, cache_misses)
//! u32  failure count, then that many u32 bundle-local indices
//! ```
//!
//! Writes are append-only and loading is last-record-wins, so two
//! processes appending the same fingerprint stay consistent. A torn
//! tail (crash mid-flush) truncates the load at the last complete
//! record; a bad header means "not our file" and the file is dropped.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use rsc_core::RetainedBundle;
use rsc_smt::SolverStats;

const MAGIC: &str = "rsc-bundle-cache v2";

/// The bundle-verdict disk tier: a fingerprint-keyed, append-only store
/// of [`RetainedBundle`]s for one cache version. See the module docs.
#[derive(Debug)]
pub struct BundleStore {
    path: std::path::PathBuf,
    version: u64,
    loaded: HashMap<u128, RetainedBundle>,
    /// Fingerprints already on disk (loaded or flushed), so a flush
    /// appends only the delta.
    persisted: Mutex<HashSet<u128>>,
}

impl BundleStore {
    /// Opens (or initializes) the bundle store for `version` in `dir`,
    /// loading every complete record of a matching existing file. The
    /// caller should fold the run-global fingerprint and
    /// [`rsc_smt::cache::ENCODER_VERSION`] into `version`.
    pub fn open(dir: &std::path::Path, version: u64) -> std::io::Result<BundleStore> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("bundles-{version:016x}.rbc"));
        let mut loaded = HashMap::new();
        match std::fs::read(&path) {
            Ok(bytes) => {
                let header = format!("{MAGIC} {version:016x}\n");
                if !bytes.starts_with(header.as_bytes()) {
                    let _ = std::fs::remove_file(&path);
                }
                if let Some(mut rest) = bytes.strip_prefix(header.as_bytes()) {
                    while let Some((fp, bundle, tail)) = read_record(rest) {
                        loaded.insert(fp, bundle); // last record wins
                        rest = tail;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let persisted = loaded.keys().copied().collect();
        Ok(BundleStore {
            path,
            version,
            loaded,
            persisted: Mutex::new(persisted),
        })
    }

    /// Number of verdicts loaded from an existing file at open.
    pub fn loaded(&self) -> usize {
        self.loaded.len()
    }

    /// The verdict stored for `fingerprint`, if any.
    pub fn get(&self, fingerprint: u128) -> Option<&RetainedBundle> {
        self.loaded.get(&fingerprint)
    }

    /// Appends every `(fingerprint, verdict)` not yet on disk; returns
    /// how many records were written. Creates the file (with header) on
    /// first write. Flushed verdicts also become available to
    /// [`BundleStore::get`], so a long-lived session accumulates.
    pub fn flush<'a>(
        &mut self,
        bundles: impl IntoIterator<Item = (u128, &'a RetainedBundle)>,
    ) -> std::io::Result<usize> {
        use std::io::Write as _;
        let persisted = self.persisted.get_mut().unwrap();
        let fresh: Vec<(u128, RetainedBundle)> = bundles
            .into_iter()
            .filter(|(fp, _)| !persisted.contains(fp))
            .map(|(fp, b)| (fp, b.clone()))
            .collect();
        if fresh.is_empty() {
            return Ok(0);
        }
        let exists = self.path.exists();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut buf = Vec::new();
        if !exists {
            let version = self.version;
            buf.extend_from_slice(format!("{MAGIC} {version:016x}\n").as_bytes());
        }
        for (fp, b) in &fresh {
            write_record(&mut buf, *fp, b);
        }
        f.write_all(&buf)?;
        f.flush()?;
        let written = fresh.len();
        for (fp, b) in fresh {
            persisted.insert(fp);
            self.loaded.insert(fp, b);
        }
        Ok(written)
    }
}

fn write_record(buf: &mut Vec<u8>, fp: u128, b: &RetainedBundle) {
    buf.extend_from_slice(&fp.to_le_bytes());
    buf.extend_from_slice(&b.smt_queries.to_le_bytes());
    buf.extend_from_slice(&b.discharged.to_le_bytes());
    buf.extend_from_slice(&b.solve_ns.to_le_bytes());
    for c in [
        b.smt.queries,
        b.smt.valid,
        b.smt.sat_rounds,
        b.smt.theory_conflicts,
        b.smt.cache_hits,
        b.smt.cache_misses,
    ] {
        buf.extend_from_slice(&c.to_le_bytes());
    }
    buf.extend_from_slice(&(b.failures.len() as u32).to_le_bytes());
    for &i in &b.failures {
        buf.extend_from_slice(&(i as u32).to_le_bytes());
    }
}

/// Parses one record off the front of `bytes`; `None` on a torn tail.
fn read_record(bytes: &[u8]) -> Option<(u128, RetainedBundle, &[u8])> {
    // Fixed part: 16 (fp) + 8 + 8 + 8 + 6×8 (counters) + 4 (count).
    const FIXED: usize = 16 + 8 + 8 + 8 + 48 + 4;
    if bytes.len() < FIXED {
        return None;
    }
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    let fp = u128::from_le_bytes(bytes[0..16].try_into().unwrap());
    let smt_queries = u64_at(16);
    let discharged = u64_at(24);
    let solve_ns = u64_at(32);
    let smt = SolverStats {
        queries: u64_at(40),
        valid: u64_at(48),
        sat_rounds: u64_at(56),
        theory_conflicts: u64_at(64),
        cache_hits: u64_at(72),
        cache_misses: u64_at(80),
    };
    let count = u32::from_le_bytes(bytes[88..92].try_into().unwrap()) as usize;
    let end = FIXED + 4 * count;
    if bytes.len() < end {
        return None;
    }
    let failures = (0..count)
        .map(|i| {
            let off = FIXED + 4 * i;
            u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize
        })
        .collect();
    let bundle = RetainedBundle {
        failures,
        smt,
        smt_queries,
        discharged,
        solve_ns,
    };
    Some((fp, bundle, &bytes[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rsc-rbc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample(fp: u64) -> RetainedBundle {
        RetainedBundle {
            failures: vec![fp as usize, fp as usize + 3],
            smt: SolverStats {
                queries: fp,
                valid: fp + 1,
                sat_rounds: fp + 2,
                theory_conflicts: fp + 3,
                cache_hits: fp + 4,
                cache_misses: fp + 5,
            },
            smt_queries: fp * 10,
            discharged: fp * 7,
            solve_ns: fp * 100,
        }
    }

    #[test]
    fn round_trip_and_last_record_wins() {
        let dir = scratch_dir("roundtrip");
        let mut store = BundleStore::open(&dir, 9).unwrap();
        assert_eq!(store.loaded(), 0);
        let a = sample(1);
        let b = sample(2);
        assert_eq!(store.flush(vec![(10u128, &a), (20u128, &b)]).unwrap(), 2);
        // Re-flush of known fingerprints is a no-op.
        assert_eq!(store.flush(vec![(10u128, &a)]).unwrap(), 0);

        let reopened = BundleStore::open(&dir, 9).unwrap();
        assert_eq!(reopened.loaded(), 2);
        let got = reopened.get(10).unwrap();
        assert_eq!(got.failures, a.failures);
        assert_eq!(got.smt.valid, a.smt.valid);
        assert_eq!(got.smt_queries, a.smt_queries);
        assert_eq!(got.solve_ns, a.solve_ns);
        assert!(reopened.get(30).is_none());

        // A second process appending the same fingerprint: loading is
        // last-record-wins.
        let mut other = BundleStore::open(&dir, 9).unwrap();
        // Forget that 10 is persisted so the append actually happens.
        other.persisted.get_mut().unwrap().remove(&10);
        let a2 = sample(7);
        assert_eq!(other.flush(vec![(10u128, &a2)]).unwrap(), 1);
        let last = BundleStore::open(&dir, 9).unwrap();
        assert_eq!(last.get(10).unwrap().smt_queries, a2.smt_queries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn versions_are_isolated() {
        let dir = scratch_dir("versions");
        let mut v1 = BundleStore::open(&dir, 1).unwrap();
        v1.flush(vec![(5u128, &sample(5))]).unwrap();
        let v2 = BundleStore::open(&dir, 2).unwrap();
        assert_eq!(v2.loaded(), 0);
        assert!(v2.get(5).is_none());
        assert_eq!(BundleStore::open(&dir, 1).unwrap().loaded(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tolerates_torn_tail_and_bad_header() {
        let dir = scratch_dir("torn");
        let mut store = BundleStore::open(&dir, 3).unwrap();
        store
            .flush(vec![(1u128, &sample(1)), (2u128, &sample(2))])
            .unwrap();
        let path = dir.join(format!("bundles-{:016x}.rbc", 3u64));
        // Torn tail: append half a record.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0xab; 20]).unwrap();
        }
        let torn = BundleStore::open(&dir, 3).unwrap();
        assert_eq!(torn.loaded(), 2);

        // Bad header: the file is dropped and the store starts cold.
        std::fs::write(&path, b"garbage").unwrap();
        let cold = BundleStore::open(&dir, 3).unwrap();
        assert_eq!(cold.loaded(), 0);
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
