//! A minimal JSON value, parser, and printer for the `rsc serve`
//! protocol.
//!
//! The workspace is fully offline (no registry crates), so this module
//! hand-rolls the slice of JSON the protocol needs: objects, arrays,
//! strings with the standard escapes (including `\uXXXX` pairs),
//! numbers, booleans and `null`. Printing escapes everything JSON
//! requires, so arbitrary program text survives a round-trip through a
//! `{"cmd":"edit","source":…}` request.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Parses one JSON value from `src` (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        let s = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let v = u16::from_str_radix(s, 16)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a \uXXXX low half
                                // in 0xDC00..0xE000 (anything else is a
                                // parse error, not a panic).
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let code = 0x10000
                                            + ((hi as u32 - 0xD800) << 10)
                                            + (lo as u32 - 0xDC00);
                                        char::from_u32(code)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi as u32)
                            };
                            out.push(c.ok_or("invalid unicode escape")?);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {s:?}"))
    }
}

/// Escapes `s` as the contents of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let src = r#"{"cmd":"edit","source":"function f() {\n  return 1;\n}","n":3,"ok":true,"xs":[1,2,-3.5],"z":null}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("cmd").unwrap().as_str(), Some("edit"));
        assert_eq!(
            v.get("source").unwrap().as_str(),
            Some("function f() {\n  return 1;\n}")
        );
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        let printed = v.to_string();
        assert_eq!(Json::parse(&printed).unwrap(), v);
    }

    #[test]
    fn escapes_roundtrip() {
        let nasty = "quote \" backslash \\ newline \n tab \t unicode λ control \u{1}";
        let v = Json::Obj(vec![("s".into(), Json::str(nasty))]);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.get("s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn lone_or_mismatched_surrogates_error_without_panicking() {
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("😀")
        );
        for bad in [r#""\ud800\u0041""#, r#""\ud800""#, r#""\udc00\udc00""#] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }
}
