//! The unit-level dependency graph behind a [`crate::CheckSession`].
//!
//! Nodes are checkable units — top-level functions, class constructors
//! and methods, and the synthetic top-level body — each carrying two
//! content fingerprints: a `body_hash` over its SSA body with *all*
//! span information (byte offsets and line numbers) normalized away —
//! spans are provenance, and since blame is re-attached from each
//! run's own constraints (see `rsc_liquid::blame`), a pure line shift
//! changes no check result and should not report a unit dirty — and
//! an `iface_hash` over its declared signature. Edges follow
//! syntactic references: calls by name, method names reached through
//! field access (a deliberate overapproximation — receiver types are not
//! resolved here), and `new C(...)` constructor uses.
//!
//! A unit's *check input hash* combines its own hashes, the interface
//! hashes of its dependencies, the **body** hashes of any unannotated
//! (deferred) functions it can reach — their constraints are generated
//! inline at the call site — and the global declaration hash (aliases,
//! enums, interfaces, ambient declares, qualifiers, class declarations,
//! all of which feed the class table and qualifier mining).
//!
//! The graph powers the session's *reporting and fast path*: a
//! whole-program hash short-circuits no-op re-checks, and
//! [`DepGraph::dirty_against`] names the units whose inputs changed.
//! Which bundles actually re-solve is decided one level lower, by exact
//! canonical bundle identity (`rsc_liquid::bundle_fingerprint`) — that
//! is strictly more precise and is what the byte-identical guarantee
//! rests on; the graph's dirty set is the human-readable explanation.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::hash::Hasher;

use rsc_ssa::{Body, IrExpr, IrProgram};

/// Erases `Span { lo: …, hi: …, line: … }` renderings entirely. Spans
/// are provenance: blame is re-attached from each run's constraints
/// and bundle fingerprints exclude it, so two snapshots differing only
/// in span positions — a comment-only edit that shifts every line —
/// produce identical check results and must hash equal here (otherwise
/// the dirty-unit report would name every unit while zero bundles
/// re-solve).
///
/// The rewrite only fires on the exact shape the `Span` Debug derive
/// emits (`lo: <digits>, hi: <digits>, line: <digits>`); anything else
/// — e.g. a program *string literal* that merely contains
/// "Span { lo: " — is copied verbatim. A literal that mimics the full
/// shape digit-for-digit can still collapse two unit hashes, which at
/// worst mislabels the dirty-unit *report*: these hashes never gate
/// correctness (bundle fingerprints decide what re-solves, and the
/// session fast path uses the raw, un-normalized program hash).
fn normalize_spans(s: &str) -> String {
    const PAT: &str = "Span { lo: ";
    fn eat_digits(s: &str) -> Option<&str> {
        let end = s.find(|c: char| !c.is_ascii_digit())?;
        if end == 0 {
            return None;
        }
        Some(&s[end..])
    }
    /// `rest` right after `PAT`: returns the remainder after the full
    /// `<digits>, hi: <digits>, line: <digits>` shape when it matches.
    fn span_tail(rest: &str) -> Option<&str> {
        let rest = eat_digits(rest)?;
        let rest = rest.strip_prefix(", hi: ")?;
        let rest = eat_digits(rest)?;
        let rest = rest.strip_prefix(", line: ")?;
        eat_digits(rest)
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find(PAT) {
        match span_tail(&rest[i + PAT.len()..]) {
            Some(tail) => {
                out.push_str(&rest[..i]);
                out.push_str("Span { ");
                rest = tail;
            }
            None => {
                out.push_str(&rest[..i + PAT.len()]);
                rest = &rest[i + PAT.len()..];
            }
        }
    }
    out.push_str(rest);
    out
}

fn hash_str(parts: &[&str]) -> u64 {
    let mut h = DefaultHasher::new();
    for p in parts {
        h.write(normalize_spans(p).as_bytes());
        h.write_u8(1);
    }
    h.finish()
}

/// Hashes verbatim — no span normalization. Used for the whole-program
/// fast-path hash, where a collision would *reuse a stale result* (the
/// one place these hashes gate correctness), so no textual rewriting of
/// any kind is applied.
fn hash_raw(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    h.write(s.as_bytes());
    h.finish()
}

/// One checkable unit and its content fingerprints.
#[derive(Clone, Debug)]
pub struct UnitNode {
    /// Stable display name: `fun:f`, `ctor:C`, `method:C.m`, or `top`.
    pub name: String,
    /// Hash of the unit's SSA body (spans normalized away).
    pub body_hash: u64,
    /// Hash of the unit's declared interface (signatures).
    pub iface_hash: u64,
    /// True for unannotated (deferred) functions, whose bodies are
    /// checked inline at their call sites.
    pub transparent: bool,
    /// Indices of the units this unit references.
    pub deps: Vec<usize>,
    /// Byte offset of the unit's declaration in the program text. In a
    /// merged multi-file program this is what attributes a unit to its
    /// owning file (`u32::MAX` for the synthetic top-level unit, whose
    /// statements may span every file).
    pub span_lo: u32,
    /// True when the source marked the unit's declaration `export`
    /// (methods and constructors inherit their class's marker). The
    /// workspace keys its cross-file edges on the exported units'
    /// interface hashes — see [`DepGraph::export_surface`].
    pub exported: bool,
}

/// The dependency graph of one program snapshot.
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    /// Units in source order.
    pub units: Vec<UnitNode>,
    /// Hash of all non-body declarations (class tables, aliases, enums,
    /// interfaces, ambient declares, qualifiers) — an input to every
    /// unit's check.
    pub globals_hash: u64,
    /// Hash of the entire SSA program, verbatim (no span
    /// normalization): equal hashes mean a re-check is a guaranteed
    /// no-op (the session fast path).
    pub program_hash: u64,
    /// Memoized [`DepGraph::check_input_hash`] per unit, computed once
    /// at build time so per-edit diffs are O(units), not O(units ×
    /// reachable).
    input_hashes: Vec<u64>,
}

/// Collects the syntactic references of an expression: variable names
/// (calls by name arrive as variables), field/method names, and `new`ed
/// class names (prefixed `new:`).
fn refs_of_expr(e: &IrExpr, out: &mut BTreeSet<String>) {
    match e {
        IrExpr::Var(x, _) => {
            out.insert(x.to_string());
        }
        IrExpr::Field(b, f, _) => {
            out.insert(f.to_string());
            refs_of_expr(b, out);
        }
        IrExpr::Index(a, i, _) => {
            refs_of_expr(a, out);
            refs_of_expr(i, out);
        }
        IrExpr::Call(f, args, _) => {
            refs_of_expr(f, out);
            for a in args {
                refs_of_expr(a, out);
            }
        }
        IrExpr::New(c, _, args, _) => {
            out.insert(format!("new:{c}"));
            for a in args {
                refs_of_expr(a, out);
            }
        }
        IrExpr::Cast(_, x, _) | IrExpr::Unary(_, x, _) => refs_of_expr(x, out),
        IrExpr::Binary(_, a, b, _) => {
            refs_of_expr(a, out);
            refs_of_expr(b, out);
        }
        IrExpr::ArrayLit(xs, _) => {
            for x in xs {
                refs_of_expr(x, out);
            }
        }
        IrExpr::FieldAssign(b, f, v, _) => {
            out.insert(f.to_string());
            refs_of_expr(b, out);
            refs_of_expr(v, out);
        }
        IrExpr::IndexAssign(a, i, v, _) => {
            refs_of_expr(a, out);
            refs_of_expr(i, out);
            refs_of_expr(v, out);
        }
        _ => {}
    }
}

fn refs_of_body(b: &Body, out: &mut BTreeSet<String>) {
    match b {
        Body::Ret(e, _) => {
            if let Some(e) = e {
                refs_of_expr(e, out);
            }
        }
        Body::EndBranch(_) => {}
        Body::Let { rhs, rest, .. } => {
            refs_of_expr(rhs, out);
            refs_of_body(rest, out);
        }
        Body::Effect { e, rest, .. } => {
            refs_of_expr(e, out);
            refs_of_body(rest, out);
        }
        Body::If {
            cond,
            then_br,
            else_br,
            rest,
            ..
        } => {
            refs_of_expr(cond, out);
            refs_of_body(then_br, out);
            refs_of_body(else_br, out);
            refs_of_body(rest, out);
        }
        Body::Loop {
            cond, body, rest, ..
        } => {
            refs_of_expr(cond, out);
            refs_of_body(body, out);
            refs_of_body(rest, out);
        }
        Body::LetFun { fun, rest, .. } => {
            refs_of_body(&fun.body, out);
            refs_of_body(rest, out);
        }
    }
}

impl DepGraph {
    /// Builds the graph for one SSA program snapshot.
    pub fn build(ir: &IrProgram) -> DepGraph {
        let mut units: Vec<UnitNode> = Vec::new();
        let mut unit_refs: Vec<BTreeSet<String>> = Vec::new();
        // name → unit indices answering to it (a method name can resolve
        // to several classes' methods; all become deps).
        let mut resolve: HashMap<String, Vec<usize>> = HashMap::new();

        let exported: BTreeSet<&str> = ir.exports.iter().map(|s| s.as_str()).collect();

        #[allow(clippy::too_many_arguments)]
        let push = |units: &mut Vec<UnitNode>,
                    unit_refs: &mut Vec<BTreeSet<String>>,
                    resolve: &mut HashMap<String, Vec<usize>>,
                    name: String,
                    keys: Vec<String>,
                    body_hash: u64,
                    iface_hash: u64,
                    transparent: bool,
                    span_lo: u32,
                    exported: bool,
                    refs: BTreeSet<String>| {
            let idx = units.len();
            units.push(UnitNode {
                name,
                body_hash,
                iface_hash,
                transparent,
                deps: Vec::new(),
                span_lo,
                exported,
            });
            unit_refs.push(refs);
            for k in keys {
                resolve.entry(k).or_default().push(idx);
            }
        };

        for f in &ir.funs {
            let mut refs = BTreeSet::new();
            refs_of_body(&f.body, &mut refs);
            push(
                &mut units,
                &mut unit_refs,
                &mut resolve,
                format!("fun:{}", f.name),
                vec![f.name.to_string()],
                hash_str(&[&format!("{:?}{:?}", f.params, f.body)]),
                hash_str(&[&format!("{:?}", f.sigs)]),
                f.sigs.is_empty(),
                f.span.lo,
                exported.contains(f.name.as_str()),
                refs,
            );
        }
        for c in &ir.classes {
            let cname = c.decl.name.to_string();
            let class_exported = exported.contains(cname.as_str());
            if let Some(ctor) = &c.ctor {
                let mut refs = BTreeSet::new();
                refs_of_body(&ctor.body, &mut refs);
                push(
                    &mut units,
                    &mut unit_refs,
                    &mut resolve,
                    format!("ctor:{cname}"),
                    vec![format!("new:{cname}")],
                    hash_str(&[&format!("{:?}{:?}", ctor.params, ctor.body)]),
                    hash_str(&[&format!("{:?}", ctor.params)]),
                    false,
                    ctor.span.lo,
                    class_exported,
                    refs,
                );
            }
            for m in &c.methods {
                let mut refs = BTreeSet::new();
                if let Some(body) = &m.body {
                    refs_of_body(body, &mut refs);
                }
                push(
                    &mut units,
                    &mut unit_refs,
                    &mut resolve,
                    format!("method:{cname}.{}", m.name),
                    vec![m.name.to_string()],
                    hash_str(&[&format!("{:?}", m.body)]),
                    hash_str(&[&format!("{:?}{:?}", m.recv, m.sig)]),
                    false,
                    m.span.lo,
                    class_exported,
                    refs,
                );
            }
        }
        {
            let mut refs = BTreeSet::new();
            refs_of_body(&ir.top, &mut refs);
            push(
                &mut units,
                &mut unit_refs,
                &mut resolve,
                "top".to_string(),
                vec![],
                hash_str(&[&format!("{:?}", ir.top)]),
                0,
                false,
                u32::MAX,
                false,
                refs,
            );
        }

        // Resolve references to edges.
        for (i, refs) in unit_refs.iter().enumerate() {
            let mut deps: BTreeSet<usize> = BTreeSet::new();
            for r in refs {
                if let Some(targets) = resolve.get(r) {
                    for &t in targets {
                        if t != i {
                            deps.insert(t);
                        }
                    }
                }
            }
            units[i].deps = deps.into_iter().collect();
        }

        let globals_hash = hash_str(&[&format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            ir.aliases,
            ir.quals,
            ir.enums,
            ir.interfaces,
            ir.declares,
            ir.classes
                .iter()
                .map(|c| format!("{:?}", c.decl))
                .collect::<Vec<_>>(),
        )]);
        let program_hash = hash_raw(&format!("{ir:?}"));
        let mut graph = DepGraph {
            units,
            globals_hash,
            program_hash,
            input_hashes: Vec::new(),
        };
        graph.input_hashes = (0..graph.units.len())
            .map(|i| graph.check_input_hash(i))
            .collect();
        graph
    }

    /// The unit's full check input: its own body and interface, its
    /// dependencies' interfaces, the bodies of reachable transparent
    /// (unannotated) functions, and the global declaration hash.
    pub fn check_input_hash(&self, unit: usize) -> u64 {
        let mut h = DefaultHasher::new();
        h.write_u64(self.globals_hash);
        let mut visited = vec![false; self.units.len()];
        let mut stack = vec![(unit, true)];
        // Deterministic traversal: stack of (unit, include_body). Only
        // units whose *body* is checked here expose their dependencies:
        // an annotated dep contributes its interface and stops the walk
        // (its body is its own unit's problem), while a transparent dep
        // is expanded — its body is generated inline at this unit's call
        // sites, so its own deps matter too. This bounds the walk to the
        // direct deps plus the transparent closure.
        while let Some((i, with_body)) = stack.pop() {
            if visited[i] {
                continue;
            }
            visited[i] = true;
            let u = &self.units[i];
            h.write_u64(u.iface_hash);
            if with_body {
                h.write_u64(u.body_hash);
                for &d in &u.deps {
                    // Every pusher computes the same `with_body` for a
                    // given node, so the first visit is authoritative.
                    if !visited[d] {
                        stack.push((d, self.units[d].transparent));
                    }
                }
            }
        }
        h.finish()
    }

    /// A fingerprint of the file's *export surface* — everything another
    /// file can observe of this one through `import`:
    ///
    /// * each exported unit's `iface_hash` (and, for transparent
    ///   functions whose bodies are inlined at their call sites, the
    ///   `body_hash` too),
    /// * the global declaration hash (type aliases, interfaces, enums,
    ///   ambient declares, qualifiers, class shapes — all of which feed
    ///   the merged program's class table and qualifier mining
    ///   regardless of export markers).
    ///
    /// The workspace keys its cross-file dependency edges on this value:
    /// an importer is flagged dirty exactly when a dependency's export
    /// surface changed, so a non-exported body edit never dirties
    /// importers while an exported-signature edit dirties them all.
    /// Built per *file* (not per merged program) by the workspace layer.
    pub fn export_surface(&self) -> u64 {
        let mut h = DefaultHasher::new();
        h.write_u64(self.globals_hash);
        for u in &self.units {
            if !u.exported {
                continue;
            }
            h.write(u.name.as_bytes());
            h.write_u64(u.iface_hash);
            if u.transparent {
                h.write_u64(u.body_hash);
            }
        }
        h.finish()
    }

    /// Names of units whose check inputs changed relative to `prev`
    /// (including units that did not exist before). Removed units do not
    /// appear — their constraints simply vanish from the new run.
    pub fn dirty_against(&self, prev: &DepGraph) -> Vec<String> {
        let prev_by_name: HashMap<&str, usize> = prev
            .units
            .iter()
            .enumerate()
            .map(|(i, u)| (u.name.as_str(), i))
            .collect();
        let mut dirty = Vec::new();
        for (i, u) in self.units.iter().enumerate() {
            match prev_by_name.get(u.name.as_str()) {
                Some(&j) => {
                    // Both sides memoized at build time: the diff is
                    // O(units) per edit.
                    if self.input_hashes[i] != prev.input_hashes[j] {
                        dirty.push(u.name.clone());
                    }
                }
                None => dirty.push(u.name.clone()),
            }
        }
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(src: &str) -> DepGraph {
        let prog = rsc_syntax::parse_program(src).expect("parse");
        let ir = rsc_ssa::transform_program(&prog).expect("ssa");
        DepGraph::build(&ir)
    }

    const BASE: &str = r#"
        function inc(x: number): number { return x + 1; }
        function twice(x: number): number { return inc(inc(x)); }
        function lone(x: number): number { return x; }
    "#;

    #[test]
    fn body_edit_dirties_only_the_editee() {
        let g1 = graph(BASE);
        let g2 = graph(&BASE.replace("return x + 1;", "return x + 2;"));
        let dirty = g2.dirty_against(&g1);
        assert_eq!(dirty, vec!["fun:inc".to_string()]);
    }

    #[test]
    fn signature_edit_dirties_callers() {
        let g1 = graph(BASE);
        let g2 = graph(&BASE.replace(
            "function inc(x: number): number",
            "function inc(x: number): {v: number | x < v}",
        ));
        let dirty = g2.dirty_against(&g1);
        assert!(dirty.contains(&"fun:inc".to_string()), "{dirty:?}");
        assert!(dirty.contains(&"fun:twice".to_string()), "{dirty:?}");
        assert!(!dirty.contains(&"fun:lone".to_string()), "{dirty:?}");
    }

    #[test]
    fn call_edges_resolve() {
        let g = graph(BASE);
        let twice = g.units.iter().position(|u| u.name == "fun:twice").unwrap();
        let inc = g.units.iter().position(|u| u.name == "fun:inc").unwrap();
        assert!(g.units[twice].deps.contains(&inc));
    }

    #[test]
    fn comment_only_edit_dirties_nothing() {
        // A comment insertion shifts every span but changes no check
        // input: the dirty report must be empty (fingerprints re-solve
        // nothing, and blame lines come from the current run)…
        let g1 = graph(BASE);
        let g2 = graph(&format!("// shifted\n\n{BASE}"));
        assert_eq!(g2.dirty_against(&g1), Vec::<String>::new());
        // …while the raw fast-path hash still sees the shift (serving
        // the previous result verbatim would report stale lines).
        assert_ne!(g1.program_hash, g2.program_hash);
    }

    const LIB: &str = r#"
        export function step(x: number): number { return x + 1; }
        function helper(x: number): number { return x - 1; }
    "#;

    #[test]
    fn export_surface_ignores_private_bodies() {
        let base = graph(LIB).export_surface();
        // Editing a non-exported body leaves the surface untouched…
        let private_edit = graph(&LIB.replace("return x - 1;", "return x - 2;"));
        assert_eq!(base, private_edit.export_surface());
        // …and so does editing an exported *body* behind an annotation…
        let body_edit = graph(&LIB.replace("return x + 1;", "return x + 2;"));
        assert_eq!(base, body_edit.export_surface());
        // …but an exported-signature edit changes it.
        let sig_edit = graph(&LIB.replace(
            "export function step(x: number): number",
            "export function step(x: number): {v: number | x < v}",
        ));
        assert_ne!(base, sig_edit.export_surface());
    }

    #[test]
    fn export_surface_sees_transparent_export_bodies() {
        // An exported *unannotated* function's body is inlined at its
        // call sites, so it is part of the surface.
        let src = "export function f(x) { return x + 1; }";
        let a = graph(src).export_surface();
        let b = graph(&src.replace("x + 1", "x + 2")).export_surface();
        assert_ne!(a, b);
    }

    #[test]
    fn units_carry_spans_and_export_flags() {
        let g = graph(LIB);
        let step = g.units.iter().find(|u| u.name == "fun:step").unwrap();
        let helper = g.units.iter().find(|u| u.name == "fun:helper").unwrap();
        assert!(step.exported && !helper.exported);
        assert!(step.span_lo < helper.span_lo);
        assert_eq!(g.units.last().unwrap().span_lo, u32::MAX);
    }

    #[test]
    fn identical_programs_share_the_program_hash() {
        assert_eq!(graph(BASE).program_hash, graph(BASE).program_hash);
        assert_ne!(
            graph(BASE).program_hash,
            graph(&BASE.replace("x + 1", "x + 3")).program_hash
        );
    }
}
