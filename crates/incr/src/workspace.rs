//! The multi-file workspace model: per-URI document sessions over one
//! shared VC cache, `import`/`export` resolution, and the cross-file
//! dependency edges that make editor workloads incremental across
//! files.
//!
//! # Why this layer exists
//!
//! A [`CheckSession`] retains verdicts for exactly one evolving program
//! text. An editor, however, juggles *documents*: switching from `a.ts`
//! to `b.ts` and back must not throw away what was proved about either
//! (the PR-4 server owned a single session, so every document switch
//! re-checked cold — the bug this module fixes). A [`Workspace`] owns
//! one [`CheckSession`] per URI/path, all sharing one
//! [`VcCache`](rsc_smt::VcCache) (sound: cache keys are canonical VC
//! fingerprints, independent of which document produced them).
//!
//! # Modules, merging and qualification
//!
//! A document's check unit is its *import closure*: `import {a} from
//! "./mod"` declarations are resolved relative to the importing file
//! (trying the specifier verbatim, then with `.rsc` and `.ts`
//! appended), the closure is loaded — open documents override the disk
//! (editor overlays) — and topologically ordered (dependencies first).
//! The closure's texts are concatenated into a [`Merged`] region map,
//! and its ASTs are **module-qualified**: each file's top-level
//! declarations are α-renamed to `m{id}$name` (the id is a stable hash
//! of the file's name — [`rsc_syntax::module_id`]) and references are
//! rewritten scope-awarely, with spans shifted into the file's region
//! of the merged text (see [`rsc_syntax::qualify`]). The qualified
//! items flow as one program through the ordinary
//! `generate_artifacts`/`solve_artifacts` split.
//!
//! Qualification makes module identity real: two files declaring the
//! same non-exported `function helper` (or the same class name) no
//! longer collide in a shared global namespace, referencing another
//! module's name *without importing it* is a spanned diagnostic at the
//! use site instead of accidental capture, and an import resolves to
//! exactly the exporter's qualified declaration. Checking a workspace
//! root is equivalent to a cold check of the qualified merged program
//! ([`qualified_program`]); a single-file closure skips qualification
//! entirely and stays *byte-identical* to checking the document text.
//! Import cycles and imports of names the target never exports are
//! real diagnostics, not silent misbehavior.
//!
//! Mangled names never reach the user: [`Merged::localize`] and the
//! serve layer demangle every rendered message, note and label back to
//! source names, and `dirty_own` unit names are demangled at the
//! workspace boundary. Module ids depend only on file names, so
//! retained bundle fingerprints (which include symbol names) survive
//! adding an unrelated module to a closure — untouched modules re-solve
//! zero bundles.
//!
//! A [`Merged`] value remembers where each file landed in the
//! concatenation, so diagnostics (whose spans refer to the merged text)
//! can be attributed back to their owning file and rebased to
//! file-local positions — including cross-file secondary labels, which
//! LSP clients render via `relatedInformation` against the right URI.
//!
//! # Cross-file dependency edges
//!
//! Each closure file is fingerprinted by its
//! [`DepGraph::export_surface`] — the interface hashes of its exported
//! units plus its global declarations. The workspace records, per
//! document, the surface of every dependency at its last check; when a
//! dependency's surface changes the importer is reported in
//! `deps_changed` and its own dirty units (callers of the changed
//! export) in `dirty_own`. A non-exported body edit in `a.ts` leaves
//! `a`'s surface untouched, so [`Workspace::update`] *skips* the
//! importer re-check entirely (reported as `importers_skipped` in the
//! edited document's [`IncrStats`]) — safe because nothing an importer
//! can observe changed; an exported-signature edit dirties exactly the
//! importing units and re-checks them.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::Hasher;
use std::sync::Arc;
use std::time::Instant;

use rsc_core::{CheckResult, CheckStats, CheckerOptions, Diagnostic};
use rsc_smt::VcCache;
use rsc_syntax::ast::Program;
use rsc_syntax::qualify::{self, ModuleEnv};
use rsc_syntax::{module_id, Span};

use crate::graph::DepGraph;
use crate::session::{CheckSession, IncrStats, SessionOutcome};

// ------------------------------------------------------------ resolution ---

/// An error raised while resolving a document's import closure: a
/// missing module, an import cycle, a name the target does not export,
/// or a parse/SSA failure inside a dependency. The span is local to
/// `file`'s own text.
#[derive(Clone, Debug)]
pub struct WorkspaceError {
    /// The file the error is attributed to.
    pub file: String,
    /// Span within `file`'s text.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

/// One import edge after resolution.
#[derive(Clone, Debug)]
pub struct ResolvedImport {
    /// The resolved target file (a workspace key).
    pub target: String,
    /// Span of the import declaration in the importer.
    pub span: Span,
}

/// One loaded file of an import closure.
#[derive(Clone, Debug)]
pub struct ModuleFile {
    /// Canonical name (the workspace key: a URI or path).
    pub name: String,
    /// The file's text.
    pub text: String,
    /// The file's parsed program (shared with the resolver's facts
    /// memo; qualification clones and renames its items).
    pub program: Arc<Program>,
    /// Resolved imports, in declaration order (parallel to
    /// `program.imports`).
    pub imports: Vec<ResolvedImport>,
    /// The file's export surface fingerprint
    /// ([`DepGraph::export_surface`] of the file checked alone).
    pub surface: u64,
    /// The names the file exports.
    pub exports: BTreeSet<String>,
}

/// True when `spec` already names a file extension the resolver knows.
fn has_known_ext(spec: &str) -> bool {
    spec.ends_with(".rsc") || spec.ends_with(".ts")
}

/// Joins a module specifier onto the importing file's directory,
/// folding `.` and `..` segments. Works uniformly on plain paths and
/// URI-shaped names (`file:///w/a.rsc` + `./b` → `file:///w/b.rsc`).
fn join_spec(importer: &str, spec: &str) -> String {
    let base = importer.rsplit_once('/').map(|(d, _)| d).unwrap_or("");
    let mut segs: Vec<&str> = if base.is_empty() {
        Vec::new()
    } else {
        base.split('/').collect()
    };
    for part in spec.split('/') {
        match part {
            "" | "." => {}
            ".." => {
                // Never pop through a URI authority/scheme segment.
                if segs
                    .last()
                    .is_some_and(|s| !s.is_empty() && !s.ends_with(':'))
                {
                    segs.pop();
                }
            }
            p => segs.push(p),
        }
    }
    segs.join("/")
}

/// The candidate file names a specifier can resolve to, in probe order.
fn candidates(importer: &str, spec: &str) -> Vec<String> {
    let joined = join_spec(importer, spec);
    if has_known_ext(&joined) {
        vec![joined]
    } else {
        vec![
            joined.clone(),
            format!("{joined}.rsc"),
            format!("{joined}.ts"),
        ]
    }
}

/// What resolution needs from one parsed file: its export surface,
/// export list, and import declarations. Memoized per file name keyed
/// by the text hash it was computed from, so unchanged closure files
/// are not re-parsed (or SSA-transformed, or graph-built) on every
/// keystroke of every document.
#[derive(Clone, Debug)]
struct FileFacts {
    surface: u64,
    exports: BTreeSet<String>,
    program: Arc<Program>,
}

/// Per-file-name memo of [`FileFacts`], with the hash of the text they
/// were derived from. One entry per file name (the latest text wins),
/// so the cache is bounded by the number of files ever seen.
type FactsCache = HashMap<String, (u64, FileFacts)>;

fn text_hash(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    h.write(s.as_bytes());
    h.finish()
}

struct Resolver<'a> {
    lookup: &'a mut dyn FnMut(&str) -> Option<String>,
    facts: &'a mut FactsCache,
    /// Memoized loads, so overlay/disk are consulted once per file.
    loaded: HashMap<String, Option<String>>,
    /// Post-order output: dependencies strictly before importers.
    order: Vec<ModuleFile>,
    done: BTreeSet<String>,
    /// DFS stack, for cycle reporting.
    stack: Vec<String>,
}

impl Resolver<'_> {
    fn load(&mut self, name: &str) -> Option<String> {
        if let Some(t) = self.loaded.get(name) {
            return t.clone();
        }
        let t = (self.lookup)(name);
        self.loaded.insert(name.to_string(), t.clone());
        t
    }

    fn visit(&mut self, name: &str) -> Result<(), WorkspaceError> {
        let text = self.load(name).ok_or_else(|| WorkspaceError {
            file: name.to_string(),
            span: Span::dummy(),
            message: format!("cannot read module `{name}`"),
        })?;
        let err = |span, message| WorkspaceError {
            file: name.to_string(),
            span,
            message,
        };
        let hash = text_hash(&text);
        let facts = match self.facts.get(name) {
            Some((h, f)) if *h == hash => f.clone(),
            _ => {
                let prog = rsc_syntax::parse_program(&text).map_err(|e| err(e.span, e.message))?;
                let ir = rsc_ssa::transform_program(&prog).map_err(|e| err(e.span, e.message))?;
                let f = FileFacts {
                    surface: DepGraph::build(&ir).export_surface(),
                    exports: prog.exports.iter().map(|(n, _)| n.to_string()).collect(),
                    program: Arc::new(prog),
                };
                self.facts.insert(name.to_string(), (hash, f.clone()));
                f
            }
        };

        self.stack.push(name.to_string());
        let mut imports = Vec::new();
        for imp in &facts.program.imports {
            let target = candidates(name, &imp.from)
                .into_iter()
                .find(|c| self.load(c).is_some())
                .ok_or_else(|| {
                    err(
                        imp.span,
                        format!("cannot resolve import \"{}\" from `{name}`", imp.from),
                    )
                })?;
            if let Some(at) = self.stack.iter().position(|f| *f == target) {
                let mut cycle: Vec<&str> = self.stack[at..].iter().map(String::as_str).collect();
                cycle.push(&target);
                return Err(err(
                    imp.span,
                    format!("import cycle: {}", cycle.join(" → ")),
                ));
            }
            if !self.done.contains(&target) {
                self.visit(&target)?;
            }
            // The target is resolved now; validate the imported names
            // against its export list.
            let target_exports = &self
                .order
                .iter()
                .find(|f| f.name == target)
                .expect("visited module is in post-order")
                .exports;
            for (imported, nspan) in &imp.names {
                if !target_exports.contains(imported.as_str()) {
                    return Err(err(
                        *nspan,
                        format!("module `{target}` does not export `{imported}`"),
                    ));
                }
            }
            imports.push(ResolvedImport {
                target,
                span: imp.span,
            });
        }
        self.stack.pop();
        self.done.insert(name.to_string());
        self.order.push(ModuleFile {
            name: name.to_string(),
            text,
            program: facts.program,
            imports,
            surface: facts.surface,
            exports: facts.exports,
        });
        Ok(())
    }
}

/// Resolves the import closure of `root`, loading files through
/// `lookup` (which should consult editor overlays before the disk).
/// Returns the closure in topological (dependencies-first) order with
/// `root` last, or the first resolution error encountered.
pub fn resolve_closure(
    root: &str,
    lookup: &mut dyn FnMut(&str) -> Option<String>,
) -> Result<Vec<ModuleFile>, WorkspaceError> {
    resolve_closure_cached(root, lookup, &mut FactsCache::new())
}

/// [`resolve_closure`] against a persistent per-file facts memo (the
/// workspace's, surviving across checks).
fn resolve_closure_cached(
    root: &str,
    lookup: &mut dyn FnMut(&str) -> Option<String>,
    facts: &mut FactsCache,
) -> Result<Vec<ModuleFile>, WorkspaceError> {
    let mut r = Resolver {
        lookup,
        facts,
        loaded: HashMap::new(),
        order: Vec::new(),
        done: BTreeSet::new(),
        stack: Vec::new(),
    };
    r.visit(root)?;
    Ok(r.order)
}

// --------------------------------------------------------------- merging ---

/// One file's region inside a merged program text.
#[derive(Clone, Debug)]
pub struct MergedFile {
    /// The file's workspace key (URI or path).
    pub name: String,
    /// The file's own text, exactly as merged (a trailing newline is
    /// appended if the file lacked one).
    pub text: String,
    /// Byte offset of the region start in the merged text.
    pub start: u32,
    /// Number of lines strictly before the region.
    pub line_offset: u32,
}

/// A multi-file program merged by concatenation, with enough structure
/// to map merged spans back to (file, local span).
#[derive(Clone, Debug, Default)]
pub struct Merged {
    /// The concatenated program text (what the session actually checks).
    pub text: String,
    /// Per-file regions, in concatenation (topological) order.
    pub files: Vec<MergedFile>,
    /// Index of the root document's region (always the last one).
    pub root: usize,
}

impl Merged {
    /// Concatenates a resolved closure. Files are joined in the given
    /// (topological) order, each padded to end with exactly its own
    /// text plus a newline terminator when missing — so byte offsets of
    /// later files are stable under edits that don't change earlier
    /// files' lengths.
    pub fn build(files: &[ModuleFile]) -> Merged {
        let mut text = String::new();
        let mut lines = 0u32;
        let mut out = Vec::with_capacity(files.len());
        for f in files {
            let start = text.len() as u32;
            let mut t = f.text.clone();
            if !t.ends_with('\n') {
                t.push('\n');
            }
            text.push_str(&t);
            out.push(MergedFile {
                name: f.name.clone(),
                text: t,
                start,
                line_offset: lines,
            });
            lines += out
                .last()
                .expect("just pushed")
                .text
                .bytes()
                .filter(|&b| b == b'\n')
                .count() as u32;
        }
        Merged {
            text,
            root: out.len().saturating_sub(1),
            files: out,
        }
    }

    /// A degenerate single-file merge (used when resolution fails and
    /// the document must still publish something for its own URI).
    pub fn single(name: &str, text: &str) -> Merged {
        Merged::build(&[ModuleFile {
            name: name.to_string(),
            text: text.to_string(),
            program: Arc::new(Program::default()),
            imports: Vec::new(),
            surface: 0,
            exports: BTreeSet::new(),
        }])
    }

    /// The module ids of the closure files, derived from their names
    /// (the same ids [`qualified_program`] renames with).
    pub fn module_ids(&self) -> Vec<String> {
        self.files.iter().map(|f| module_id(&f.name)).collect()
    }

    /// Strips module-qualification prefixes from rendered text, so
    /// user-visible messages always show source names. The identity for
    /// single-file closures (which are never qualified).
    pub fn demangle(&self, text: &str) -> String {
        if self.files.len() <= 1 {
            return text.to_string();
        }
        qualify::demangle(text, &self.module_ids())
    }

    /// Index of the file owning a merged byte offset (clamped to the
    /// last region for out-of-range offsets, which also routes the
    /// synthetic `top` unit's `u32::MAX` marker to the root document).
    pub fn owner(&self, offset: u32) -> usize {
        match self.files.binary_search_by_key(&offset, |f| f.start) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Rebases a merged span into its owning file's local coordinates.
    pub fn local_span(&self, span: Span) -> (usize, Span) {
        let fi = self.owner(span.lo);
        let f = &self.files[fi];
        let end = f.start + f.text.len() as u32;
        (
            fi,
            Span {
                lo: span.lo.saturating_sub(f.start),
                hi: span.hi.clamp(f.start, end) - f.start,
                line: span.line.saturating_sub(f.line_offset).max(1),
            },
        )
    }

    /// Attributes a diagnostic to its owning file and rebases every
    /// span to that file's local coordinates. Secondary labels that
    /// live in *other* files cannot be expressed as local spans, so
    /// they are folded into notes carrying an explicit
    /// `file:line` location (the LSP path keeps them as true
    /// cross-file `relatedInformation` instead — see `serve`).
    pub fn localize(&self, d: &Diagnostic) -> (usize, Diagnostic) {
        if d.span.is_dummy() {
            // Global (program-wide) diagnostics belong to the root.
            let mut out = d.clone();
            out.message = self.demangle(&out.message);
            out.notes = out.notes.iter().map(|n| self.demangle(n)).collect();
            return (self.root, out);
        }
        let (fi, span) = self.local_span(d.span);
        let mut out = d.clone();
        out.message = self.demangle(&out.message);
        out.notes = out.notes.iter().map(|n| self.demangle(n)).collect();
        out.span = span;
        out.secondary.clear();
        for (sspan, label) in &d.secondary {
            let (sfi, local) = self.local_span(*sspan);
            if sfi == fi {
                out.secondary.push((local, self.demangle(label)));
            } else {
                out.notes.push(format!(
                    "see also {}:{}: {}",
                    self.files[sfi].name,
                    local.line,
                    self.demangle(label)
                ));
            }
        }
        (fi, out)
    }
}

// --------------------------------------------------------- qualification ---

/// Builds the module-qualified program of a resolved closure: each
/// file's top-level declarations are α-renamed into its module
/// namespace (`m{id}$name`), references are rewritten scope-awarely —
/// imports resolve to the exporter's qualified declaration, a file's
/// own declarations shadow same-named imports — and every span is
/// shifted into the file's region of `merged`'s text, so diagnostics
/// over the qualified program localize exactly like diagnostics over
/// the concatenated text. Single-file closures are returned unqualified
/// and unshifted (the identity).
///
/// Errors when a file references a name declared in *another* closure
/// file without importing it — the cross-module-capture case the
/// pre-qualification merge silently accepted. The error is blamed at
/// the use site, in the referencing file's own coordinates.
pub fn qualified_program(merged: &Merged, files: &[ModuleFile]) -> Result<Program, WorkspaceError> {
    if files.len() <= 1 {
        return Ok(files
            .first()
            .map(|f| (*f.program).clone())
            .unwrap_or_default());
    }
    let ids = merged.module_ids();
    let decls: Vec<Vec<qualify::Sym>> = files
        .iter()
        .map(|f| qualify::top_level_decls(&f.program))
        .collect();
    let mut items = Vec::new();
    for (i, f) in files.iter().enumerate() {
        let mut env = ModuleEnv::default();
        // Imports first: each imported name resolves to the exporter's
        // qualified declaration…
        for (imp, resolved) in f.program.imports.iter().zip(&f.imports) {
            let Some(t) = files.iter().position(|g| g.name == resolved.target) else {
                continue;
            };
            for (name, _) in &imp.names {
                let q = qualify::qualified_name(&ids[t], name.as_str());
                env.renames.insert(name.clone(), qualify::Sym::from(q));
            }
        }
        // …then the file's own declarations, which shadow same-named
        // imports (import-then-shadow keeps the local meaning).
        for n in &decls[i] {
            let q = qualify::qualified_name(&ids[i], n.as_str());
            env.renames.insert(n.clone(), qualify::Sym::from(q));
        }
        // Names declared only in other closure files are foreign here:
        // referencing one without an import is an error at the use site.
        for (j, other) in decls.iter().enumerate() {
            if j == i {
                continue;
            }
            for n in other {
                if !env.renames.contains_key(n) {
                    env.foreign
                        .entry(n.clone())
                        .or_insert_with(|| files[j].name.clone());
                }
            }
        }
        let region = &merged.files[i];
        let qualified =
            qualify::qualify_program(&f.program, &env, region.start, region.line_offset).map_err(
                |e| WorkspaceError {
                    file: f.name.clone(),
                    span: e.span,
                    message: format!(
                "cannot find name `{}` in this module; `{}` is declared in `{}` but not imported",
                e.name, e.name, e.from
            ),
                },
            )?;
        items.extend(qualified);
    }
    Ok(Program {
        items,
        imports: Vec::new(),
        exports: Vec::new(),
    })
}

// ------------------------------------------------------------- documents ---

/// The outcome of checking one document's import closure.
#[derive(Clone, Debug)]
pub struct DocReport {
    /// The document's workspace key.
    pub uri: String,
    /// The session outcome over the merged program (byte-identical to a
    /// cold check of [`DocReport::merged`]'s text).
    pub outcome: SessionOutcome,
    /// The merged program and its file map.
    pub merged: Merged,
    /// Dependencies whose export surface changed since this document's
    /// previous check (empty on first checks and when only non-exported
    /// code changed).
    pub deps_changed: Vec<String>,
    /// The dirty units that live in this document's own file (callers
    /// of a changed cross-file export land here; a pure dependency-body
    /// edit leaves it empty).
    pub dirty_own: Vec<String>,
}

impl DocReport {
    /// Diagnostics grouped by owning file index, one (possibly empty)
    /// entry per closure file in merge order — publishers use the empty
    /// entries to clear stale diagnostics. Errors come first within a
    /// file, then lint warnings, so consumers that only look at leading
    /// entries see failures before style findings.
    pub fn diags_by_file(&self) -> Vec<(usize, Vec<&Diagnostic>)> {
        let mut groups: Vec<(usize, Vec<&Diagnostic>)> = (0..self.merged.files.len())
            .map(|i| (i, Vec::new()))
            .collect();
        for d in self
            .outcome
            .result
            .diagnostics
            .iter()
            .chain(&self.outcome.result.lints)
        {
            let fi = if d.span.is_dummy() {
                self.merged.root
            } else {
                self.merged.owner(d.span.lo)
            };
            groups[fi].1.push(d);
        }
        groups
    }
}

struct Doc {
    session: CheckSession,
    /// The document's own text (the editor overlay).
    text: String,
    /// Names of the closure files at the last successful resolution,
    /// excluding the document itself.
    closure: BTreeSet<String>,
    /// Export surface of every closure file at the last check.
    surfaces: BTreeMap<String, u64>,
    last: Option<DocReport>,
}

/// A set of per-URI document sessions over one shared VC cache.
///
/// Each document retains its own bundle verdicts (switching between
/// documents never re-checks cold — the PR-4 single-session server did)
/// and is checked as its full import closure, with open documents
/// overriding the disk. Editing a document re-checks it *and* every
/// open document whose closure contains it.
pub struct Workspace {
    opts: CheckerOptions,
    cache: Arc<VcCache>,
    docs: BTreeMap<String, Doc>,
    /// Per-file parse/SSA/graph facts memo for closure resolution.
    facts: FactsCache,
    /// Directory of the persistent VC/bundle disk tier (`--vc-cache`),
    /// threaded into every document session.
    disk_dir: Option<std::path::PathBuf>,
}

impl Workspace {
    /// An empty workspace checking with `opts`.
    pub fn new(opts: CheckerOptions) -> Workspace {
        Workspace::with_cache(
            opts,
            VcCache::shared_with_capacity(opts.effective_cache_capacity()),
        )
    }

    /// An empty workspace over a caller-supplied VC cache. Batch
    /// drivers (`rsc check --recursive`) run one workspace per worker
    /// thread, all sharing one cache: verdicts are pure functions of
    /// the canonical VC, so roots with overlapping closures solve each
    /// shared bundle's queries once fleet-wide.
    pub fn with_cache(opts: CheckerOptions, cache: Arc<VcCache>) -> Workspace {
        Workspace {
            opts,
            cache,
            docs: BTreeMap::new(),
            facts: FactsCache::new(),
            disk_dir: None,
        }
    }

    /// Persists VC and bundle verdicts to `dir` across process restarts
    /// (builder-style; the `--vc-cache DIR` tier). Every document
    /// session opened after this call loads warm verdicts from `dir`
    /// and appends its new proofs — see [`CheckSession::persisting_to`].
    pub fn persisting_to(mut self, dir: impl Into<std::path::PathBuf>) -> Workspace {
        self.disk_dir = Some(dir.into());
        self
    }

    /// The workspace's options.
    pub fn options(&self) -> CheckerOptions {
        self.opts
    }

    /// The shared cross-document VC cache.
    pub fn cache(&self) -> &Arc<VcCache> {
        &self.cache
    }

    /// Number of open documents.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// True when `uri` is an open document.
    pub fn contains(&self, uri: &str) -> bool {
        self.docs.contains_key(uri)
    }

    /// The current overlay text of a document.
    pub fn doc_text(&self, uri: &str) -> Option<&str> {
        self.docs.get(uri).map(|d| d.text.as_str())
    }

    /// The last report of a document.
    pub fn last(&self, uri: &str) -> Option<&DocReport> {
        self.docs.get(uri).and_then(|d| d.last.as_ref())
    }

    /// Drops every document and the shared cache (next checks are cold).
    pub fn reset(&mut self) {
        self.docs.clear();
        self.facts.clear();
        self.cache = VcCache::shared_with_capacity(self.opts.effective_cache_capacity());
    }

    /// Closes a document: its retained verdicts are dropped and its
    /// text no longer overrides the disk for importers. Returns true if
    /// the document existed.
    pub fn close(&mut self, uri: &str) -> bool {
        self.docs.remove(uri).is_some()
    }

    /// Every file the workspace's documents currently depend on
    /// (document keys plus their closures) — the watch loop's poll set.
    pub fn watched_files(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for (k, d) in &self.docs {
            out.insert(k.clone());
            out.extend(d.closure.iter().cloned());
        }
        out
    }

    /// Documents whose import closure contains `file` (excluding `file`
    /// itself when it is a document), in deterministic key order.
    pub fn importers_of(&self, file: &str) -> Vec<String> {
        self.docs
            .iter()
            .filter(|(k, d)| k.as_str() != file && d.closure.contains(file))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Sets (or opens) a document's text and re-checks it, then
    /// re-checks every open document whose closure contains it (their
    /// merged programs embed the new text). Returns the reports in
    /// check order: the edited document first, importers after, sorted
    /// by key.
    ///
    /// An importer's re-check is **skipped entirely** when nothing it
    /// can observe changed: the edit left the document's import
    /// specifiers and export surface exactly as the importer last saw
    /// them (a non-exported body edit). The number of importers skipped
    /// this way is reported in the edited document's
    /// [`IncrStats::importers_skipped`].
    pub fn update(&mut self, uri: &str, text: String) -> Vec<DocReport> {
        // Snapshot the pre-edit import specifiers before the overlay
        // changes; `None` (no valid facts yet) disables skipping.
        let old_specs = self.import_specs(uri);
        self.ensure_doc(uri);
        self.docs.get_mut(uri).expect("just ensured").text = text;
        let (mut report, resolved_ok) = self.check_doc_inner(uri);
        let new_specs = self.import_specs(uri);
        let new_surface = self.file_surface(uri);
        let mut skipped = 0usize;
        let mut importer_reports = Vec::new();
        for imp in self.importers_of(uri) {
            let unchanged = resolved_ok
                && old_specs.is_some()
                && old_specs == new_specs
                && new_surface.is_some()
                && self
                    .docs
                    .get(&imp)
                    .and_then(|d| d.surfaces.get(uri).copied())
                    == new_surface;
            if unchanged {
                skipped += 1;
            } else {
                importer_reports.push(self.check_doc(&imp));
            }
        }
        report.outcome.incr.importers_skipped = skipped;
        if let Some(last) = self.docs.get_mut(uri).and_then(|d| d.last.as_mut()) {
            last.outcome.incr.importers_skipped = skipped;
        }
        let mut reports = vec![report];
        reports.extend(importer_reports);
        reports
    }

    /// The document's current import specifier strings, valid only when
    /// the resolution facts memo was computed from the document's
    /// current overlay text (otherwise `None` — conservatively treated
    /// as "unknown, cannot skip").
    fn import_specs(&self, uri: &str) -> Option<Vec<String>> {
        let doc = self.docs.get(uri)?;
        let (h, facts) = self.facts.get(uri)?;
        if *h != text_hash(&doc.text) {
            return None;
        }
        Some(
            facts
                .program
                .imports
                .iter()
                .map(|i| i.from.clone())
                .collect(),
        )
    }

    /// The document's export surface under the same facts-are-current
    /// guard as [`Workspace::import_specs`].
    fn file_surface(&self, uri: &str) -> Option<u64> {
        let doc = self.docs.get(uri)?;
        let (h, facts) = self.facts.get(uri)?;
        (*h == text_hash(&doc.text)).then_some(facts.surface)
    }

    /// Like [`Workspace::update`], but without re-checking importers —
    /// the batch CLI's entry point, where every root is checked exactly
    /// once in command-line order.
    pub fn check_one(&mut self, uri: &str, text: String) -> DocReport {
        self.ensure_doc(uri);
        self.docs.get_mut(uri).expect("just ensured").text = text;
        self.check_doc(uri)
    }

    /// Re-checks a document against its current overlay and the current
    /// disk state of its dependencies (the watch loop's entry point; an
    /// unchanged closure hits the session fast path). Returns `None`
    /// for unknown documents.
    pub fn recheck(&mut self, uri: &str) -> Option<DocReport> {
        if !self.docs.contains_key(uri) {
            return None;
        }
        Some(self.check_doc(uri))
    }

    fn ensure_doc(&mut self, uri: &str) {
        if !self.docs.contains_key(uri) {
            let mut session = CheckSession::with_cache(self.opts, Arc::clone(&self.cache));
            if let Some(dir) = &self.disk_dir {
                session = session.persisting_to(dir.clone());
            }
            self.docs.insert(
                uri.to_string(),
                Doc {
                    session,
                    text: String::new(),
                    closure: BTreeSet::new(),
                    surfaces: BTreeMap::new(),
                    last: None,
                },
            );
        }
    }

    /// Checks one document's closure through its own session.
    fn check_doc(&mut self, uri: &str) -> DocReport {
        self.check_doc_inner(uri).0
    }

    /// [`Workspace::check_doc`] plus whether resolution *and*
    /// qualification succeeded (the precondition for [`Workspace::update`]
    /// to trust the document's surface and skip importers).
    fn check_doc_inner(&mut self, uri: &str) -> (DocReport, bool) {
        let start = Instant::now();
        let resolved = {
            let _sp = rsc_obs::span!("imports");
            // Editor overlays: open documents override the disk
            // everywhere (borrowed, not cloned — only closure members'
            // texts are copied, into their `ModuleFile`s).
            let docs = &self.docs;
            let mut lookup = |name: &str| -> Option<String> {
                if let Some(d) = docs.get(name) {
                    return Some(d.text.clone());
                }
                let path = disk_path(name)?;
                std::fs::read_to_string(path).ok()
            };
            resolve_closure_cached(uri, &mut lookup, &mut self.facts)
        };
        let doc = self.docs.get_mut(uri).expect("document exists");
        // Resolution and qualification share one error path: both keep
        // the session's retained state for the fix.
        let checked = resolved.and_then(|files| {
            let merged = Merged::build(&files);
            let outcome = if files.len() <= 1 {
                // Single-file closures stay byte-identical to checking
                // the document text (no qualification, no shifting).
                doc.session.check(&merged.text)
            } else {
                doc.session.check_ast(&qualified_program(&merged, &files)?)
            };
            Ok((files, merged, outcome))
        });
        let (report, ok) = match checked {
            Err(e) => {
                // Report the failure on this document (naming the
                // offending file when it is not this one).
                let diag = if e.file == uri {
                    Diagnostic::error(e.message, e.span)
                } else {
                    Diagnostic::error(
                        format!("{} (in `{}` line {})", e.message, e.file, e.span.line),
                        Span::dummy(),
                    )
                };
                let report = DocReport {
                    uri: uri.to_string(),
                    outcome: SessionOutcome {
                        result: CheckResult {
                            diagnostics: vec![diag],
                            lints: Vec::new(),
                            stats: CheckStats::default(),
                            bundle_reports: Vec::new(),
                        },
                        incr: IncrStats {
                            total_micros: start.elapsed().as_micros() as u64,
                            ..IncrStats::default()
                        },
                    },
                    merged: Merged::single(uri, &doc.text),
                    deps_changed: Vec::new(),
                    dirty_own: Vec::new(),
                };
                (report, false)
            }
            Ok((files, merged, outcome)) => {
                // Cross-file edges: which dependencies' export surfaces
                // changed since this document last checked?
                let first_check = doc.surfaces.is_empty();
                let mut deps_changed = Vec::new();
                for f in &files {
                    if f.name == uri {
                        continue;
                    }
                    let changed = match doc.surfaces.get(&f.name) {
                        Some(&old) => old != f.surface,
                        None => !first_check,
                    };
                    if changed {
                        deps_changed.push(f.name.clone());
                    }
                }
                let dirty_own = match doc.session.graph() {
                    Some(g) => outcome
                        .incr
                        .dirty_units
                        .iter()
                        .filter(|name| {
                            g.units
                                .iter()
                                .find(|u| u.name == **name)
                                .is_some_and(|u| merged.owner(u.span_lo) == merged.root)
                        })
                        .map(|name| merged.demangle(name))
                        .collect(),
                    None => Vec::new(),
                };
                doc.closure = files
                    .iter()
                    .filter(|f| f.name != uri)
                    .map(|f| f.name.clone())
                    .collect();
                doc.surfaces = files.iter().map(|f| (f.name.clone(), f.surface)).collect();
                let report = DocReport {
                    uri: uri.to_string(),
                    outcome,
                    merged,
                    deps_changed,
                    dirty_own,
                };
                (report, true)
            }
        };
        doc.last = Some(report.clone());
        (report, ok)
    }
}

/// The on-disk path behind a workspace key: `file://` URIs are
/// stripped, scheme-less keys are used verbatim, and any other scheme
/// (e.g. `untitled:`) has no disk backing.
pub fn disk_path(name: &str) -> Option<&str> {
    if let Some(rest) = name.strip_prefix("file://") {
        return Some(rest);
    }
    if name.contains("://") || name.starts_with("untitled:") || name.starts_with("inline:") {
        return None;
    }
    Some(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_core::{check_program, check_program_ast};

    const LIB: &str = "type nat = {v: number | 0 <= v};\n\
        export function step(x: number): nat {\n\
            if (x < 0) { return 0; }\n\
            return x + 1;\n\
        }\n\
        function helper(y: number): number { return y; }\n";

    const APP: &str = "import {step} from \"./lib\";\n\
        function use(k: number): {v: number | 0 <= v} {\n\
            return step(k);\n\
        }\n";

    fn ws_with(files: &[(&str, &str)]) -> Workspace {
        let mut ws = Workspace::new(CheckerOptions::default());
        for (name, text) in files {
            ws.update(name, text.to_string());
        }
        ws
    }

    fn render(r: &CheckResult) -> String {
        r.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn join_spec_handles_uris_and_paths() {
        assert_eq!(join_spec("file:///w/a.rsc", "./b"), "file:///w/b");
        assert_eq!(join_spec("a.rsc", "./b"), "b");
        assert_eq!(join_spec("/x/y/a.rsc", "../z/b.rsc"), "/x/z/b.rsc");
        assert_eq!(join_spec("file:///w/a.rsc", "../b"), "file:///b");
        // `..` never pops through the scheme.
        assert_eq!(join_spec("file:///a.rsc", "../../b"), "file:///b");
    }

    #[test]
    fn closure_check_equals_the_qualified_merged_program() {
        let mut ws = ws_with(&[("lib.rsc", LIB)]);
        let app_text = APP.replace("./lib", "./lib.rsc");
        let reports = ws.update("app.rsc", app_text.clone());
        let app = &reports[0];
        assert_eq!(app.uri, "app.rsc");
        assert_eq!(app.merged.files.len(), 2);
        assert_eq!(app.merged.files[0].name, "lib.rsc");
        // The workspace check equals a cold check of the
        // module-qualified merged program.
        let mut lookup = |name: &str| match name {
            "lib.rsc" => Some(LIB.to_string()),
            "app.rsc" => Some(app_text.clone()),
            _ => None,
        };
        let files = resolve_closure("app.rsc", &mut lookup).unwrap();
        let merged = Merged::build(&files);
        assert_eq!(merged.text, app.merged.text);
        let prog = qualified_program(&merged, &files).expect("qualifies");
        let cold = check_program_ast(&prog, CheckerOptions::default());
        assert_eq!(render(&app.outcome.result), render(&cold));
        assert_eq!(app.outcome.result.ok(), cold.ok());
        assert!(app.outcome.result.ok(), "{}", render(&app.outcome.result));
    }

    #[test]
    fn single_file_closure_is_byte_identical_to_checking_the_text() {
        let src = "type nat = {v: number | 0 <= v};\n\
            function f(x: number): nat { if (x < 0) { return 0; } return x; }\n";
        let ws = ws_with(&[("solo.rsc", src)]);
        let r = ws.last("solo.rsc").unwrap();
        assert_eq!(r.merged.files.len(), 1);
        // No qualification for single-file closures: the merged text is
        // the document text (newline-terminated) and the cold check of
        // that text renders identically.
        assert_eq!(r.merged.text, src);
        let cold = check_program(src, CheckerOptions::default());
        assert_eq!(render(&r.outcome.result), render(&cold));
    }

    #[test]
    fn same_class_name_in_two_files_checks_cleanly() {
        // Regression for the session-layer "transiently duplicated
        // class name" band-aid this PR removes: two modules declaring
        // the same class name must both check, each against its own
        // definition — real namespacing, not duplicate suppression.
        let a = "export class Box { x : number; constructor(x: number) { this.x = x; } }\n\
            export function mk(v: number): number { return v; }\n";
        let b = "import {mk} from \"./a.rsc\";\n\
            class Box { y : number; constructor(y: number) { this.y = y; } }\n\
            function use(p: Box): number { return mk(p.y); }\n";
        let mut ws = ws_with(&[("a.rsc", a)]);
        let reports = ws.update("b.rsc", b.to_string());
        let r = &reports[0];
        assert_eq!(r.merged.files.len(), 2);
        assert!(r.outcome.result.ok(), "{}", render(&r.outcome.result));
    }

    #[test]
    fn documents_stay_warm_across_switches() {
        // The PR-5 headline bug: two documents, interleaved edits, no
        // cold re-check on switch.
        let a = "type nat = {v: number | 0 <= v};\n\
                 function fa(x: number): nat { if (x < 0) { return 0 - x; } return x + 1; }\n\
                 function ga(x: number): nat { if (x < 0) { return 0; } return x + 2; }\n";
        let b = "type nat = {v: number | 0 <= v};\n\
                 function fb(x: number): nat { if (x < 0) { return 0 - x; } return x + 3; }\n\
                 function gb(x: number): nat { if (x < 0) { return 0; } return x + 4; }\n";
        let mut ws = ws_with(&[("a.rsc", a), ("b.rsc", b)]);
        // Edit a — its other function's bundle must be reused even
        // though b was checked in between.
        let ra = &ws.update("a.rsc", a.replace("x + 1", "x + 10"))[0];
        assert!(ra.outcome.incr.reused > 0, "{:?}", ra.outcome.incr);
        let rb = &ws.update("b.rsc", b.replace("x + 3", "x + 30"))[0];
        assert!(rb.outcome.incr.reused > 0, "{:?}", rb.outcome.incr);
        // Re-sending a's text verbatim hits the fast path.
        let ra2 = &ws.update("a.rsc", a.replace("x + 1", "x + 10"))[0];
        assert!(ra2.outcome.incr.fast_path, "{:?}", ra2.outcome.incr);
    }

    #[test]
    fn dependency_edits_recheck_importers() {
        let mut ws = ws_with(&[("lib.rsc", LIB)]);
        ws.update("app.rsc", APP.replace("./lib", "./lib.rsc"));
        assert_eq!(ws.importers_of("lib.rsc"), vec!["app.rsc".to_string()]);

        // Non-exported body edit: nothing the importer can observe
        // changed (same import specifiers, same export surface), so its
        // re-check is skipped entirely — not run-and-found-clean.
        let reports = ws.update("lib.rsc", LIB.replace("return y;", "return y + 1;"));
        assert_eq!(
            reports.len(),
            1,
            "importer must be skipped: {:?}",
            reports.iter().map(|r| r.uri.clone()).collect::<Vec<_>>()
        );
        assert_eq!(reports[0].outcome.incr.importers_skipped, 1);
        let lib_last = ws.last("lib.rsc").unwrap();
        assert_eq!(lib_last.outcome.incr.importers_skipped, 1);

        // Exported-signature edit: the importer re-checks, its calling
        // unit is dirty (demangled to the source name), and the surface
        // change is attributed to lib.
        let sig_edit = LIB.replace(
            "export function step(x: number): nat {",
            "export function step(x: number): {v: number | 0 <= v && x < v} {",
        );
        let reports = ws.update("lib.rsc", sig_edit);
        assert_eq!(reports.len(), 2, "sig change re-checks the importer");
        assert_eq!(reports[0].outcome.incr.importers_skipped, 0);
        let app = &reports[1];
        assert_eq!(app.deps_changed, vec!["lib.rsc".to_string()]);
        assert!(
            app.dirty_own.contains(&"fun:use".to_string()),
            "{:?}",
            app.dirty_own
        );
    }

    #[test]
    fn import_cycle_is_a_diagnostic() {
        let mut ws = Workspace::new(CheckerOptions::default());
        ws.update(
            "a.rsc",
            "import {f} from \"./b.rsc\";\nexport function g(x: number): number { return f(x); }\n"
                .to_string(),
        );
        let reports = ws.update(
            "b.rsc",
            "import {g} from \"./a.rsc\";\nexport function f(x: number): number { return g(x); }\n"
                .to_string(),
        );
        // Both b's own check and a's re-check see the cycle.
        for r in &reports {
            assert!(!r.outcome.result.ok(), "{}", r.uri);
            let msg = render(&r.outcome.result);
            assert!(msg.contains("import cycle"), "{msg}");
        }
        let a = ws.recheck("a.rsc").unwrap();
        let msg = render(&a.outcome.result);
        assert!(msg.contains("import cycle"), "{msg}");
        assert!(msg.contains("a.rsc → b.rsc → a.rsc"), "{msg}");
    }

    #[test]
    fn missing_export_is_blamed_at_the_import() {
        let mut ws = ws_with(&[("lib.rsc", LIB)]);
        let reports = ws.update(
            "app.rsc",
            "import {helper} from \"./lib.rsc\";\nvar z = helper(1);\n".to_string(),
        );
        let app = &reports[0];
        assert!(!app.outcome.result.ok());
        let msg = render(&app.outcome.result);
        assert!(msg.contains("does not export `helper`"), "{msg}");
        // Blamed at the importer's own line 1 (the name inside braces).
        assert_eq!(app.outcome.result.diagnostics[0].span.line, 1);
    }

    #[test]
    fn unresolvable_import_is_a_diagnostic() {
        let mut ws = Workspace::new(CheckerOptions::default());
        let reports = ws.update(
            "app.rsc",
            "import {x} from \"./nope\";\nvar z = 1;\n".to_string(),
        );
        let msg = render(&reports[0].outcome.result);
        assert!(msg.contains("cannot resolve import"), "{msg}");
        // The fix re-checks cleanly (session state survived).
        let fixed = ws.update("app.rsc", "var z = 1;\n".to_string());
        assert!(fixed[0].outcome.result.ok());
    }

    #[test]
    fn localize_rebases_to_file_coordinates() {
        let mut ws = ws_with(&[("lib.rsc", LIB)]);
        // Break the importer: its diagnostic must land in app.rsc with
        // a file-local line number.
        let bad_app = "import {step} from \"./lib.rsc\";\n\
            function use(k: number): {v: number | 10 <= v} {\n\
                return step(k);\n\
            }\n";
        let reports = ws.update("app.rsc", bad_app.to_string());
        let app = &reports[0];
        assert!(!app.outcome.result.ok());
        let groups = app.diags_by_file();
        let root_diags = &groups[app.merged.root].1;
        assert!(!root_diags.is_empty(), "{}", render(&app.outcome.result));
        for d in root_diags {
            let (fi, local) = app.merged.localize(d);
            assert_eq!(app.merged.files[fi].name, "app.rsc");
            assert!(
                (1..=4).contains(&local.span.line),
                "local line out of file range: {:?}",
                local.span
            );
        }
    }

    #[test]
    fn close_drops_the_overlay() {
        let mut ws = ws_with(&[("a.rsc", "var x = 1;\n")]);
        assert!(ws.contains("a.rsc"));
        assert!(ws.close("a.rsc"));
        assert!(!ws.contains("a.rsc"));
        assert!(!ws.close("a.rsc"));
    }
}
