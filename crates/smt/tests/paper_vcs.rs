//! Integration tests: the solver decides exactly the verification
//! conditions the paper walks through in §2 and §4, plus brute-force
//! property tests for the LIA layer.

use proptest::prelude::*;
use rsc_logic::{BinOp, CmpOp, FunSig, Pred, Sort, SortEnv, Term};
use rsc_smt::{SatResult, Solver};

fn base_env() -> SortEnv {
    let mut env = SortEnv::new();
    env.declare_fun("nullv", FunSig::Fixed(vec![], Sort::Ref));
    env.declare_fun("undefv", FunSig::Fixed(vec![], Sort::Ref));
    env
}

/// §2.1.1: `0 < len(arr) ⇒ (ν = 0 ⇒ 0 ≤ ν < len(arr))` — the head VC.
#[test]
fn head_vc_valid() {
    let mut env = base_env();
    env.bind("arr", Sort::Ref);
    env.bind("v", Sort::Int);
    let len = Term::len_of(Term::var("arr"));
    let mut s = Solver::new();
    assert!(s.is_valid(
        &env,
        &[
            Pred::cmp(CmpOp::Lt, Term::int(0), len.clone()),
            Pred::vv_eq(Term::int(0)),
        ],
        &Pred::and(vec![
            Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
            Pred::cmp(CmpOp::Lt, Term::vv(), len),
        ]),
    ));
}

/// The same VC without the guard is invalid (the array may be empty).
#[test]
fn head_vc_unguarded_invalid() {
    let mut env = base_env();
    env.bind("arr", Sort::Ref);
    env.bind("v", Sort::Int);
    let len = Term::len_of(Term::var("arr"));
    let mut s = Solver::new();
    assert!(!s.is_valid(
        &env,
        &[Pred::vv_eq(Term::int(0))],
        &Pred::cmp(CmpOp::Lt, Term::vv(), len),
    ));
}

/// §2.1.2: the dead-code assertion environments Γ₁ and Γ₂ are
/// inconsistent: `len(arguments) = 2 ∧ len(arguments) = 3 ⊢ false`.
#[test]
fn overload_dead_code_vcs() {
    let mut env = base_env();
    env.bind("arguments", Sort::Ref);
    let len = Term::len_of(Term::var("arguments"));
    let mut s = Solver::new();
    assert!(s.is_valid(
        &env,
        &[
            Pred::eq(len.clone(), Term::int(2)),
            Pred::eq(len.clone(), Term::int(3)),
        ],
        &Pred::False,
    ));
    // Γ₂ is consistent when the arities agree — no dead code there.
    assert!(!s.is_valid(
        &env,
        &[
            Pred::eq(len.clone(), Term::int(3)),
            Pred::eq(len, Term::int(3)),
        ],
        &Pred::False,
    ));
}

/// §4.2: typeof tags — `ttag(x) = "number"` refutes the undefined branch.
#[test]
fn reflection_tag_narrowing() {
    let mut env = base_env();
    env.bind("x", Sort::Ref);
    let tag = |s: &str| Pred::eq(Term::ttag_of(Term::var("x")), Term::str(s));
    let mut s = Solver::new();
    assert!(s.is_valid(
        &env,
        &[
            tag("number"),
            Pred::and(vec![
                tag("undefined"),
                Pred::eq(Term::var("x"), Term::app("undefv", vec![])),
            ]),
        ],
        &Pred::False,
    ));
    // Different variables' tags don't conflict.
    env.bind("y", Sort::Ref);
    assert!(!s.is_valid(
        &env,
        &[
            tag("number"),
            Pred::eq(Term::ttag_of(Term::var("y")), Term::str("undefined")),
        ],
        &Pred::False,
    ));
}

/// §4.3: a subset mask witnesses the bigger mask:
/// `(f & 0x400) ≠ 0 ⊢ (f & 0x1C00) ≠ 0`, hence the hierarchy implication
/// fires.
#[test]
fn hierarchy_mask_vcs() {
    let mut env = base_env();
    env.bind("f", Sort::Bv32);
    env.bind("t", Sort::Ref);
    let masked = |m: u32| Term::bin(BinOp::BvAnd, Term::var("f"), Term::bv(m));
    let impl_obj = Pred::App(
        rsc_logic::Sym::from("impl"),
        vec![Term::var("t"), Term::str("ObjectType")],
    );
    let inv = Pred::imp(
        Pred::cmp(CmpOp::Ne, masked(0x1c00), Term::bv(0)),
        impl_obj.clone(),
    );
    let mut s = Solver::new();
    // Class bit set: implication fires.
    assert!(s.is_valid(
        &env,
        &[
            inv.clone(),
            Pred::cmp(CmpOp::Ne, masked(0x0400), Term::bv(0))
        ],
        &impl_obj,
    ));
    // String bit set: it does not.
    assert!(!s.is_valid(
        &env,
        &[inv, Pred::cmp(CmpOp::Ne, masked(0x0002), Term::bv(0))],
        &impl_obj,
    ));
}

/// Nonlinear grid sizing with determined factors (§2.2.3 / T-NEW):
/// `w = 3 ∧ h = 7 ∧ len(d) = 45 ⊢ len(d) = (w+2)*(h+2)`.
#[test]
fn grid_size_constant_evaluation() {
    let mut env = base_env();
    env.bind("w", Sort::Int);
    env.bind("h", Sort::Int);
    env.bind("d", Sort::Ref);
    let size = Term::mul(
        Term::add(Term::var("w"), Term::int(2)),
        Term::add(Term::var("h"), Term::int(2)),
    );
    let mut s = Solver::new();
    assert!(s.is_valid(
        &env,
        &[
            Pred::eq(Term::var("w"), Term::int(3)),
            Pred::eq(Term::var("h"), Term::int(7)),
            Pred::eq(Term::len_of(Term::var("d")), Term::int(45)),
        ],
        &Pred::eq(Term::len_of(Term::var("d")), size.clone()),
    ));
    // And 44 ≠ 45 is caught.
    assert!(!s.is_valid(
        &env,
        &[
            Pred::eq(Term::var("w"), Term::int(3)),
            Pred::eq(Term::var("h"), Term::int(7)),
            Pred::eq(Term::len_of(Term::var("d")), Term::int(44)),
        ],
        &Pred::eq(Term::len_of(Term::var("d")), size),
    ));
}

/// Congruence over nonlinear terms: equal factors give equal products.
#[test]
fn nonlinear_congruence() {
    let mut env = base_env();
    for x in ["a", "b", "c"] {
        env.bind(x, Sort::Int);
    }
    let mut s = Solver::new();
    assert!(s.is_valid(
        &env,
        &[Pred::eq(Term::var("a"), Term::var("b"))],
        &Pred::eq(
            Term::mul(Term::var("a"), Term::var("c")),
            Term::mul(Term::var("b"), Term::var("c")),
        ),
    ));
    // Commutativity is normalized at encoding.
    assert!(s.is_valid(
        &env,
        &[],
        &Pred::eq(
            Term::mul(Term::var("a"), Term::var("c")),
            Term::mul(Term::var("c"), Term::var("a")),
        ),
    ));
}

// ---------------------------------------------------------------------
// Property test: the full solver against brute force on small integer
// domains, over conjunctions of random linear literals.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Lin {
    cx: i64,
    cy: i64,
    cz: i64,
    k: i64,
    op: u8, // 0: <=, 1: =, 2: !=
}

fn eval_lin(l: &Lin, x: i64, y: i64, z: i64) -> bool {
    let v = l.cx * x + l.cy * y + l.cz * z + l.k;
    match l.op {
        0 => v <= 0,
        1 => v == 0,
        _ => v != 0,
    }
}

fn lin_pred(l: &Lin) -> Pred {
    let e = Term::add(
        Term::add(
            Term::mul(Term::int(l.cx), Term::var("x")),
            Term::mul(Term::int(l.cy), Term::var("y")),
        ),
        Term::add(Term::mul(Term::int(l.cz), Term::var("z")), Term::int(l.k)),
    );
    match l.op {
        0 => Pred::cmp(CmpOp::Le, e, Term::int(0)),
        1 => Pred::eq(e, Term::int(0)),
        _ => Pred::cmp(CmpOp::Ne, e, Term::int(0)),
    }
}

fn arb_lin() -> impl Strategy<Value = Lin> {
    (-3i64..=3, -3i64..=3, -3i64..=3, -6i64..=6, 0u8..3).prop_map(|(cx, cy, cz, k, op)| Lin {
        cx,
        cy,
        cz,
        k,
        op,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]
    #[test]
    fn lia_agrees_with_brute_force(lits in prop::collection::vec(arb_lin(), 1..5)) {
        // Brute force over a window large enough for these coefficients:
        // any satisfiable system with |c| ≤ 3, |k| ≤ 6 and ≤ 4 literals has
        // a solution within [-8, 8]³ OR is genuinely unbounded — we only
        // assert agreement when brute force finds a model (solver must say
        // Sat) and trust Unsat only when the solver proves it.
        let mut env = SortEnv::new();
        env.bind("x", Sort::Int);
        env.bind("y", Sort::Int);
        env.bind("z", Sort::Int);
        let preds: Vec<Pred> = lits.iter().map(lin_pred).collect();
        let mut s = Solver::new();
        let got = s.is_sat(&env, &preds);
        let mut brute_sat = false;
        'outer: for x in -8i64..=8 {
            for y in -8i64..=8 {
                for z in -8i64..=8 {
                    if lits.iter().all(|l| eval_lin(l, x, y, z)) {
                        brute_sat = true;
                        break 'outer;
                    }
                }
            }
        }
        if brute_sat {
            prop_assert_ne!(got, SatResult::Unsat, "solver refuted a satisfiable system");
        }
        // Soundness of Unsat in the other direction is checked by
        // exhaustion only within the window; wider models may exist, so
        // no assertion when brute_sat is false and the solver says Sat.
    }
}
