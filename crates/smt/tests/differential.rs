//! Differential testing of the SMT solver against a brute-force
//! finite-domain evaluator.
//!
//! Random QF LIA+EUF+BV32 predicates are generated with proptest and
//! checked both ways:
//!
//! * if the solver claims **Unsat**, no model may exist in the finite
//!   domain (a finite model would witness satisfiability outright);
//! * if the solver claims a VC is **valid**, no finite countermodel may
//!   exist;
//! * cached and uncached solvers must agree on every validity verdict,
//!   and a second probe of the same query must agree with the first.
//!
//! The finite domain is deliberately one-directional: a formula with no
//! model over `x, y ∈ [-2, 2]` may still be satisfiable over ℤ, so the
//! evaluator can never refute a `Sat` answer — only `Unsat`/valid claims
//! are falsifiable, which is exactly the soundness-critical direction
//! (and the only direction the VC cache memoizes).

use proptest::prelude::*;
use rsc_logic::{BinOp, CmpOp, FunSig, Pred, Sort, SortEnv, Sym, Term};
use rsc_smt::{IncrContext, SatResult, Solver, VcCache};

// ------------------------------------------------------------ generator ---

const CMPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

fn int_term() -> BoxedStrategy<Term> {
    let leaf = prop_oneof![
        Just(Term::var("x")),
        Just(Term::var("y")),
        (-2i64..=2).prop_map(Term::int),
    ]
    .boxed();
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Term::neg),
            inner.clone().prop_map(|t| Term::app("f", vec![t])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::bin(BinOp::Sub, a, b)),
            ((-2i64..=2), inner).prop_map(|(c, t)| Term::bin(BinOp::Mul, Term::int(c), t)),
        ]
    })
}

fn bv_term() -> BoxedStrategy<Term> {
    let leaf = prop_oneof![
        Just(Term::var("u")),
        Just(Term::var("w")),
        (0u32..=3).prop_map(Term::bv),
    ]
    .boxed();
    leaf.prop_recursive(1, 4, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::bin(BinOp::BvAnd, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::bin(BinOp::BvOr, a, b)),
        ]
    })
}

fn pred() -> BoxedStrategy<Pred> {
    let atom = prop_oneof![
        (0usize..6, int_term(), int_term()).prop_map(|(i, a, b)| Pred::cmp(CMPS[i], a, b)),
        (0usize..2, bv_term(), bv_term())
            .prop_map(|(i, a, b)| { Pred::cmp(if i == 0 { CmpOp::Eq } else { CmpOp::Ne }, a, b) }),
        Just(Pred::TermPred(Term::var("p"))),
    ]
    .boxed();
    atom.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pred::and(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pred::or(vec![a, b])),
            inner.clone().prop_map(Pred::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pred::imp(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pred::iff(a, b)),
        ]
    })
}

fn env() -> SortEnv {
    let mut e = SortEnv::new();
    e.bind("x", Sort::Int);
    e.bind("y", Sort::Int);
    e.bind("p", Sort::Bool);
    e.bind("u", Sort::Bv32);
    e.bind("w", Sort::Bv32);
    e.declare_fun("f", FunSig::Fixed(vec![Sort::Int], Sort::Int));
    e
}

// ------------------------------------------------- brute-force evaluator ---

/// Integer domain for variables.
const D: [i64; 5] = [-2, -1, 0, 1, 2];
/// Bit-vector domain.
const DBV: [u32; 4] = [0, 1, 2, 3];
/// Range of each entry of the uninterpreted function's table. `f` is
/// interpreted as the total periodic function `n ↦ table[n mod 5]` — a
/// legitimate interpretation, so any model found this way is a real model.
const DF: [i64; 3] = [-1, 0, 1];

#[derive(Clone, Copy)]
struct Model {
    x: i64,
    y: i64,
    p: bool,
    u: u32,
    w: u32,
    f: [i64; 5],
}

#[derive(Clone, Copy, PartialEq)]
enum Val {
    I(i64),
    B(bool),
    Bv(u32),
}

fn eval_term(t: &Term, m: &Model) -> Option<Val> {
    Some(match t {
        Term::Var(x) => match x.as_str() {
            "x" => Val::I(m.x),
            "y" => Val::I(m.y),
            "p" => Val::B(m.p),
            "u" => Val::Bv(m.u),
            "w" => Val::Bv(m.w),
            _ => return None,
        },
        Term::IntLit(n) => Val::I(*n),
        Term::BoolLit(b) => Val::B(*b),
        Term::BvLit(n) => Val::Bv(*n),
        Term::Neg(a) => match eval_term(a, m)? {
            Val::I(n) => Val::I(-n),
            _ => return None,
        },
        Term::App(f, args) if f.as_str() == "f" && args.len() == 1 => {
            match eval_term(&args[0], m)? {
                Val::I(n) => Val::I(m.f[(n.rem_euclid(5)) as usize]),
                _ => return None,
            }
        }
        Term::Bin(op, a, b) => {
            let (va, vb) = (eval_term(a, m)?, eval_term(b, m)?);
            match (op, va, vb) {
                (BinOp::Add, Val::I(a), Val::I(b)) => Val::I(a + b),
                (BinOp::Sub, Val::I(a), Val::I(b)) => Val::I(a - b),
                (BinOp::Mul, Val::I(a), Val::I(b)) => Val::I(a * b),
                (BinOp::BvAnd, Val::Bv(a), Val::Bv(b)) => Val::Bv(a & b),
                (BinOp::BvOr, Val::Bv(a), Val::Bv(b)) => Val::Bv(a | b),
                _ => return None,
            }
        }
        _ => return None,
    })
}

fn eval_pred(p: &Pred, m: &Model) -> Option<bool> {
    Some(match p {
        Pred::True => true,
        Pred::False => false,
        Pred::And(ps) => {
            for q in ps {
                if !eval_pred(q, m)? {
                    return Some(false);
                }
            }
            true
        }
        Pred::Or(ps) => {
            for q in ps {
                if eval_pred(q, m)? {
                    return Some(true);
                }
            }
            false
        }
        Pred::Not(q) => !eval_pred(q, m)?,
        Pred::Imp(a, b) => !eval_pred(a, m)? || eval_pred(b, m)?,
        Pred::Iff(a, b) => eval_pred(a, m)? == eval_pred(b, m)?,
        Pred::Cmp(op, a, b) => {
            let (va, vb) = (eval_term(a, m)?, eval_term(b, m)?);
            match (va, vb) {
                (Val::I(a), Val::I(b)) => match op {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                },
                (va, vb) => match op {
                    CmpOp::Eq => va == vb,
                    CmpOp::Ne => va != vb,
                    _ => return None,
                },
            }
        }
        Pred::TermPred(t) => match eval_term(t, m)? {
            Val::B(b) => b,
            _ => return None,
        },
        _ => return None,
    })
}

fn contains_f_term(t: &Term) -> bool {
    match t {
        Term::App(f, args) => f.as_str() == "f" || args.iter().any(contains_f_term),
        Term::Bin(_, a, b) => contains_f_term(a) || contains_f_term(b),
        Term::Neg(a) | Term::Field(a, _) => contains_f_term(a),
        _ => false,
    }
}

fn contains_f(p: &Pred) -> bool {
    match p {
        Pred::And(ps) | Pred::Or(ps) => ps.iter().any(contains_f),
        Pred::Not(q) => contains_f(q),
        Pred::Imp(a, b) | Pred::Iff(a, b) => contains_f(a) || contains_f(b),
        Pred::Cmp(_, a, b) => contains_f_term(a) || contains_f_term(b),
        Pred::TermPred(t) => contains_f_term(t),
        Pred::App(_, args) => args.iter().any(contains_f_term),
        _ => false,
    }
}

/// Exhaustive search for a model over the finite domain, enumerating only
/// the dimensions the formula actually mentions.
fn exists_finite_model(preds: &[Pred]) -> bool {
    let mut vars = std::collections::BTreeSet::new();
    for p in preds {
        p.free_vars_into(&mut vars);
    }
    let used = |n: &str| vars.contains(&Sym::from(n));
    let one_i = [0i64];
    let one_b = [false];
    let one_bv = [0u32];
    let xs: &[i64] = if used("x") { &D } else { &one_i };
    let ys: &[i64] = if used("y") { &D } else { &one_i };
    let ps: &[bool] = if used("p") { &[false, true] } else { &one_b };
    let us: &[u32] = if used("u") { &DBV } else { &one_bv };
    let ws: &[u32] = if used("w") { &DBV } else { &one_bv };
    let f_codes: u32 = if preds.iter().any(contains_f) {
        (DF.len() as u32).pow(5)
    } else {
        1
    };

    for code in 0..f_codes {
        let mut f = [0i64; 5];
        let mut c = code as usize;
        for slot in &mut f {
            *slot = DF[c % DF.len()];
            c /= DF.len();
        }
        for &x in xs {
            for &y in ys {
                for &p in ps {
                    for &u in us {
                        for &w in ws {
                            let m = Model { x, y, p, u, w, f };
                            if preds.iter().all(|q| eval_pred(q, &m) == Some(true)) {
                                return true;
                            }
                        }
                    }
                }
            }
        }
    }
    false
}

// ----------------------------------------------------------- properties ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness: an Unsat claim must survive exhaustive finite search.
    #[test]
    fn unsat_claims_have_no_finite_model(hyps in prop::collection::vec(pred(), 1..4)) {
        let e = env();
        let mut solver = Solver::new();
        if solver.is_sat(&e, &hyps) == SatResult::Unsat {
            prop_assert!(
                !exists_finite_model(&hyps),
                "solver claimed Unsat but a finite model exists for {:?}",
                hyps.iter().map(|p| p.to_string()).collect::<Vec<_>>()
            );
        }
    }

    /// Soundness of validity: `hyps ⊢ goal` must have no countermodel.
    #[test]
    fn valid_claims_have_no_finite_countermodel(
        hyps in prop::collection::vec(pred(), 0..3),
        goal in pred(),
    ) {
        let e = env();
        let mut solver = Solver::new();
        if solver.is_valid(&e, &hyps, &goal) {
            let mut refutation = hyps.clone();
            refutation.push(Pred::not(goal.clone()));
            prop_assert!(
                !exists_finite_model(&refutation),
                "solver claimed valid but a finite countermodel exists for {} under {:?}",
                goal,
                hyps.iter().map(|p| p.to_string()).collect::<Vec<_>>()
            );
        }
    }

    /// Cache coherence: a cache-sharing solver and a second probe of the
    /// same cache always agree (the verdict is a pure function of the
    /// canonical fingerprint), and Unsat answers served from the cache
    /// stay sound. The uncached solver solves the *original* conjunct
    /// orientation, which is only guaranteed to agree when neither side
    /// was cut off by the round cap — so that comparison is gated.
    #[test]
    fn cached_and_uncached_answers_agree(
        hyps in prop::collection::vec(pred(), 0..3),
        goal in pred(),
    ) {
        let e = env();
        let mut plain = Solver::new();
        let uncached = plain.is_valid(&e, &hyps, &goal);

        let cache = VcCache::shared();
        let mut first = Solver::with_cache(cache.clone());
        let v1 = first.is_valid(&e, &hyps, &goal);
        let mut second = Solver::with_cache(cache.clone());
        let v2 = second.is_valid(&e, &hyps, &goal);

        let capped = plain.stats.sat_rounds >= plain.max_rounds() as u64
            || first.stats.sat_rounds >= first.max_rounds() as u64;
        if !capped {
            prop_assert_eq!(uncached, v1, "cache changed a decided validity verdict");
        }
        prop_assert_eq!(v1, v2, "second probe of the cache disagreed");
        if v1 {
            // The second solver must have answered from the cache.
            prop_assert_eq!(second.stats.cache_hits, 1);
            prop_assert_eq!(second.stats.queries, 0);
            prop_assert!(
                !exists_finite_model(
                    &hyps.iter().cloned().chain([Pred::not(goal.clone())]).collect::<Vec<_>>()
                ),
                "cached Unsat answer has a finite countermodel"
            );
        }
    }

    /// Incremental equivalence: one persistent [`IncrContext`] answering a
    /// whole *sequence* of queries — sharing its arena, atom table, SAT
    /// instance, learnt clauses and blocking clauses across them — must
    /// agree with a fresh solver on every query. Divergence is tolerated
    /// only when a side hit the DPLL(T) round cap (an `Unknown`, i.e.
    /// "not proven", never an unsound claim). Valid claims additionally
    /// must survive exhaustive finite search, so a context poisoned by an
    /// earlier query (a retained clause that is not theory-valid, a stale
    /// activation literal) cannot slip through as a spurious proof.
    #[test]
    fn incremental_context_agrees_with_fresh_solver(
        queries in prop::collection::vec(
            (prop::collection::vec(pred(), 0..3), pred()),
            1..5,
        ),
    ) {
        let e = env();
        let mut ctx = IncrContext::new();
        let mut incr = Solver::new();
        for (hyps, goal) in &queries {
            let mut fresh = Solver::new();
            let fresh_v = fresh.is_valid(&e, hyps, goal);
            let incr_v = incr.is_valid_ctx(&mut ctx, &e, hyps, goal);
            let incr_stats = incr.stats.take();
            let capped = fresh.stats.sat_rounds >= fresh.max_rounds() as u64
                || incr_stats.sat_rounds >= incr.max_rounds() as u64;
            if !capped {
                prop_assert_eq!(
                    fresh_v,
                    incr_v,
                    "incremental context diverged from fresh solver on {} under {:?}",
                    goal,
                    hyps.iter().map(|p| p.to_string()).collect::<Vec<_>>()
                );
            }
            if incr_v {
                let refutation: Vec<Pred> = hyps
                    .iter()
                    .cloned()
                    .chain([Pred::not(goal.clone())])
                    .collect();
                prop_assert!(
                    !exists_finite_model(&refutation),
                    "incremental context claimed valid but a finite countermodel exists for {} under {:?}",
                    goal,
                    hyps.iter().map(|p| p.to_string()).collect::<Vec<_>>()
                );
            }
        }
    }
}
