//! Encoding of [`rsc_logic`] predicates into the solver's internal
//! representation: a propositional [`Formula`] over theory [`AtomData`]s,
//! with terms hash-consed into the [`Arena`].

use std::collections::HashMap;

use rsc_logic::{sort_of_in, BinOp, CmpOp, Pred, Sort, SortLookup, Sym, Term};

use crate::atom::{AtomData, AtomId, BvTerm, Formula, NLinExp};
use crate::node::{Arena, Node, NodeId};

/// An error during encoding (ill-sorted input, κ-variables, overflow).
/// The driver maps encoding errors to [`crate::SatResult::Unknown`], which
/// the checker treats conservatively.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodeError(pub String);

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "encode error: {}", self.0)
    }
}

impl std::error::Error for EncodeError {}

/// Owned encoder state: arena, atom table, and the defining equations of
/// lifted nodes (compound integer expressions in uninterpreted argument
/// position). Separate from the [`Encoder`] view so a persistent
/// incremental context ([`crate::incr`]) can keep the state alive across
/// queries while the (borrowed) sort environment is supplied per call.
pub struct EncoderState {
    /// The term arena.
    pub arena: Arena,
    /// The atom table.
    pub atoms: Vec<AtomData>,
    atom_map: HashMap<AtomData, AtomId>,
    /// Defining equations (`e = 0`) asserted in every theory check.
    pub defs: Vec<NLinExp>,
    /// The lifted node each entry of `defs` defines (parallel to `defs`):
    /// lets a scoped theory check select exactly the definitions whose
    /// lifted node is reachable from the query.
    pub def_nodes: Vec<NodeId>,
    lifted_cache: HashMap<NLinExp, NodeId>,
    /// The arena node for `true`.
    pub true_node: NodeId,
    /// The arena node for `false`.
    pub false_node: NodeId,
}

impl EncoderState {
    /// Fresh state with interned `true`/`false` nodes.
    pub fn new() -> Self {
        let mut arena = Arena::new();
        let true_node = arena.intern(Node::True);
        let false_node = arena.intern(Node::False);
        EncoderState {
            arena,
            atoms: Vec::new(),
            atom_map: HashMap::new(),
            defs: Vec::new(),
            def_nodes: Vec::new(),
            lifted_cache: HashMap::new(),
            true_node,
            false_node,
        }
    }
}

impl Default for EncoderState {
    fn default() -> Self {
        EncoderState::new()
    }
}

/// The encoding view: borrowed state plus the sort environment of the
/// current query.
pub struct Encoder<'a> {
    /// Sorts of variables and signatures of uninterpreted functions —
    /// either an owned [`rsc_logic::SortEnv`] or a borrowed
    /// [`rsc_logic::SortScope`] overlay (base env + binder list), so the
    /// VC cache's canonical-binder path never clones an environment.
    pub sort_env: &'a dyn SortLookup,
    /// The mutable encoder state (owned by the caller).
    pub st: &'a mut EncoderState,
}

impl<'a> Encoder<'a> {
    /// Creates an encoder view over the given sort environment and state.
    pub fn over(sort_env: &'a dyn SortLookup, st: &'a mut EncoderState) -> Self {
        Encoder { sort_env, st }
    }

    fn atom(&mut self, a: AtomData) -> AtomId {
        if let Some(&id) = self.st.atom_map.get(&a) {
            return id;
        }
        let id = AtomId(self.st.atoms.len() as u32);
        self.st.atoms.push(a.clone());
        self.st.atom_map.insert(a, id);
        id
    }

    /// Encodes predicate `p` with polarity `pol` (`false` encodes `¬p`),
    /// pushing negations down to atom literals.
    pub fn encode_pred(&mut self, p: &Pred, pol: bool) -> Result<Formula, EncodeError> {
        match p {
            Pred::True => Ok(Formula::Const(pol)),
            Pred::False => Ok(Formula::Const(!pol)),
            Pred::And(ps) => {
                let fs = ps
                    .iter()
                    .map(|q| self.encode_pred(q, pol))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(if pol {
                    Formula::And(fs)
                } else {
                    Formula::Or(fs)
                })
            }
            Pred::Or(ps) => {
                let fs = ps
                    .iter()
                    .map(|q| self.encode_pred(q, pol))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(if pol {
                    Formula::Or(fs)
                } else {
                    Formula::And(fs)
                })
            }
            Pred::Not(q) => self.encode_pred(q, !pol),
            Pred::Imp(a, b) => {
                if pol {
                    let na = self.encode_pred(a, false)?;
                    let fb = self.encode_pred(b, true)?;
                    Ok(Formula::Or(vec![na, fb]))
                } else {
                    let fa = self.encode_pred(a, true)?;
                    let nb = self.encode_pred(b, false)?;
                    Ok(Formula::And(vec![fa, nb]))
                }
            }
            Pred::Iff(a, b) => {
                let fa = self.encode_pred(a, true)?;
                let na = self.encode_pred(a, false)?;
                let fb = self.encode_pred(b, true)?;
                let nb = self.encode_pred(b, false)?;
                if pol {
                    Ok(Formula::And(vec![
                        Formula::Or(vec![na.clone(), fb.clone()]),
                        Formula::Or(vec![nb, fa]),
                    ]))
                } else {
                    Ok(Formula::Or(vec![
                        Formula::And(vec![fa, nb]),
                        Formula::And(vec![fb, na]),
                    ]))
                }
            }
            Pred::Cmp(op, a, b) => self.encode_cmp(*op, a, b, pol),
            Pred::App(f, args) => {
                let nargs = args
                    .iter()
                    .map(|t| self.node_of(t))
                    .collect::<Result<Vec<_>, _>>()?;
                let n = self
                    .st
                    .arena
                    .intern(Node::App(f.clone(), nargs, Sort::Bool));
                let id = self.atom(AtomData::BoolNode(n));
                Ok(Formula::Lit(id, pol))
            }
            Pred::TermPred(t) => self.bool_formula(t, pol),
            Pred::KVar(k, _) => Err(EncodeError(format!(
                "κ-variable {k} in a concrete verification condition"
            ))),
        }
    }

    fn encode_cmp(
        &mut self,
        op: CmpOp,
        a: &Term,
        b: &Term,
        pol: bool,
    ) -> Result<Formula, EncodeError> {
        let sa = sort_of_in(self.sort_env, a).map_err(|e| EncodeError(e.to_string()))?;
        let sb = sort_of_in(self.sort_env, b).map_err(|e| EncodeError(e.to_string()))?;
        if sa != sb {
            return Err(EncodeError(format!(
                "comparison between sorts {sa} and {sb}: {a} {} {b}",
                op.symbol()
            )));
        }
        match sa {
            Sort::Int => {
                let la = self.lin(a)?;
                let lb = self.lin(b)?;
                let d = la.sub(&lb);
                let atom_le = |enc: &mut Self, mut e: NLinExp, strict: bool| {
                    if strict {
                        e.konst += 1;
                    }
                    if e.is_const() {
                        Formula::Const(e.konst <= 0)
                    } else {
                        let id = enc.atom(AtomData::LinLe(e));
                        Formula::Lit(id, true)
                    }
                };
                let lit = |f: Formula, pol: bool| match (f, pol) {
                    (Formula::Const(c), p) => Formula::Const(c == p),
                    (Formula::Lit(i, q), p) => Formula::Lit(i, q == p),
                    _ => unreachable!(),
                };
                match op {
                    CmpOp::Le => Ok(lit(atom_le(self, d, false), pol)),
                    CmpOp::Lt => Ok(lit(atom_le(self, d, true), pol)),
                    CmpOp::Ge => Ok(lit(atom_le(self, d.scale(-1), false), pol)),
                    CmpOp::Gt => Ok(lit(atom_le(self, d.scale(-1), true), pol)),
                    CmpOp::Eq | CmpOp::Ne => {
                        if d.is_const() {
                            let truth = d.konst == 0;
                            let want_eq = op == CmpOp::Eq;
                            return Ok(Formula::Const((truth == want_eq) == pol));
                        }
                        let pair = match (la.as_single_node(), lb.as_single_node()) {
                            (Some(x), Some(y)) => Some((x.min(y), x.max(y))),
                            _ => None,
                        };
                        let id = self.atom(AtomData::IntEq(d, pair));
                        Ok(Formula::Lit(id, (op == CmpOp::Eq) == pol))
                    }
                }
            }
            Sort::Bool => {
                let fa = self.bool_formula(a, true)?;
                let na = self.bool_formula(a, false)?;
                let fb = self.bool_formula(b, true)?;
                let nb = self.bool_formula(b, false)?;
                let want_eq = match op {
                    CmpOp::Eq => true,
                    CmpOp::Ne => false,
                    _ => {
                        return Err(EncodeError(format!(
                            "ordering on booleans: {a} {} {b}",
                            op.symbol()
                        )))
                    }
                };
                let iff_pol = want_eq == pol;
                if iff_pol {
                    Ok(Formula::And(vec![
                        Formula::Or(vec![na, fb]),
                        Formula::Or(vec![nb, fa]),
                    ]))
                } else {
                    Ok(Formula::Or(vec![
                        Formula::And(vec![fa, nb]),
                        Formula::And(vec![fb, na]),
                    ]))
                }
            }
            Sort::Str | Sort::Ref => {
                let want_eq = match op {
                    CmpOp::Eq => true,
                    CmpOp::Ne => false,
                    _ => {
                        return Err(EncodeError(format!(
                            "ordering on sort {sa}: {a} {} {b}",
                            op.symbol()
                        )))
                    }
                };
                let na = self.node_of(a)?;
                let nb = self.node_of(b)?;
                if na == nb {
                    return Ok(Formula::Const(want_eq == pol));
                }
                let (x, y) = (na.min(nb), na.max(nb));
                let id = self.atom(AtomData::EufEq(x, y));
                Ok(Formula::Lit(id, want_eq == pol))
            }
            Sort::Bv32 => {
                let want_eq = match op {
                    CmpOp::Eq => true,
                    CmpOp::Ne => false,
                    _ => {
                        return Err(EncodeError(format!(
                            "ordering on bit-vectors: {a} {} {b}",
                            op.symbol()
                        )))
                    }
                };
                let ba = self.bvterm(a)?;
                let bb = self.bvterm(b)?;
                let id = self.atom(AtomData::BvEq(ba, bb));
                Ok(Formula::Lit(id, want_eq == pol))
            }
        }
    }

    fn bool_formula(&mut self, t: &Term, pol: bool) -> Result<Formula, EncodeError> {
        match t {
            Term::BoolLit(b) => Ok(Formula::Const(*b == pol)),
            _ => {
                let s = sort_of_in(self.sort_env, t).map_err(|e| EncodeError(e.to_string()))?;
                if s != Sort::Bool {
                    return Err(EncodeError(format!("truthiness of non-boolean term {t}")));
                }
                let n = self.node_of(t)?;
                let id = self.atom(AtomData::BoolNode(n));
                Ok(Formula::Lit(id, pol))
            }
        }
    }

    /// A linear expression over arena nodes for an integer-sorted term.
    pub fn lin(&mut self, t: &Term) -> Result<NLinExp, EncodeError> {
        match t {
            Term::IntLit(n) => Ok(NLinExp::konst(*n as i128)),
            Term::Var(_) | Term::Field(..) | Term::App(..) => {
                let n = self.node_of(t)?;
                Ok(NLinExp::node(n))
            }
            Term::Neg(a) => Ok(self.lin(a)?.scale(-1)),
            Term::Bin(op, a, b) => {
                let la = self.lin(a)?;
                let lb = self.lin(b)?;
                match op {
                    BinOp::Add => Ok(la.add(&lb)),
                    BinOp::Sub => Ok(la.sub(&lb)),
                    BinOp::Mul => {
                        if la.is_const() {
                            Ok(lb.scale(la.konst))
                        } else if lb.is_const() {
                            Ok(la.scale(lb.konst))
                        } else {
                            // Nonlinear: uninterpreted `mul`, commutatively
                            // normalized.
                            let na = self.node_of_lin(la)?;
                            let nb = self.node_of_lin(lb)?;
                            let (x, y) = (na.min(nb), na.max(nb));
                            let n = self.st.arena.intern(Node::App(
                                Sym::from("mul"),
                                vec![x, y],
                                Sort::Int,
                            ));
                            Ok(NLinExp::node(n))
                        }
                    }
                    BinOp::Div | BinOp::Mod => {
                        if la.is_const() && lb.is_const() && lb.konst != 0 {
                            let v = if *op == BinOp::Div {
                                la.konst / lb.konst
                            } else {
                                la.konst % lb.konst
                            };
                            return Ok(NLinExp::konst(v));
                        }
                        let na = self.node_of_lin(la)?;
                        let nb = self.node_of_lin(lb)?;
                        let f = if *op == BinOp::Div { "div" } else { "mod" };
                        let n =
                            self.st
                                .arena
                                .intern(Node::App(Sym::from(f), vec![na, nb], Sort::Int));
                        Ok(NLinExp::node(n))
                    }
                    BinOp::BvAnd | BinOp::BvOr => Err(EncodeError(format!(
                        "bit-vector operation {t} in integer position"
                    ))),
                }
            }
            _ => Err(EncodeError(format!("non-integer term {t} in arithmetic"))),
        }
    }

    /// An arena node representing a whole linear expression: the node
    /// itself for single-node expressions, an interned constant, or a fresh
    /// lifted node with a defining equation.
    pub fn node_of_lin(&mut self, l: NLinExp) -> Result<NodeId, EncodeError> {
        if let Some(n) = l.as_single_node() {
            return Ok(n);
        }
        if l.is_const() {
            let v = i64::try_from(l.konst)
                .map_err(|_| EncodeError("integer constant overflow".into()))?;
            return Ok(self.st.arena.intern(Node::IntConst(v)));
        }
        // Structurally identical expressions share a lifted node so that
        // congruence over nonlinear terms (e.g. `mul`) works directly.
        if let Some(&n) = self.st.lifted_cache.get(&l) {
            return Ok(n);
        }
        let fresh = self.st.arena.fresh_lifted();
        let mut def = l.clone();
        def.add_term(fresh, -1);
        self.st.defs.push(def);
        self.st.def_nodes.push(fresh);
        self.st.lifted_cache.insert(l, fresh);
        Ok(fresh)
    }

    /// The arena node of a term of any sort (integers are lifted).
    pub fn node_of(&mut self, t: &Term) -> Result<NodeId, EncodeError> {
        let s = sort_of_in(self.sort_env, t).map_err(|e| EncodeError(e.to_string()))?;
        match t {
            Term::Var(x) => Ok(self.st.arena.intern(Node::Var(x.clone(), s))),
            Term::IntLit(n) => Ok(self.st.arena.intern(Node::IntConst(*n))),
            Term::BoolLit(b) => Ok(if *b {
                self.st.true_node
            } else {
                self.st.false_node
            }),
            Term::StrLit(x) => Ok(self.st.arena.intern(Node::StrConst(x.clone()))),
            Term::BvLit(_) => Err(EncodeError(format!(
                "bit-vector literal {t} in uninterpreted position"
            ))),
            Term::Field(base, fld) => {
                let nb = self.node_of(base)?;
                Ok(self
                    .st
                    .arena
                    .intern(Node::App(Sym::from(format!("field${fld}")), vec![nb], s)))
            }
            Term::App(f, args) => {
                let nargs = args
                    .iter()
                    .map(|x| self.node_of(x))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(self.st.arena.intern(Node::App(f.clone(), nargs, s)))
            }
            Term::Bin(..) | Term::Neg(..) => {
                if s == Sort::Int {
                    let l = self.lin(t)?;
                    self.node_of_lin(l)
                } else {
                    Err(EncodeError(format!(
                        "compound term {t} of sort {s} in uninterpreted position"
                    )))
                }
            }
        }
    }

    fn bvterm(&mut self, t: &Term) -> Result<BvTerm, EncodeError> {
        match t {
            Term::BvLit(c) => Ok(BvTerm::Const(*c)),
            Term::Var(_) | Term::Field(..) | Term::App(..) => {
                let n = self.node_of(t)?;
                Ok(BvTerm::Node(n))
            }
            Term::Bin(BinOp::BvAnd, a, b) => Ok(BvTerm::And(
                Box::new(self.bvterm(a)?),
                Box::new(self.bvterm(b)?),
            )),
            Term::Bin(BinOp::BvOr, a, b) => Ok(BvTerm::Or(
                Box::new(self.bvterm(a)?),
                Box::new(self.bvterm(b)?),
            )),
            _ => Err(EncodeError(format!("not a bit-vector term: {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_logic::SortEnv;

    fn env() -> SortEnv {
        let mut e = SortEnv::new();
        e.bind("x", Sort::Int);
        e.bind("y", Sort::Int);
        e.bind("a", Sort::Ref);
        e.bind("v", Sort::Int);
        e
    }

    #[test]
    fn lin_flattening() {
        let env = env();
        let mut st = EncoderState::new();
        let mut enc = Encoder::over(&env, &mut st);
        // 2*x + len(a) - 3
        let t = Term::sub(
            Term::add(
                Term::mul(Term::int(2), Term::var("x")),
                Term::len_of(Term::var("a")),
            ),
            Term::int(3),
        );
        let l = enc.lin(&t).unwrap();
        assert_eq!(l.konst, -3);
        assert_eq!(l.coeffs.len(), 2);
    }

    #[test]
    fn nonlinear_becomes_uninterpreted() {
        let env = env();
        let mut st = EncoderState::new();
        let mut enc = Encoder::over(&env, &mut st);
        let t1 = Term::mul(Term::var("x"), Term::var("y"));
        let t2 = Term::mul(Term::var("y"), Term::var("x"));
        let l1 = enc.lin(&t1).unwrap();
        let l2 = enc.lin(&t2).unwrap();
        // Commutative normalization: same node.
        assert_eq!(l1, l2);
    }

    #[test]
    fn kvar_rejected() {
        let env = env();
        let mut st = EncoderState::new();
        let mut enc = Encoder::over(&env, &mut st);
        let p = Pred::KVar(rsc_logic::KVarId(0), rsc_logic::Subst::new());
        assert!(enc.encode_pred(&p, true).is_err());
    }

    #[test]
    fn trivial_cmp_folds() {
        let env = env();
        let mut st = EncoderState::new();
        let mut enc = Encoder::over(&env, &mut st);
        let p = Pred::Cmp(CmpOp::Le, Term::var("x"), Term::var("x"));
        let f = enc.encode_pred(&p, true).unwrap().simplify();
        assert_eq!(f, Formula::Const(true));
    }

    #[test]
    fn lifted_node_defs() {
        let env = env();
        let mut st = EncoderState::new();
        let mut enc = Encoder::over(&env, &mut st);
        // len applied to... an int term is ill-sorted; use mul(x+1, y) to
        // force lifting of x+1.
        let t = Term::mul(Term::add(Term::var("x"), Term::int(1)), Term::var("y"));
        enc.lin(&t).unwrap();
        assert_eq!(enc.st.defs.len(), 1);
    }
}
