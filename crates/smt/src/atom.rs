//! Theory atoms and the propositional formula skeleton.

use std::collections::BTreeMap;

use crate::node::NodeId;

/// Index of an atom in the encoder's atom table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AtomId(pub u32);

/// A linear expression `Σ cᵢ·nᵢ + k` over arena nodes.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct NLinExp {
    /// Node coefficients (never zero).
    pub coeffs: BTreeMap<NodeId, i128>,
    /// Constant term.
    pub konst: i128,
}

impl NLinExp {
    /// The constant expression.
    pub fn konst(k: i128) -> Self {
        NLinExp {
            coeffs: BTreeMap::new(),
            konst: k,
        }
    }

    /// The expression consisting of a single node.
    pub fn node(n: NodeId) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(n, 1);
        NLinExp { coeffs, konst: 0 }
    }

    /// Adds `c·n`.
    pub fn add_term(&mut self, n: NodeId, c: i128) {
        let e = self.coeffs.entry(n).or_insert(0);
        *e += c;
        if *e == 0 {
            self.coeffs.remove(&n);
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &NLinExp) -> NLinExp {
        let mut out = self.clone();
        for (&n, &c) in &other.coeffs {
            out.add_term(n, c);
        }
        out.konst += other.konst;
        out
    }

    /// `k·self`.
    pub fn scale(&self, k: i128) -> NLinExp {
        if k == 0 {
            return NLinExp::konst(0);
        }
        NLinExp {
            coeffs: self.coeffs.iter().map(|(&n, &c)| (n, c * k)).collect(),
            konst: self.konst * k,
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &NLinExp) -> NLinExp {
        self.add(&other.scale(-1))
    }

    /// If the expression is exactly one node with coefficient 1 and no
    /// constant, returns it.
    pub fn as_single_node(&self) -> Option<NodeId> {
        if self.konst == 0 && self.coeffs.len() == 1 {
            let (&n, &c) = self.coeffs.iter().next().unwrap();
            if c == 1 {
                return Some(n);
            }
        }
        None
    }

    /// True if there are no node terms.
    pub fn is_const(&self) -> bool {
        self.coeffs.is_empty()
    }
}

/// A 32-bit bit-vector term, blasted to SAT by [`crate::bv`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BvTerm {
    /// A constant.
    Const(u32),
    /// An opaque 32-bit slot attached to an arena node (variable or
    /// uninterpreted application of bit-vector sort).
    Node(NodeId),
    /// Bitwise and.
    And(Box<BvTerm>, Box<BvTerm>),
    /// Bitwise or.
    Or(Box<BvTerm>, Box<BvTerm>),
    /// Bitwise not.
    Not(Box<BvTerm>),
}

/// A theory atom. The propositional skeleton is built over these.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum AtomData {
    /// `e ≤ 0` over integers.
    LinLe(NLinExp),
    /// `e = 0` over integers; if both sides of the original equality were
    /// single nodes, they are recorded for congruence-closure propagation.
    IntEq(NLinExp, Option<(NodeId, NodeId)>),
    /// Equality of two non-arithmetic nodes (references, strings).
    EufEq(NodeId, NodeId),
    /// Truthiness of a boolean-sorted node.
    BoolNode(NodeId),
    /// Equality of two bit-vector terms (bit-blasted eagerly).
    BvEq(BvTerm, BvTerm),
}

/// A propositional formula over atoms in negation normal form (negation
/// only on atom literals).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// Constant truth value.
    Const(bool),
    /// An atom with a polarity (`false` = negated).
    Lit(AtomId, bool),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
}

impl Formula {
    /// Simplifies constants away; afterwards `Const` can only appear at the
    /// top level.
    pub fn simplify(self) -> Formula {
        match self {
            Formula::And(fs) => {
                let mut out = Vec::new();
                for f in fs {
                    match f.simplify() {
                        Formula::Const(true) => {}
                        Formula::Const(false) => return Formula::Const(false),
                        Formula::And(gs) => out.extend(gs),
                        g => out.push(g),
                    }
                }
                match out.len() {
                    0 => Formula::Const(true),
                    1 => out.pop().unwrap(),
                    _ => Formula::And(out),
                }
            }
            Formula::Or(fs) => {
                let mut out = Vec::new();
                for f in fs {
                    match f.simplify() {
                        Formula::Const(false) => {}
                        Formula::Const(true) => return Formula::Const(true),
                        Formula::Or(gs) => out.extend(gs),
                        g => out.push(g),
                    }
                }
                match out.len() {
                    0 => Formula::Const(false),
                    1 => out.pop().unwrap(),
                    _ => Formula::Or(out),
                }
            }
            f => f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linexp_algebra() {
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let mut a = NLinExp::node(n0);
        a.add_term(n1, 2);
        let b = a.scale(3);
        assert_eq!(b.coeffs[&n0], 3);
        assert_eq!(b.coeffs[&n1], 6);
        let c = a.sub(&a);
        assert!(c.is_const() && c.konst == 0);
    }

    #[test]
    fn single_node_detection() {
        let n0 = NodeId(0);
        assert_eq!(NLinExp::node(n0).as_single_node(), Some(n0));
        assert_eq!(NLinExp::node(n0).scale(2).as_single_node(), None);
    }

    #[test]
    fn formula_simplify() {
        let f = Formula::And(vec![
            Formula::Const(true),
            Formula::Or(vec![Formula::Const(false), Formula::Lit(AtomId(0), true)]),
        ]);
        assert_eq!(f.simplify(), Formula::Lit(AtomId(0), true));
        let g = Formula::Or(vec![Formula::Const(true), Formula::Lit(AtomId(0), false)]);
        assert_eq!(g.simplify(), Formula::Const(true));
    }
}
