//! Linear integer arithmetic: satisfiability of conjunctions of linear
//! constraints via integer-tightened Fourier–Motzkin elimination, with
//! Gaussian substitution for equalities and case splitting for
//! disequalities.
//!
//! Soundness contract: [`LiaResult::Infeasible`] is only returned when the
//! constraints genuinely have no **rational** solution or an integrality
//! contradiction is explicit (GCD test). Because verification treats only
//! UNSAT answers as proof, every shortcut in this module errs toward
//! [`LiaResult::Feasible`].

use std::collections::BTreeMap;

/// A linear expression `Σ cᵢ·xᵢ + c` over variables indexed by `u32`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct LinExp {
    /// Variable coefficients (never zero).
    pub coeffs: BTreeMap<u32, i128>,
    /// The constant term.
    pub konst: i128,
}

impl LinExp {
    /// The constant expression `c`.
    pub fn konst(c: i128) -> LinExp {
        LinExp {
            coeffs: BTreeMap::new(),
            konst: c,
        }
    }

    /// The expression `x`.
    pub fn var(x: u32) -> LinExp {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(x, 1);
        LinExp { coeffs, konst: 0 }
    }

    /// Adds `c·x` to the expression.
    pub fn add_term(&mut self, x: u32, c: i128) {
        let e = self.coeffs.entry(x).or_insert(0);
        *e += c;
        if *e == 0 {
            self.coeffs.remove(&x);
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &LinExp) -> LinExp {
        let mut out = self.clone();
        for (&x, &c) in &other.coeffs {
            out.add_term(x, c);
        }
        out.konst += other.konst;
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &LinExp) -> LinExp {
        self.add(&other.scale(-1))
    }

    /// `k · self`.
    pub fn scale(&self, k: i128) -> LinExp {
        if k == 0 {
            return LinExp::konst(0);
        }
        LinExp {
            coeffs: self.coeffs.iter().map(|(&x, &c)| (x, c * k)).collect(),
            konst: self.konst * k,
        }
    }

    /// True if the expression has no variables.
    pub fn is_const(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The coefficient of `x` (0 if absent).
    pub fn coeff(&self, x: u32) -> i128 {
        self.coeffs.get(&x).copied().unwrap_or(0)
    }

    /// Integer tightening for `self ≤ 0`: divides by the GCD of the
    /// variable coefficients and rounds the constant up (`Σcᵢxᵢ ≤ -c`
    /// becomes `Σ(cᵢ/g)xᵢ ≤ ⌊-c/g⌋`).
    pub fn tighten_le(&self) -> LinExp {
        if self.coeffs.is_empty() {
            return self.clone();
        }
        let g = self.coeffs.values().fold(0i128, |g, &c| gcd(g, c.abs()));
        if g <= 1 {
            return self.clone();
        }
        LinExp {
            coeffs: self.coeffs.iter().map(|(&x, &c)| (x, c / g)).collect(),
            konst: ceil_div(self.konst, g),
        }
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn ceil_div(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    if a >= 0 {
        (a + b - 1) / b
    } else {
        -((-a) / b)
    }
}

/// The answer of the LIA feasibility check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LiaResult {
    /// A rational solution exists (and no explicit integrality conflict was
    /// found); treated as satisfiable.
    Feasible,
    /// No solution exists.
    Infeasible,
}

/// A conjunction of linear constraints.
#[derive(Clone, Debug, Default)]
pub struct LiaProblem {
    /// Constraints `e ≤ 0`.
    pub les: Vec<LinExp>,
    /// Constraints `e = 0`.
    pub eqs: Vec<LinExp>,
    /// Constraints `e ≠ 0`.
    pub diseqs: Vec<LinExp>,
}

/// Resource caps keeping Fourier–Motzkin elimination bounded; exceeding a
/// cap returns [`LiaResult::Feasible`] (the conservative direction).
const MAX_ROWS: usize = 6000;
const MAX_DISEQ_SPLITS: usize = 14;
const MAX_ABS_COEFF: i128 = i64::MAX as i128;

impl LiaProblem {
    /// Checks feasibility of the conjunction.
    pub fn feasible(&self) -> LiaResult {
        self.feasible_depth(0)
    }

    fn feasible_depth(&self, depth: usize) -> LiaResult {
        // Disequality case splitting: e ≠ 0 ⇔ e ≤ -1 ∨ -e ≤ -1.
        if let Some((d, rest)) = self.diseqs.split_first() {
            if depth >= MAX_DISEQ_SPLITS {
                return LiaResult::Feasible;
            }
            if d.is_const() {
                if d.konst == 0 {
                    return LiaResult::Infeasible;
                }
                let sub = LiaProblem {
                    les: self.les.clone(),
                    eqs: self.eqs.clone(),
                    diseqs: rest.to_vec(),
                };
                return sub.feasible_depth(depth);
            }
            for signed in [d.clone(), d.scale(-1)] {
                let mut sub = LiaProblem {
                    les: self.les.clone(),
                    eqs: self.eqs.clone(),
                    diseqs: rest.to_vec(),
                };
                let mut e = signed;
                e.konst += 1; // e + 1 ≤ 0  i.e.  e ≤ -1
                sub.les.push(e);
                if sub.feasible_depth(depth + 1) == LiaResult::Feasible {
                    return LiaResult::Feasible;
                }
            }
            return LiaResult::Infeasible;
        }
        self.feasible_no_diseqs()
    }

    fn feasible_no_diseqs(&self) -> LiaResult {
        let mut les: Vec<LinExp> = self.les.iter().map(LinExp::tighten_le).collect();
        let mut eqs: Vec<LinExp> = self.eqs.clone();

        // Gaussian substitution using equalities.
        while let Some(pos) = eqs.iter().position(|e| !e.is_const()) {
            let e = eqs.swap_remove(pos);
            let g = e.coeffs.values().fold(0i128, |g, &c| gcd(g, c.abs()));
            if g > 1 && e.konst % g != 0 {
                return LiaResult::Infeasible; // e.g. 2x = 1
            }
            let e = if g > 1 {
                LinExp {
                    coeffs: e.coeffs.iter().map(|(&x, &c)| (x, c / g)).collect(),
                    konst: e.konst / g,
                }
            } else {
                e
            };
            // Find a ±1 coefficient to substitute on.
            let unit = e.coeffs.iter().find(|(_, &c)| c == 1 || c == -1);
            match unit {
                Some((&x, &c)) => {
                    // c·x + rest = 0  =>  x = -rest/c
                    let mut rest = e.clone();
                    rest.coeffs.remove(&x);
                    let image = rest.scale(-c); // c in {1,-1}: x = -c·rest
                    substitute(&mut les, x, &image);
                    substitute(&mut eqs, x, &image);
                }
                None => {
                    // No unit coefficient: fall back to a pair of inequalities.
                    les.push(e.clone());
                    les.push(e.scale(-1));
                }
            }
        }
        for e in &eqs {
            if e.konst != 0 {
                return LiaResult::Infeasible;
            }
        }

        // Fourier–Motzkin elimination on the inequalities.
        loop {
            // Constant rows first.
            for e in &les {
                if e.is_const() && e.konst > 0 {
                    return LiaResult::Infeasible;
                }
            }
            les.retain(|e| !e.is_const());
            if les.is_empty() {
                return LiaResult::Feasible;
            }
            if les.len() > MAX_ROWS {
                return LiaResult::Feasible; // resource cap: conservative
            }
            // Pick the variable minimizing |pos|·|neg| fill-in.
            let mut counts: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
            for e in &les {
                for (&x, &c) in &e.coeffs {
                    let ent = counts.entry(x).or_insert((0, 0));
                    if c > 0 {
                        ent.0 += 1;
                    } else {
                        ent.1 += 1;
                    }
                }
            }
            let (&x, _) = counts
                .iter()
                .min_by_key(|(_, (p, n))| p * n)
                .expect("nonempty");
            let mut pos = Vec::new();
            let mut neg = Vec::new();
            let mut rest = Vec::new();
            for e in les.drain(..) {
                let c = e.coeff(x);
                if c > 0 {
                    pos.push(e);
                } else if c < 0 {
                    neg.push(e);
                } else {
                    rest.push(e);
                }
            }
            for p in &pos {
                for n in &neg {
                    let a = p.coeff(x); // > 0
                    let b = -n.coeff(x); // > 0
                    if a.abs() > MAX_ABS_COEFF / (b.abs().max(1)) {
                        return LiaResult::Feasible; // overflow guard
                    }
                    let combo = p.scale(b).add(&n.scale(a));
                    debug_assert_eq!(combo.coeff(x), 0);
                    rest.push(combo.tighten_le());
                }
            }
            if rest.len() > MAX_ROWS {
                return LiaResult::Feasible;
            }
            les = rest;
        }
    }

    /// True if the constraints entail `x = y` (both strict separations are
    /// infeasible). Used for Nelson–Oppen equality propagation. Takes
    /// `&mut self` to probe by pushing/popping the separation row in
    /// place — the feasibility check clones rows internally anyway, so an
    /// up-front clone of the whole problem per probe would be pure waste;
    /// the problem is unchanged on return.
    pub fn entails_eq(&mut self, x: u32, y: u32) -> bool {
        let mut entailed = true;
        for (lo, hi) in [(x, y), (y, x)] {
            // lo < hi  i.e.  lo - hi + 1 ≤ 0
            let mut e = LinExp::var(lo);
            e.add_term(hi, -1);
            e.konst += 1;
            self.les.push(e);
            let feasible = self.feasible() == LiaResult::Feasible;
            self.les.pop();
            if feasible {
                entailed = false;
                break;
            }
        }
        entailed
    }
}

fn substitute(rows: &mut [LinExp], x: u32, image: &LinExp) {
    for e in rows.iter_mut() {
        let c = e.coeff(x);
        if c != 0 {
            e.coeffs.remove(&x);
            *e = e.add(&image.scale(c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(pairs: &[(u32, i128)], k: i128) -> LinExp {
        let mut e = LinExp::konst(k);
        for &(x, c) in pairs {
            e.add_term(x, c);
        }
        e
    }

    #[test]
    fn simple_infeasible() {
        // x ≤ 0 ∧ -x + 1 ≤ 0 (x ≥ 1)
        let p = LiaProblem {
            les: vec![le(&[(0, 1)], 0), le(&[(0, -1)], 1)],
            ..Default::default()
        };
        assert_eq!(p.feasible(), LiaResult::Infeasible);
    }

    #[test]
    fn simple_feasible() {
        // 0 ≤ x ∧ x ≤ 10
        let p = LiaProblem {
            les: vec![le(&[(0, -1)], 0), le(&[(0, 1)], -10)],
            ..Default::default()
        };
        assert_eq!(p.feasible(), LiaResult::Feasible);
    }

    #[test]
    fn array_bounds_vc() {
        // 0 < len ∧ v = 0 ∧ ¬(0 ≤ v ∧ v < len) — the head example, negated.
        // Branch 1: v < 0; branch 2: v ≥ len. Vars: v=0, len=1.
        let base_eq = le(&[(0, 1)], 0); // v = 0
        let len_pos = le(&[(1, -1)], 1); // 1 - len ≤ 0
        let p1 = LiaProblem {
            les: vec![len_pos.clone(), le(&[(0, 1)], 1)], // v + 1 ≤ 0
            eqs: vec![base_eq.clone()],
            ..Default::default()
        };
        assert_eq!(p1.feasible(), LiaResult::Infeasible);
        let p2 = LiaProblem {
            les: vec![len_pos, le(&[(0, -1), (1, 1)], 0)], // len - v ≤ 0
            eqs: vec![base_eq],
            ..Default::default()
        };
        assert_eq!(p2.feasible(), LiaResult::Infeasible);
    }

    #[test]
    fn gcd_integrality() {
        // 2x = 1 infeasible over Z.
        let p = LiaProblem {
            eqs: vec![le(&[(0, 2)], -1)],
            ..Default::default()
        };
        assert_eq!(p.feasible(), LiaResult::Infeasible);
    }

    #[test]
    fn tightening_catches_strict_bounds() {
        // 2x ≤ 1 ∧ x ≥ 1: tightened 2x ≤ 1 becomes x ≤ 0.
        let p = LiaProblem {
            les: vec![le(&[(0, 2)], -1), le(&[(0, -1)], 1)],
            ..Default::default()
        };
        assert_eq!(p.feasible(), LiaResult::Infeasible);
    }

    #[test]
    fn diseq_split() {
        // 0 ≤ x ≤ 1 ∧ x ≠ 0 ∧ x ≠ 1 infeasible over Z.
        let p = LiaProblem {
            les: vec![le(&[(0, -1)], 0), le(&[(0, 1)], -1)],
            diseqs: vec![le(&[(0, 1)], 0), le(&[(0, 1)], -1)],
            ..Default::default()
        };
        assert_eq!(p.feasible(), LiaResult::Infeasible);
    }

    #[test]
    fn diseq_feasible() {
        // 0 ≤ x ≤ 2 ∧ x ≠ 1 feasible (x = 0).
        let p = LiaProblem {
            les: vec![le(&[(0, -1)], 0), le(&[(0, 1)], -2)],
            diseqs: vec![le(&[(0, 1)], -1)],
            ..Default::default()
        };
        assert_eq!(p.feasible(), LiaResult::Feasible);
    }

    #[test]
    fn equality_substitution() {
        // x = y + 1 ∧ y = 3 ∧ x ≤ 3 infeasible.
        let p = LiaProblem {
            eqs: vec![le(&[(0, 1), (1, -1)], -1), le(&[(1, 1)], -3)],
            les: vec![le(&[(0, 1)], -3)],
            ..Default::default()
        };
        assert_eq!(p.feasible(), LiaResult::Infeasible);
    }

    #[test]
    fn entailed_equality() {
        // x ≤ y ∧ y ≤ x entails x = y.
        let mut p = LiaProblem {
            les: vec![le(&[(0, 1), (1, -1)], 0), le(&[(0, -1), (1, 1)], 0)],
            ..Default::default()
        };
        assert!(p.entails_eq(0, 1));
        let mut q = LiaProblem {
            les: vec![le(&[(0, 1), (1, -1)], 0)],
            ..Default::default()
        };
        assert!(!q.entails_eq(0, 1));
    }

    #[test]
    fn three_var_chain() {
        // a ≤ b ∧ b ≤ c ∧ c ≤ a - 1 infeasible.
        let p = LiaProblem {
            les: vec![
                le(&[(0, 1), (1, -1)], 0),
                le(&[(1, 1), (2, -1)], 0),
                le(&[(2, 1), (0, -1)], 1),
            ],
            ..Default::default()
        };
        assert_eq!(p.feasible(), LiaResult::Infeasible);
    }

    #[test]
    fn nonunit_equality_fallback() {
        // 2x + 3y = 7 ∧ x ≥ 0 ∧ y ≥ 0 ∧ x + y ≤ 1: rationally infeasible?
        // x=2,y=1 solves ineqs? x+y=3 > 1. x=0.5? not integral but rationally:
        // 2x+3y=7, x,y≥0, x+y≤1 → max 2x+3y at x+y≤1 is 3 (<7): infeasible.
        let p = LiaProblem {
            eqs: vec![le(&[(0, 2), (1, 3)], -7)],
            les: vec![
                le(&[(0, -1)], 0),
                le(&[(1, -1)], 0),
                le(&[(0, 1), (1, 1)], -1),
            ],
            ..Default::default()
        };
        assert_eq!(p.feasible(), LiaResult::Infeasible);
    }
}
