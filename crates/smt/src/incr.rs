//! Persistent incremental SMT contexts for the Liquid fixpoint.
//!
//! The fixpoint re-validates each candidate qualifier of a κ-headed
//! constraint on every weakening iteration. A fresh [`crate::Solver`]
//! call re-encodes and re-CNFs the whole query each time — 85–96% of a
//! cold check. An [`IncrContext`] instead keeps one SAT instance, one
//! term arena and one atom table alive per constraint:
//!
//! - Every hypothesis conjunct and every goal is encoded **once**, the
//!   first time it appears, under an *activation literal* `a` with the
//!   clause `¬a ∨ root(p)`. Asserting the item in a later query is just
//!   assuming `a` ([`crate::sat::SatSolver::solve_under`]); a dropped
//!   item's clauses stay behind, inert, because Tseitin definitions are
//!   bidirectional and fully define their fresh variables.
//! - Learnt clauses and theory blocking clauses are retained across
//!   queries: both are implied by the clause database alone (blocking
//!   clauses state theory-valid facts about atoms whose meaning never
//!   changes), so each query starts where the last one left off.
//! - Theory checks are *scoped* ([`crate::theory::check_scoped`]): only
//!   the atoms of the current query are assigned, only the defining
//!   equations reachable from it are passed, and the heuristic arena
//!   sweeps are restricted to the query's subterm closure, so unrelated
//!   queries sharing the context can neither consume bounded probe
//!   budgets nor surface in each other's conflicts.
//!
//! # Context-per-constraint invariants
//!
//! A context must only be reused across queries that share one sort
//! environment (in the fixpoint: one constraint's binder scope layered
//! over the program environment). Item identity is the `(Pred, polarity)`
//! pair; the caller must not reuse a context across scopes where the
//! same predicate text means different sorts. Verdicts are `Unsat` only
//! when the clause database plus assumptions is refuted — activation
//! implications, Tseitin definitions and retained blocking clauses are
//! all consequences of the asserted items' theory semantics, so an
//! `Unsat` here is an `Unsat` of the original conjunction.

use std::collections::{BTreeSet, HashMap};

use rsc_logic::{Pred, SortLookup};

use crate::atom::{AtomData, AtomId, Formula, NLinExp};
use crate::bv::Blaster;
use crate::cnf::{tseitin, ClauseSink};
use crate::encode::{Encoder, EncoderState};
use crate::node::{Node, NodeId};
use crate::sat::{Lit, SatOutcome, SatSolver};
use crate::solver::{SatResult, SolverStats};
use crate::theory::{self, TheoryVerdict};

/// How one encoded item participates in queries.
///
/// Atom lists are shared (`Arc`): the hot path clones the slot on every
/// query of every item, and the list is immutable after encoding.
#[derive(Clone, Debug)]
enum Slot {
    /// Assume `lit` to assert the item; `atoms` are the theory atoms it
    /// references (for scoping the theory check).
    Active {
        lit: Lit,
        atoms: std::sync::Arc<[AtomId]>,
    },
    /// The item simplified to `true`; it asserts nothing, but its atoms
    /// (interned before folding) still join the query scope, mirroring
    /// the fresh encoder whose table keeps them.
    Tautology { atoms: std::sync::Arc<[AtomId]> },
    /// The item simplified to `false`: any query asserting it is Unsat.
    Contradiction,
    /// The item failed to encode: any query asserting it is Unknown.
    Poisoned,
}

/// A persistent incremental solving context (one per constraint).
pub struct IncrContext {
    sat: SatSolver,
    st: EncoderState,
    blaster: Blaster,
    /// SAT literal of each atom in `st.atoms` (parallel).
    atom_lits: Vec<Lit>,
    /// Encoded items, keyed by predicate; the two cells are the slots
    /// for the encoding polarities (index `pol as usize` — hypotheses
    /// use `true`; goals are refuted, so they use `false`). Keying by
    /// predicate alone lets the hot lookup borrow the caller's `&Pred`
    /// instead of cloning one per query item.
    items: HashMap<Pred, [Option<Slot>; 2]>,
}

impl IncrContext {
    /// An empty context.
    pub fn new() -> Self {
        IncrContext {
            sat: SatSolver::new(),
            st: EncoderState::new(),
            blaster: Blaster::new(),
            atom_lits: Vec::new(),
            items: HashMap::new(),
        }
    }

    /// Number of items encoded so far (observability).
    pub fn items_len(&self) -> usize {
        self.items
            .values()
            .map(|slots| slots.iter().flatten().count())
            .sum()
    }

    /// Allocates SAT literals for atoms interned since the last call.
    fn extend_atom_lits(&mut self) {
        while self.atom_lits.len() < self.st.atoms.len() {
            let i = self.atom_lits.len();
            let lit = match self.st.atoms[i].clone() {
                AtomData::BvEq(x, y) => self.blaster.eq_lit(&x, &y, &mut self.sat),
                _ => Lit::pos(ClauseSink::new_var(&mut self.sat)),
            };
            self.atom_lits.push(lit);
        }
    }

    /// Atoms referenced by a simplified formula, in first-occurrence
    /// traversal order.
    fn formula_atoms(f: &Formula, out: &mut Vec<AtomId>, seen: &mut BTreeSet<u32>) {
        match f {
            Formula::Const(_) => {}
            Formula::Lit(a, _) => {
                if seen.insert(a.0) {
                    out.push(*a);
                }
            }
            Formula::And(fs) | Formula::Or(fs) => {
                for g in fs {
                    Self::formula_atoms(g, out, seen);
                }
            }
        }
    }

    /// Encodes `(pred, pol)` into the context if not already present and
    /// returns its slot.
    fn item(&mut self, env: &dyn SortLookup, pred: &Pred, pol: bool) -> Slot {
        if let Some(Some(slot)) = self.items.get(pred).map(|s| &s[pol as usize]) {
            return slot.clone();
        }
        let atoms_before = self.st.atoms.len() as u32;
        let mut enc = Encoder::over(env, &mut self.st);
        let slot = match enc.encode_pred(pred, pol) {
            Err(_) => Slot::Poisoned,
            Ok(f) => {
                let f = f.simplify();
                // Atoms of the item: those its formula references plus any
                // interned during encoding but folded away (the fresh
                // encoder keeps the latter in its table too, where they
                // get model polarities and join the theory check).
                let mut atoms = Vec::new();
                let mut seen = BTreeSet::new();
                Self::formula_atoms(&f, &mut atoms, &mut seen);
                for i in atoms_before..self.st.atoms.len() as u32 {
                    if seen.insert(i) {
                        atoms.push(AtomId(i));
                    }
                }
                match f {
                    Formula::Const(true) => Slot::Tautology {
                        atoms: atoms.into(),
                    },
                    Formula::Const(false) => Slot::Contradiction,
                    g => {
                        self.extend_atom_lits();
                        let atom_lits = &self.atom_lits;
                        let lookup = |a: AtomId, pol: bool| {
                            let l = atom_lits[a.0 as usize];
                            if pol {
                                l
                            } else {
                                l.negate()
                            }
                        };
                        let root = tseitin(&g, &lookup, &mut self.sat);
                        let a = Lit::pos(ClauseSink::new_var(&mut self.sat));
                        self.sat.add_clause(vec![a.negate(), root]);
                        Slot::Active {
                            lit: a,
                            atoms: atoms.into(),
                        }
                    }
                }
            }
        };
        self.items.entry(pred.clone()).or_insert([None, None])[pol as usize] = Some(slot.clone());
        slot
    }

    /// The subterm closure of the query's atoms, together with every
    /// defining equation whose lifted node it reaches (a fixpoint: a
    /// definition's right-hand side joins the closure, which can pull in
    /// further definitions). Returns the sorted scope and the selected
    /// definitions in table order.
    fn scope_and_defs(&self, atoms: &[AtomId]) -> (Vec<NodeId>, Vec<NLinExp>) {
        let mut scope: BTreeSet<NodeId> = BTreeSet::new();
        let mut stack: Vec<NodeId> = Vec::new();
        for &a in atoms {
            match &self.st.atoms[a.0 as usize] {
                AtomData::LinLe(l) => stack.extend(l.coeffs.keys().copied()),
                AtomData::IntEq(l, pair) => {
                    stack.extend(l.coeffs.keys().copied());
                    if let Some((x, y)) = pair {
                        stack.push(*x);
                        stack.push(*y);
                    }
                }
                AtomData::EufEq(x, y) => {
                    stack.push(*x);
                    stack.push(*y);
                }
                AtomData::BoolNode(n) => stack.push(*n),
                AtomData::BvEq(..) => {}
            }
        }
        // True/false nodes are always in scope (BoolNode merges them).
        stack.push(self.st.true_node);
        stack.push(self.st.false_node);
        let mut included = vec![false; self.st.defs.len()];
        loop {
            while let Some(n) = stack.pop() {
                if !scope.insert(n) {
                    continue;
                }
                if let Node::App(_, args, _) = self.st.arena.node(n) {
                    stack.extend(args.iter().copied());
                }
            }
            let mut grew = false;
            for (i, dn) in self.st.def_nodes.iter().enumerate() {
                if !included[i] && scope.contains(dn) {
                    included[i] = true;
                    stack.extend(self.st.defs[i].coeffs.keys().copied());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        let defs = included
            .iter()
            .enumerate()
            .filter(|(_, inc)| **inc)
            .map(|(i, _)| self.st.defs[i].clone())
            .collect();
        (scope.into_iter().collect(), defs)
    }

    /// Checks satisfiability of `hyps ∧ ¬goal` in this context. `Unsat`
    /// means the implication `hyps ⇒ goal` is valid. Mirrors
    /// [`crate::Solver::is_sat`] over the persistent state: same
    /// simplification short-circuits, same DPLL(T) loop, same greedy core
    /// minimization — but encoding is incremental and learnt/blocking
    /// clauses persist.
    pub fn query(
        &mut self,
        env: &dyn SortLookup,
        hyps: &[Pred],
        goal: &Pred,
        stats: &mut SolverStats,
        max_rounds: usize,
    ) -> SatResult {
        stats.queries += 1;
        let mut assumptions: Vec<Lit> = Vec::new();
        let mut relevant: Vec<AtomId> = Vec::new();
        let mut seen_atoms: BTreeSet<u32> = BTreeSet::new();
        let mut add_atoms = |relevant: &mut Vec<AtomId>, atoms: &[AtomId]| {
            for &a in atoms {
                if seen_atoms.insert(a.0) {
                    relevant.push(a);
                }
            }
        };
        // Items in fresh-solver order: hypotheses, then the negated goal.
        let goal_key = (goal, false);
        for (pred, pol) in hyps
            .iter()
            .map(|h| (h, true))
            .chain(std::iter::once(goal_key))
        {
            match self.item(env, pred, pol) {
                Slot::Poisoned => return SatResult::Unknown,
                Slot::Contradiction => return SatResult::Unsat,
                Slot::Tautology { atoms } => add_atoms(&mut relevant, &atoms),
                Slot::Active { lit, atoms } => {
                    add_atoms(&mut relevant, &atoms);
                    assumptions.push(lit);
                }
            }
        }
        let (scope, defs) = self.scope_and_defs(&relevant);
        // Ascending-id copy of the relevant atoms: the theory check
        // derives its involved sets from this instead of scanning the
        // context's whole atom table on every (re-)check.
        let mut assigned_hint = relevant.clone();
        assigned_hint.sort_unstable_by_key(|a| a.0);
        if assumptions.is_empty() && defs.is_empty() {
            return SatResult::Sat;
        }
        if self.sat.is_unsat() {
            // The clause database itself is contradictory (a hypothesis
            // set once asserted `false` at level zero — cannot happen
            // via activation literals, but stay defensive).
            return SatResult::Unsat;
        }

        for _round in 0..max_rounds {
            stats.sat_rounds += 1;
            match self.sat.solve_under(&assumptions) {
                SatOutcome::Unsat => return SatResult::Unsat,
                SatOutcome::Sat(model) => {
                    let mut assign: Vec<Option<bool>> = vec![None; self.st.atoms.len()];
                    for &a in &relevant {
                        let i = a.0 as usize;
                        if matches!(self.st.atoms[i], AtomData::BvEq(..)) {
                            continue;
                        }
                        let l = self.atom_lits[i];
                        let val = model[l.var() as usize];
                        assign[i] = Some(if l.is_neg() { !val } else { val });
                    }
                    let run = |assign: &[Option<bool>]| {
                        theory::check_scoped(
                            &self.st.arena,
                            &self.st.atoms,
                            &defs,
                            assign,
                            self.st.true_node,
                            self.st.false_node,
                            Some(&scope),
                            Some(&assigned_hint),
                        )
                    };
                    match run(&assign) {
                        TheoryVerdict::Consistent => return SatResult::Sat,
                        TheoryVerdict::Conflict(ids) => {
                            stats.theory_conflicts += 1;
                            let restrict = |core: &[AtomId]| {
                                let mut a: Vec<Option<bool>> = vec![None; assign.len()];
                                for id in core {
                                    a[id.0 as usize] = assign[id.0 as usize];
                                }
                                a
                            };
                            let mut core = ids.clone();
                            let check_core = |core: &[AtomId]| {
                                matches!(run(&restrict(core)), TheoryVerdict::Conflict(_))
                            };
                            // A core covering every assigned atom restricts
                            // to the assignment itself — already known to
                            // conflict, so skip the confirmation check.
                            let assigned = assign.iter().filter(|a| a.is_some()).count();
                            if core.len() >= assigned || check_core(&core) {
                                core = theory::minimize_core(core, check_core);
                            }
                            let clause: Vec<Lit> = core
                                .iter()
                                .map(|id| {
                                    let l = self.atom_lits[id.0 as usize];
                                    match assign[id.0 as usize] {
                                        Some(true) => l.negate(),
                                        _ => l,
                                    }
                                })
                                .collect();
                            if clause.is_empty() {
                                return SatResult::Unsat;
                            }
                            // Blocking clauses are theory-valid facts about
                            // the atoms: sound to retain for every future
                            // query of this context.
                            self.sat.add_clause(clause);
                        }
                    }
                }
            }
        }
        SatResult::Unknown
    }
}

impl Default for IncrContext {
    fn default() -> Self {
        IncrContext::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_logic::{CmpOp, Sort, SortEnv, Term};

    fn env() -> SortEnv {
        let mut e = SortEnv::new();
        e.bind("x", Sort::Int);
        e.bind("y", Sort::Int);
        e.bind("v", Sort::Int);
        e.bind("a", Sort::Ref);
        e
    }

    fn le(a: Term, b: Term) -> Pred {
        Pred::cmp(CmpOp::Le, a, b)
    }

    #[test]
    fn valid_and_invalid_in_one_context() {
        let e = env();
        let mut ctx = IncrContext::new();
        let mut stats = SolverStats::default();
        let hyp = le(Term::int(0), Term::var("x"));
        let weak = le(Term::int(-1), Term::var("x"));
        let wrong = le(Term::int(1), Term::var("x"));
        assert_eq!(
            ctx.query(&e, std::slice::from_ref(&hyp), &weak, &mut stats, 600),
            SatResult::Unsat,
            "0 <= x ⊢ -1 <= x must be valid"
        );
        assert_eq!(
            ctx.query(&e, std::slice::from_ref(&hyp), &wrong, &mut stats, 600),
            SatResult::Sat,
            "0 <= x ⊬ 1 <= x"
        );
        // Re-ask the valid one: the context must still answer correctly
        // after a Sat query and its retained clauses.
        assert_eq!(
            ctx.query(&e, &[hyp], &weak, &mut stats, 600),
            SatResult::Unsat
        );
    }

    #[test]
    fn hypothesis_subsets_via_activation_literals() {
        let e = env();
        let mut ctx = IncrContext::new();
        let mut stats = SolverStats::default();
        let h1 = le(Term::int(0), Term::var("x"));
        let h2 = le(Term::var("x"), Term::var("y"));
        let goal = le(Term::int(0), Term::var("y"));
        assert_eq!(
            ctx.query(&e, &[h1.clone(), h2.clone()], &goal, &mut stats, 600),
            SatResult::Unsat
        );
        // Dropping h2 invalidates the implication; its clauses must be
        // inert when its activation literal is not assumed.
        assert_eq!(ctx.query(&e, &[h1], &goal, &mut stats, 600), SatResult::Sat);
        assert_eq!(ctx.query(&e, &[h2], &goal, &mut stats, 600), SatResult::Sat);
    }

    #[test]
    fn contradictory_hypothesis_and_tautology() {
        let e = env();
        let mut ctx = IncrContext::new();
        let mut stats = SolverStats::default();
        let fals = Pred::cmp(CmpOp::Lt, Term::int(1), Term::int(0));
        let goal = le(Term::int(1), Term::var("x"));
        assert_eq!(
            ctx.query(&e, &[fals], &goal, &mut stats, 600),
            SatResult::Unsat,
            "false hypothesis proves anything"
        );
        // The contradiction must not poison unrelated queries.
        let taut = le(Term::int(0), Term::int(1));
        assert_eq!(
            ctx.query(&e, &[taut], &goal, &mut stats, 600),
            SatResult::Sat
        );
    }

    #[test]
    fn euf_congruence_across_queries() {
        let e = env();
        let mut ctx = IncrContext::new();
        let mut stats = SolverStats::default();
        // 0 <= len(a) ∧ v = len(a) ⊢ 0 <= v
        let len_a = Term::len_of(Term::var("a"));
        let h1 = le(Term::int(0), len_a.clone());
        let h2 = Pred::vv_eq(len_a);
        let goal = le(Term::int(0), Term::vv());
        assert_eq!(
            ctx.query(&e, &[h1.clone(), h2.clone()], &goal, &mut stats, 600),
            SatResult::Unsat
        );
        // A weaker query in the same context: h1 alone does not bound v.
        assert_eq!(ctx.query(&e, &[h1], &goal, &mut stats, 600), SatResult::Sat);
    }
}
