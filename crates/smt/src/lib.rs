//! # rsc-smt
//!
//! An SMT solver for the decidable logic used by Refined TypeScript
//! (*Refinement Types for TypeScript*, PLDI 2016): quantifier-free linear
//! integer arithmetic, equality with uninterpreted functions, 32-bit
//! bit-vectors (interface-hierarchy flags, §4.3) and distinct string
//! constants (`ttag` reflection tags, §4.2).
//!
//! The paper discharges verification conditions with Z3 [Nelson 1981 /
//! de Moura–Bjørner]; this crate is a from-scratch replacement covering
//! exactly the fragment RSC emits:
//!
//! * [`sat`] — a CDCL SAT core (watched literals, 1UIP learning),
//! * [`euf`] — congruence closure,
//! * [`lia`] — integer-tightened Fourier–Motzkin with equality
//!   substitution and disequality splitting,
//! * [`bv`] — eager bit-blasting of 32-bit vector operations,
//! * [`theory`] — EUF+LIA combination with bounded Nelson–Oppen equality
//!   propagation,
//! * [`solver`] — the lazy DPLL(T) driver exposing [`Solver::is_valid`].
//!
//! Soundness contract: the only answer verification relies on is
//! [`SatResult::Unsat`], and every resource cap or incompleteness in the
//! solver errs toward `Sat`/`Unknown`, i.e. toward *rejecting* programs.

#![warn(missing_docs)]

pub mod atom;
pub mod bv;
pub mod cache;
pub mod cnf;
pub mod encode;
pub mod euf;
pub mod incr;
pub mod lia;
pub mod node;
pub mod sat;
pub mod solver;
pub mod theory;

pub use cache::{canonical_query, CacheCounters, CanonicalQuery, DiskCache, VcCache};
pub use incr::IncrContext;
pub use solver::{SatResult, Solver, SolverStats};
