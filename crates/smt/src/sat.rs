//! A compact CDCL SAT solver: two-watched literals, first-UIP clause
//! learning, VSIDS-style activities and phase saving.
//!
//! The solver is deliberately small but complete. It supports
//! MiniSat-style *solve under assumptions* ([`SatSolver::solve_under`]):
//! assumption literals are established as pseudo-decisions below any
//! real decision, so learnt clauses are implied by the clause database
//! alone and are retained across calls — the foundation of the
//! persistent per-constraint contexts in [`crate::incr`]. The
//! fresh-per-query DPLL(T) driver in [`crate::solver`] still re-solves
//! from scratch after adding theory blocking clauses.

use std::fmt;

/// A boolean variable, numbered from 0.
pub type Var = u32;

/// A literal: a variable together with a polarity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v << 1) | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = positive).
    pub fn new(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// True if this is a negative literal.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "-{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

/// The result of [`SatSolver::solve`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatOutcome {
    /// Satisfiable; the model maps each variable to a value (variables
    /// never touched by the search may be defaulted).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

const REASON_NONE: u32 = u32::MAX;

/// A CDCL SAT solver over clauses added with [`SatSolver::add_clause`].
pub struct SatSolver {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
    watches: Vec<Vec<u32>>, // literal index -> clause indices watching it
    assign: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<u32>, // clause index or REASON_NONE
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    queue_head: usize,
    activity: Vec<f64>,
    act_inc: f64,
    phase: Vec<bool>,
    unsat: bool,
    /// Number of conflicts encountered (statistics).
    pub conflicts: u64,
    /// Number of decisions made (statistics).
    pub decisions: u64,
}

impl SatSolver {
    /// Creates a solver with no variables or clauses.
    pub fn new() -> Self {
        SatSolver {
            num_vars: 0,
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            queue_head: 0,
            activity: Vec::new(),
            act_inc: 1.0,
            phase: Vec::new(),
            unsat: false,
            conflicts: 0,
            decisions: 0,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.num_vars;
        self.num_vars += 1;
        self.assign.push(None);
        self.level.push(0);
        self.reason.push(REASON_NONE);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// The number of allocated variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Adds a clause. Duplicated literals are removed; tautologies are
    /// dropped; the empty clause marks the instance unsatisfiable.
    ///
    /// Must be called at decision level zero (i.e. before or between
    /// `solve` calls — `solve` always returns at level zero).
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) {
        debug_assert!(self.trail_lim.is_empty());
        if self.unsat {
            return;
        }
        lits.sort();
        lits.dedup();
        // Tautology?
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return; // x and !x both present
            }
        }
        // Remove literals already false at level 0; satisfied clause is dropped.
        lits.retain(|&l| self.value(l) != Some(false) || self.level[l.var() as usize] != 0);
        if lits
            .iter()
            .any(|&l| self.value(l) == Some(true) && self.level[l.var() as usize] == 0)
        {
            return;
        }
        match lits.len() {
            0 => self.unsat = true,
            1 => {
                if self.value(lits[0]) == Some(false) {
                    self.unsat = true;
                } else if self.value(lits[0]).is_none() {
                    self.enqueue(lits[0], REASON_NONE);
                    if self.propagate().is_some() {
                        self.unsat = true;
                    }
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[lits[0].negate().index()].push(idx);
                self.watches[lits[1].negate().index()].push(idx);
                self.clauses.push(lits);
            }
        }
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var() as usize].map(|b| b != l.is_neg())
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert!(self.value(l).is_none());
        self.assign[l.var() as usize] = Some(!l.is_neg());
        self.level[l.var() as usize] = self.trail_lim.len() as u32;
        self.reason[l.var() as usize] = reason;
        self.trail.push(l);
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.queue_head < self.trail.len() {
            let l = self.trail[self.queue_head];
            self.queue_head += 1;
            let watch_idx = l.index();
            let watching = std::mem::take(&mut self.watches[watch_idx]);
            let mut kept = Vec::with_capacity(watching.len());
            let mut conflict = None;
            let mut wi = 0;
            while wi < watching.len() {
                let ci = watching[wi];
                wi += 1;
                let clause = &mut self.clauses[ci as usize];
                // Ensure the falsified literal is at position 1.
                if clause[0].negate() == l {
                    clause.swap(0, 1);
                }
                debug_assert_eq!(clause[1].negate(), l);
                let first = clause[0];
                if self.assign[first.var() as usize].map(|b| b != first.is_neg()) == Some(true) {
                    kept.push(ci);
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                for k in 2..clause.len() {
                    let lk = clause[k];
                    let val = self.assign[lk.var() as usize].map(|b| b != lk.is_neg());
                    if val != Some(false) {
                        clause.swap(1, k);
                        let new_watch = clause[1].negate().index();
                        self.watches[new_watch].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                kept.push(ci);
                // Clause is unit or conflicting.
                match self.value(first) {
                    None => self.enqueue(first, ci),
                    Some(false) => {
                        // Conflict: keep remaining watchers and bail.
                        while wi < watching.len() {
                            kept.push(watching[wi]);
                            wi += 1;
                        }
                        conflict = Some(ci);
                    }
                    Some(true) => unreachable!(),
                }
                if conflict.is_some() {
                    break;
                }
            }
            let slot = &mut self.watches[watch_idx];
            kept.extend_from_slice(&slot[..]);
            *slot = kept;
            if let Some(ci) = conflict {
                return Some(ci);
            }
        }
        None
    }

    fn bump(&mut self, v: Var) {
        self.activity[v as usize] += self.act_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause and the level
    /// to backtrack to.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let current_level = self.trail_lim.len() as u32;
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars as usize];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut reason_clause = conflict;
        let mut trail_idx = self.trail.len();

        loop {
            let clause = &self.clauses[reason_clause as usize];
            let start = if p.is_some() { 1 } else { 0 };
            let lits: Vec<Lit> = clause[start..].to_vec();
            for q in lits {
                let v = q.var() as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(q.var());
                    if self.level[v] == current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find next literal on trail to resolve on.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if seen[l.var() as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pl = p.unwrap();
            seen[pl.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt.insert(0, pl.negate());
                break;
            }
            reason_clause = self.reason[pl.var() as usize];
            debug_assert_ne!(reason_clause, REASON_NONE);
            // Put the resolved-on literal first in the reason clause view.
            let rc = &mut self.clauses[reason_clause as usize];
            if rc[0] != pl {
                let pos = rc.iter().position(|&x| x == pl).unwrap();
                rc.swap(0, pos);
            }
        }

        let back_level = learnt[1..]
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        // Move a max-level literal to position 1 for watching.
        if learnt.len() > 1 {
            let mut mi = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var() as usize] > self.level[learnt[mi].var() as usize] {
                    mi = i;
                }
            }
            learnt.swap(1, mi);
        }
        (learnt, back_level)
    }

    fn backtrack(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var() as usize;
                self.phase[v] = self.assign[v].unwrap();
                self.assign[v] = None;
                self.reason[v] = REASON_NONE;
            }
        }
        self.queue_head = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<Var> = None;
        for v in 0..self.num_vars {
            if self.assign[v as usize].is_none()
                && best.is_none_or(|b| self.activity[v as usize] > self.activity[b as usize])
            {
                best = Some(v);
            }
        }
        best.map(|v| Lit::new(v, self.phase[v as usize]))
    }

    /// Solves the current clause set.
    pub fn solve(&mut self) -> SatOutcome {
        self.solve_under(&[])
    }

    /// True once the clause set itself (no assumptions) has been proven
    /// unsatisfiable; every later call answers `Unsat` immediately.
    pub fn is_unsat(&self) -> bool {
        self.unsat
    }

    /// Solves the current clause set under temporary assumption literals.
    ///
    /// Each assumption is established as a pseudo-decision owning one
    /// decision level (a dummy level when already implied), below every
    /// real decision. Conflict analysis therefore never resolves on an
    /// assumption *as a clause*: learnt clauses — including learnt units
    /// enqueued at level zero — are implied by the clause database alone
    /// and are sound to retain across calls. An assumption found false
    /// under its predecessors yields `Unsat` *for this call only*: the
    /// solver backtracks to level zero and stays usable, without marking
    /// the instance globally unsatisfiable. A conflict at level zero, by
    /// contrast, involves no assumptions and is recorded permanently.
    pub fn solve_under(&mut self, assumptions: &[Lit]) -> SatOutcome {
        if self.unsat {
            return SatOutcome::Unsat;
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return SatOutcome::Unsat;
        }
        loop {
            match self.propagate() {
                Some(conflict) => {
                    self.conflicts += 1;
                    if self.trail_lim.is_empty() {
                        self.unsat = true;
                        return SatOutcome::Unsat;
                    }
                    let (learnt, back) = self.analyze(conflict);
                    self.backtrack(back);
                    self.act_inc *= 1.05;
                    let asserting = learnt[0];
                    if learnt.len() == 1 {
                        self.enqueue(asserting, REASON_NONE);
                    } else {
                        let idx = self.clauses.len() as u32;
                        self.watches[learnt[0].negate().index()].push(idx);
                        self.watches[learnt[1].negate().index()].push(idx);
                        self.clauses.push(learnt);
                        self.enqueue(asserting, idx);
                    }
                }
                None if self.trail_lim.len() < assumptions.len() => {
                    let p = assumptions[self.trail_lim.len()];
                    match self.value(p) {
                        Some(true) => {
                            // Already implied: a dummy level keeps the
                            // level ↔ assumption correspondence.
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            // False under the earlier assumptions (or at
                            // level zero): Unsat under assumptions only.
                            self.backtrack(0);
                            return SatOutcome::Unsat;
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(p, REASON_NONE);
                        }
                    }
                }
                None => match self.decide() {
                    None => {
                        let model = self.assign.iter().map(|a| a.unwrap_or(false)).collect();
                        self.backtrack(0);
                        return SatOutcome::Sat(model);
                    }
                    Some(l) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, REASON_NONE);
                    }
                },
            }
        }
    }
}

impl Default for SatSolver {
    fn default() -> Self {
        SatSolver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i32) -> Lit {
        assert!(i != 0);
        Lit::new((i.unsigned_abs() - 1) as Var, i > 0)
    }

    fn solve(nvars: u32, clauses: &[Vec<i32>]) -> SatOutcome {
        let mut s = SatSolver::new();
        for _ in 0..nvars {
            s.new_var();
        }
        for c in clauses {
            s.add_clause(c.iter().map(|&i| lit(i)).collect());
        }
        s.solve()
    }

    fn check_model(clauses: &[Vec<i32>], model: &[bool]) -> bool {
        clauses.iter().all(|c| {
            c.iter().any(|&i| {
                let v = (i.unsigned_abs() - 1) as usize;
                model[v] == (i > 0)
            })
        })
    }

    #[test]
    fn trivial_sat() {
        match solve(2, &[vec![1, 2], vec![-1]]) {
            SatOutcome::Sat(m) => assert!(m[1]),
            _ => panic!("expected sat"),
        }
    }

    #[test]
    fn trivial_unsat() {
        assert_eq!(solve(1, &[vec![1], vec![-1]]), SatOutcome::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_ij: pigeon i in hole j. vars: p11=1,p12=2,p21=3,p22=4,p31=5,p32=6
        let clauses = vec![
            vec![1, 2],
            vec![3, 4],
            vec![5, 6],
            vec![-1, -3],
            vec![-1, -5],
            vec![-3, -5],
            vec![-2, -4],
            vec![-2, -6],
            vec![-4, -6],
        ];
        assert_eq!(solve(6, &clauses), SatOutcome::Unsat);
    }

    #[test]
    fn xor_chain_sat() {
        // (a xor b) and (b xor c) and a  => c = a
        let clauses = vec![vec![1, 2], vec![-1, -2], vec![2, 3], vec![-2, -3], vec![1]];
        match solve(3, &clauses) {
            SatOutcome::Sat(m) => {
                assert!(m[0]);
                assert!(!m[1]);
                assert!(m[2]);
                assert!(check_model(&clauses, &m));
            }
            _ => panic!("expected sat"),
        }
    }

    #[test]
    fn duplicate_and_tautology_clauses() {
        match solve(2, &[vec![1, 1, 2], vec![1, -1]]) {
            SatOutcome::Sat(_) => {}
            _ => panic!("expected sat"),
        }
    }

    #[test]
    fn unit_conflict_at_level_zero() {
        assert_eq!(
            solve(2, &[vec![1], vec![-1, 2], vec![-2, -1]]),
            SatOutcome::Unsat
        );
    }

    /// Brute-force reference solver.
    fn brute(nvars: u32, clauses: &[Vec<i32>]) -> bool {
        for bits in 0u32..(1 << nvars) {
            let model: Vec<bool> = (0..nvars).map(|i| bits & (1 << i) != 0).collect();
            if check_model(clauses, &model) {
                return true;
            }
        }
        false
    }

    #[test]
    fn assumptions_do_not_poison_the_instance() {
        // (a ∨ b) with assumption ¬a ∧ ¬b is Unsat under assumptions,
        // but the instance itself stays satisfiable afterwards.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
        assert_eq!(
            s.solve_under(&[Lit::neg(a), Lit::neg(b)]),
            SatOutcome::Unsat
        );
        assert!(
            !s.is_unsat(),
            "assumption conflict must not set global unsat"
        );
        match s.solve_under(&[Lit::neg(a)]) {
            SatOutcome::Sat(m) => assert!(!m[a as usize] && m[b as usize]),
            SatOutcome::Unsat => panic!("expected sat under ¬a"),
        }
        match s.solve() {
            SatOutcome::Sat(m) => assert!(m[a as usize] || m[b as usize]),
            SatOutcome::Unsat => panic!("expected sat with no assumptions"),
        }
    }

    #[test]
    fn assumptions_already_implied_and_contradictory() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![Lit::pos(a)]); // unit: a is true at level 0
                                         // Assuming a (already implied, dummy level) plus b works.
        assert!(matches!(
            s.solve_under(&[Lit::pos(a), Lit::pos(b)]),
            SatOutcome::Sat(_)
        ));
        // Assuming ¬a conflicts with the level-0 unit: Unsat under
        // assumptions, but not globally.
        assert_eq!(s.solve_under(&[Lit::neg(a)]), SatOutcome::Unsat);
        assert!(!s.is_unsat());
        // Directly contradictory assumptions.
        assert_eq!(
            s.solve_under(&[Lit::pos(b), Lit::neg(b)]),
            SatOutcome::Unsat
        );
        assert!(!s.is_unsat());
        assert!(matches!(s.solve(), SatOutcome::Sat(_)));
    }

    #[test]
    fn clauses_addable_between_solve_under_calls() {
        // Interleave adds and assumption solves: the activation-literal
        // lifecycle of the incremental context in miniature.
        let mut s = SatSolver::new();
        let act1 = s.new_var();
        let x = s.new_var();
        s.add_clause(vec![Lit::neg(act1), Lit::pos(x)]); // act1 -> x
        assert!(matches!(
            s.solve_under(&[Lit::pos(act1)]),
            SatOutcome::Sat(_)
        ));
        let act2 = s.new_var();
        s.add_clause(vec![Lit::neg(act2), Lit::neg(x)]); // act2 -> ¬x
        assert_eq!(
            s.solve_under(&[Lit::pos(act1), Lit::pos(act2)]),
            SatOutcome::Unsat
        );
        assert!(!s.is_unsat());
        assert!(matches!(
            s.solve_under(&[Lit::pos(act2)]),
            SatOutcome::Sat(_)
        ));
    }

    use proptest::prelude::*;

    proptest::proptest! {
        #![proptest_config(ProptestConfig::with_cases(300))]
        #[test]
        fn agrees_with_brute_force(
            clauses in proptest::collection::vec(
                proptest::collection::vec(
                    (-6i32..=6).prop_filter("nonzero", |x| *x != 0),
                    1..4,
                ),
                0..14,
            )
        ) {
            let nvars = 6;
            let expect_sat = brute(nvars, &clauses);
            match solve(nvars, &clauses) {
                SatOutcome::Sat(m) => {
                    prop_assert!(expect_sat, "solver said SAT, brute force says UNSAT");
                    prop_assert!(check_model(&clauses, &m), "model does not satisfy clauses");
                }
                SatOutcome::Unsat => prop_assert!(!expect_sat, "solver said UNSAT, brute force says SAT"),
            }
        }

        /// One persistent solver, a sequence of assumption sets: every
        /// answer must match brute force on clauses + assumptions-as-units,
        /// and retained learnt clauses must never change later answers.
        #[test]
        fn solve_under_agrees_with_brute_force(
            clauses in proptest::collection::vec(
                proptest::collection::vec(
                    (-6i32..=6).prop_filter("nonzero", |x| *x != 0),
                    1..4,
                ),
                0..14,
            ),
            assumption_sets in proptest::collection::vec(
                proptest::collection::vec(
                    (-6i32..=6).prop_filter("nonzero", |x| *x != 0),
                    0..4,
                ),
                1..5,
            )
        ) {
            let nvars = 6;
            let mut s = SatSolver::new();
            for _ in 0..nvars {
                s.new_var();
            }
            for c in &clauses {
                s.add_clause(c.iter().map(|&i| lit(i)).collect());
            }
            for assumptions in &assumption_sets {
                let mut with_units = clauses.clone();
                with_units.extend(assumptions.iter().map(|&i| vec![i]));
                let expect_sat = brute(nvars, &with_units);
                let lits: Vec<Lit> = assumptions.iter().map(|&i| lit(i)).collect();
                match s.solve_under(&lits) {
                    SatOutcome::Sat(m) => {
                        prop_assert!(expect_sat, "SAT under {assumptions:?}, brute says UNSAT");
                        prop_assert!(check_model(&with_units, &m));
                    }
                    SatOutcome::Unsat => {
                        prop_assert!(!expect_sat, "UNSAT under {assumptions:?}, brute says SAT");
                    }
                }
                if s.is_unsat() {
                    prop_assert!(
                        !brute(nvars, &clauses),
                        "global unsat flag set on a satisfiable base instance"
                    );
                }
            }
        }
    }
}
