//! The DPLL(T) driver: lazy SMT by CDCL enumeration of propositional
//! models with theory-conflict blocking clauses.

use std::sync::Arc;

use rsc_logic::{Pred, SortLookup, SortScope};

use crate::atom::{AtomData, Formula};
use crate::bv::Blaster;
use crate::cache::{canonical_query_refs, VcCache};
use crate::cnf::{tseitin, CnfStore};
use crate::encode::{Encoder, EncoderState};
use crate::sat::{Lit, SatOutcome, Var};
use crate::theory::{self, TheoryVerdict};

/// The answer of a satisfiability query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// A theory-consistent model exists.
    Sat,
    /// No model exists.
    Unsat,
    /// The solver gave up (resource caps or unencodable input). Validity
    /// checking treats this as "not proven".
    Unknown,
}

/// Per-solver statistics.
///
/// Counters accumulate from the last [`SolverStats::reset`] (or solver
/// creation). Callers that report per-unit numbers — e.g. the parallel
/// checking driver's per-function bundles — must [`SolverStats::take`]
/// between units; earlier versions of the pipeline read the cumulative
/// counters and mis-attributed all prior queries to the last unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of satisfiability queries actually solved (cache hits are
    /// counted in `cache_hits` instead).
    pub queries: u64,
    /// Number of validity queries answered "valid".
    pub valid: u64,
    /// Total SAT rounds across all queries.
    pub sat_rounds: u64,
    /// Total theory conflicts (blocking clauses added).
    pub theory_conflicts: u64,
    /// Validity queries answered from the shared VC cache.
    pub cache_hits: u64,
    /// Validity queries that missed the cache and ran the solver.
    pub cache_misses: u64,
}

impl SolverStats {
    /// Zeroes every counter.
    pub fn reset(&mut self) {
        *self = SolverStats::default();
    }

    /// Returns the counters accumulated so far and resets them — the
    /// per-bundle reporting primitive.
    pub fn take(&mut self) -> SolverStats {
        std::mem::take(self)
    }

    /// Adds `other`'s counters into `self` (merging per-bundle stats).
    pub fn merge(&mut self, other: &SolverStats) {
        self.queries += other.queries;
        self.valid += other.valid;
        self.sat_rounds += other.sat_rounds;
        self.theory_conflicts += other.theory_conflicts;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }
}

/// An SMT solver for the RSC refinement logic.
///
/// Validity of a verification condition `⟦Γ⟧ ⇒ p ⇒ q` is checked by
/// refuting `⟦Γ⟧ ∧ p ∧ ¬q` (§2.1.1 of the paper).
///
/// ```
/// use rsc_logic::{CmpOp, Pred, Sort, SortEnv, Term};
/// use rsc_smt::Solver;
///
/// let mut env = SortEnv::new();
/// env.bind("a", Sort::Ref);
/// env.bind("v", Sort::Int);
/// // 0 < len(a) ⊢ v = 0 ⇒ 0 ≤ v ∧ v < len(a)   (the `head` example VC)
/// let len_a = Term::len_of(Term::var("a"));
/// let hyp = Pred::cmp(CmpOp::Lt, Term::int(0), len_a.clone());
/// let lhs = Pred::vv_eq(Term::int(0));
/// let rhs = Pred::and(vec![
///     Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
///     Pred::cmp(CmpOp::Lt, Term::vv(), len_a),
/// ]);
/// let mut solver = Solver::new();
/// assert!(solver.is_valid(&env, &[hyp, lhs], &rhs));
/// ```
pub struct Solver {
    /// Statistics since the last [`SolverStats::take`]/[`SolverStats::reset`].
    pub stats: SolverStats,
    max_rounds: usize,
    cache: Option<Arc<VcCache>>,
}

impl Solver {
    /// Creates a solver with default resource limits and no VC cache.
    pub fn new() -> Self {
        Solver {
            stats: SolverStats::default(),
            max_rounds: 600,
            cache: None,
        }
    }

    /// Creates a solver that shares `cache` for validity queries.
    ///
    /// With a cache attached, [`Solver::is_valid`] solves the *canonical*
    /// form of each query (see [`crate::cache`]), so its verdict is a
    /// pure function of the canonical fingerprint: hit or miss, and
    /// whichever thread gets there first, the answer is identical.
    pub fn with_cache(cache: Arc<VcCache>) -> Self {
        Solver {
            stats: SolverStats::default(),
            max_rounds: 600,
            cache: Some(cache),
        }
    }

    /// The shared VC cache, when one is attached.
    pub fn cache(&self) -> Option<&Arc<VcCache>> {
        self.cache.as_ref()
    }

    /// The DPLL(T) round cap per query. A query whose `sat_rounds` reach
    /// this bound was answered `Unknown` by resource exhaustion, not by
    /// proof — relevant when comparing cached (canonical-form) and
    /// uncached (original-form) verdicts, which may legitimately differ
    /// on capped queries only.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// Checks satisfiability of the conjunction of `preds` under `env`
    /// (an owned [`rsc_logic::SortEnv`] or a borrowed
    /// [`rsc_logic::SortScope`] overlay).
    pub fn is_sat(&mut self, env: &dyn SortLookup, preds: &[Pred]) -> SatResult {
        let refs: Vec<&Pred> = preds.iter().collect();
        self.is_sat_refs(env, &refs)
    }

    /// [`Solver::is_sat`] over borrowed conjuncts, so validity checking
    /// can pass `hyps + ¬goal` without cloning every hypothesis.
    fn is_sat_refs(&mut self, env: &dyn SortLookup, preds: &[&Pred]) -> SatResult {
        self.stats.queries += 1;
        let mut st = EncoderState::new();
        let mut enc = Encoder::over(env, &mut st);
        let mut formulas = Vec::new();
        for &p in preds {
            match enc.encode_pred(p, true) {
                Ok(f) => match f.simplify() {
                    Formula::Const(true) => {}
                    Formula::Const(false) => return SatResult::Unsat,
                    g => formulas.push(g),
                },
                Err(_) => return SatResult::Unknown,
            }
        }
        if formulas.is_empty() && st.defs.is_empty() {
            return SatResult::Sat;
        }

        let mut cnf = CnfStore::new();
        let mut blaster = Blaster::new();
        let atoms = st.atoms.clone();
        let mut atom_lits: Vec<Lit> = Vec::with_capacity(atoms.len());
        for a in &atoms {
            match a {
                AtomData::BvEq(x, y) => {
                    let l = blaster.eq_lit(x, y, &mut cnf);
                    atom_lits.push(l);
                }
                _ => {
                    let v: Var = cnf.new_var();
                    atom_lits.push(Lit::pos(v));
                }
            }
        }
        let lookup = |a: crate::atom::AtomId, pol: bool| {
            let l = atom_lits[a.0 as usize];
            if pol {
                l
            } else {
                l.negate()
            }
        };
        for f in &formulas {
            let root = tseitin(f, &lookup, &mut cnf);
            cnf.add_clause(vec![root]);
        }

        for _round in 0..self.max_rounds {
            self.stats.sat_rounds += 1;
            match cnf.solve() {
                SatOutcome::Unsat => return SatResult::Unsat,
                SatOutcome::Sat(model) => {
                    let assign: Vec<Option<bool>> = atoms
                        .iter()
                        .enumerate()
                        .map(|(i, a)| match a {
                            AtomData::BvEq(..) => None,
                            _ => {
                                let l = atom_lits[i];
                                let val = model[l.var() as usize];
                                Some(if l.is_neg() { !val } else { val })
                            }
                        })
                        .collect();
                    match theory::check(
                        &st.arena,
                        &atoms,
                        &st.defs,
                        &assign,
                        st.true_node,
                        st.false_node,
                    ) {
                        TheoryVerdict::Consistent => return SatResult::Sat,
                        TheoryVerdict::Conflict(ids) => {
                            self.stats.theory_conflicts += 1;
                            // Core minimization: a short blocking clause
                            // prunes exponentially more models than
                            // negating the whole assignment.
                            let restrict = |core: &[crate::atom::AtomId]| {
                                let mut a: Vec<Option<bool>> = vec![None; assign.len()];
                                for id in core {
                                    a[id.0 as usize] = assign[id.0 as usize];
                                }
                                a
                            };
                            let mut core = ids.clone();
                            let check_core = |core: &[crate::atom::AtomId]| {
                                matches!(
                                    theory::check(
                                        &st.arena,
                                        &atoms,
                                        &st.defs,
                                        &restrict(core),
                                        st.true_node,
                                        st.false_node,
                                    ),
                                    TheoryVerdict::Conflict(_)
                                )
                            };
                            // A core covering every assigned atom restricts
                            // to the assignment itself — already known to
                            // conflict, so skip the confirmation check.
                            let assigned = assign.iter().filter(|a| a.is_some()).count();
                            if core.len() >= assigned || check_core(&core) {
                                core = theory::minimize_core(core, check_core);
                            }
                            let clause: Vec<Lit> = core
                                .iter()
                                .map(|id| {
                                    let l = atom_lits[id.0 as usize];
                                    match assign[id.0 as usize] {
                                        Some(true) => l.negate(),
                                        _ => l,
                                    }
                                })
                                .collect();
                            if clause.is_empty() {
                                return SatResult::Unsat;
                            }
                            cnf.add_clause(clause);
                        }
                    }
                }
            }
        }
        SatResult::Unknown
    }

    /// Checks validity of `hyps ⇒ goal`: true only when the negation is
    /// proven unsatisfiable (Unknown answers count as *not valid*, the
    /// conservative direction for verification).
    ///
    /// With a [`VcCache`] attached, the refutation query is canonicalized
    /// first; cached Unsat fingerprints answer without solving, and
    /// misses solve the canonical form and memoize an Unsat outcome.
    pub fn is_valid(&mut self, env: &dyn SortLookup, hyps: &[Pred], goal: &Pred) -> bool {
        let _sp = rsc_obs::span!("smt-query");
        let neg_goal = Pred::not(goal.clone());
        let mut preds: Vec<&Pred> = hyps.iter().collect();
        preds.push(&neg_goal);
        let r = match self.cache.clone() {
            Some(cache) => {
                let canonical = canonical_query_refs(env, &preds);
                if cache.probe(&canonical.key) {
                    self.stats.cache_hits += 1;
                    true
                } else {
                    self.stats.cache_misses += 1;
                    // Solve the canonical form under an overlay of the
                    // canonical binders — a pair of borrows, not a clone
                    // of the source environment.
                    let canon_env = SortScope::new(env, &canonical.binders);
                    let unsat = self.is_sat(&canon_env, &canonical.preds) == SatResult::Unsat;
                    if unsat {
                        cache.record_unsat(canonical.key);
                    }
                    unsat
                }
            }
            None => self.is_sat_refs(env, &preds) == SatResult::Unsat,
        };
        if r {
            self.stats.valid += 1;
        }
        r
    }

    /// Like [`Solver::is_valid`], but solving inside the persistent
    /// incremental context `ctx` instead of a fresh encoder/CNF.
    ///
    /// The context caches the encoding of every hypothesis and goal it
    /// has seen under activation literals, so repeated queries over the
    /// same constraint (the fixpoint weakening loop) re-solve only the
    /// delta. With a [`VcCache`] attached, the canonical fingerprint is
    /// probed first; on a miss the *original* query form is solved — the
    /// canonical α-renamed form would defeat context reuse — and an
    /// Unsat verdict is recorded under the canonical key. Both forms
    /// refute the same conjunction, so the cached verdict is sound; they
    /// can differ only on round-capped (`Unknown`) queries, which the
    /// cache never stores.
    pub fn is_valid_ctx(
        &mut self,
        ctx: &mut crate::incr::IncrContext,
        env: &dyn SortLookup,
        hyps: &[Pred],
        goal: &Pred,
    ) -> bool {
        let _sp = rsc_obs::span!("smt-query");
        let r = match self.cache.clone() {
            Some(cache) => {
                let neg_goal = Pred::not(goal.clone());
                let mut preds: Vec<&Pred> = hyps.iter().collect();
                preds.push(&neg_goal);
                let canonical = canonical_query_refs(env, &preds);
                if cache.probe(&canonical.key) {
                    self.stats.cache_hits += 1;
                    true
                } else {
                    self.stats.cache_misses += 1;
                    let unsat = ctx.query(env, hyps, goal, &mut self.stats, self.max_rounds)
                        == SatResult::Unsat;
                    if unsat {
                        cache.record_unsat(canonical.key);
                    }
                    unsat
                }
            }
            None => {
                ctx.query(env, hyps, goal, &mut self.stats, self.max_rounds) == SatResult::Unsat
            }
        };
        if r {
            self.stats.valid += 1;
        }
        r
    }
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_logic::{CmpOp, SortEnv, Term};

    fn trivially_valid() -> Pred {
        Pred::cmp(CmpOp::Le, Term::int(0), Term::int(1))
    }

    /// Per-bundle reporting relies on `take` zeroing the counters: before
    /// this existed, readers of `stats` after each bundle saw cumulative
    /// totals and attributed every earlier bundle's queries to the last.
    #[test]
    fn stats_take_resets_per_bundle_counters() {
        let env = SortEnv::new();
        let goal = trivially_valid();
        let mut s = Solver::new();
        assert!(s.is_valid(&env, &[], &goal));
        let first = s.stats.take();
        assert_eq!(first.queries, 1);
        assert_eq!(s.stats, SolverStats::default(), "take must reset");
        assert!(s.is_valid(&env, &[], &goal));
        assert_eq!(s.stats.queries, 1, "second bundle counts only itself");
        let mut merged = first;
        merged.merge(&s.stats);
        assert_eq!(merged.queries, 2);
        assert_eq!(merged.valid, 2);
    }

    #[test]
    fn cache_hits_skip_solving() {
        let env = SortEnv::new();
        let goal = trivially_valid();
        let cache = VcCache::shared();
        let mut a = Solver::with_cache(cache.clone());
        assert!(a.is_valid(&env, &[], &goal));
        assert_eq!(a.stats.cache_misses, 1);
        let mut b = Solver::with_cache(cache);
        assert!(b.is_valid(&env, &[], &goal));
        assert_eq!(b.stats.cache_hits, 1);
        assert_eq!(b.stats.queries, 0, "hit must not run the SAT core");
    }
}
