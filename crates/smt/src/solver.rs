//! The DPLL(T) driver: lazy SMT by CDCL enumeration of propositional
//! models with theory-conflict blocking clauses.

use rsc_logic::{Pred, SortEnv};

use crate::atom::{AtomData, Formula};
use crate::bv::Blaster;
use crate::cnf::{tseitin, CnfStore};
use crate::encode::Encoder;
use crate::sat::{Lit, SatOutcome, Var};
use crate::theory::{self, TheoryVerdict};

/// The answer of a satisfiability query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// A theory-consistent model exists.
    Sat,
    /// No model exists.
    Unsat,
    /// The solver gave up (resource caps or unencodable input). Validity
    /// checking treats this as "not proven".
    Unknown,
}

/// Cumulative solver statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Number of satisfiability queries.
    pub queries: u64,
    /// Number of validity queries answered "valid".
    pub valid: u64,
    /// Total SAT rounds across all queries.
    pub sat_rounds: u64,
    /// Total theory conflicts (blocking clauses added).
    pub theory_conflicts: u64,
}

/// An SMT solver for the RSC refinement logic.
///
/// Validity of a verification condition `⟦Γ⟧ ⇒ p ⇒ q` is checked by
/// refuting `⟦Γ⟧ ∧ p ∧ ¬q` (§2.1.1 of the paper).
///
/// ```
/// use rsc_logic::{CmpOp, Pred, Sort, SortEnv, Term};
/// use rsc_smt::Solver;
///
/// let mut env = SortEnv::new();
/// env.bind("a", Sort::Ref);
/// env.bind("v", Sort::Int);
/// // 0 < len(a) ⊢ v = 0 ⇒ 0 ≤ v ∧ v < len(a)   (the `head` example VC)
/// let len_a = Term::len_of(Term::var("a"));
/// let hyp = Pred::cmp(CmpOp::Lt, Term::int(0), len_a.clone());
/// let lhs = Pred::vv_eq(Term::int(0));
/// let rhs = Pred::and(vec![
///     Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
///     Pred::cmp(CmpOp::Lt, Term::vv(), len_a),
/// ]);
/// let mut solver = Solver::new();
/// assert!(solver.is_valid(&env, &[hyp, lhs], &rhs));
/// ```
pub struct Solver {
    /// Statistics, cumulative over the solver's lifetime.
    pub stats: SolverStats,
    max_rounds: usize,
}

impl Solver {
    /// Creates a solver with default resource limits.
    pub fn new() -> Self {
        Solver {
            stats: SolverStats::default(),
            max_rounds: 600,
        }
    }

    /// Checks satisfiability of the conjunction of `preds` under `env`.
    pub fn is_sat(&mut self, env: &SortEnv, preds: &[Pred]) -> SatResult {
        self.stats.queries += 1;
        let mut enc = Encoder::new(env);
        let mut formulas = Vec::new();
        for p in preds {
            match enc.encode_pred(p, true) {
                Ok(f) => match f.simplify() {
                    Formula::Const(true) => {}
                    Formula::Const(false) => return SatResult::Unsat,
                    g => formulas.push(g),
                },
                Err(_) => return SatResult::Unknown,
            }
        }
        if formulas.is_empty() && enc.defs.is_empty() {
            return SatResult::Sat;
        }

        let mut cnf = CnfStore::new();
        let mut blaster = Blaster::new();
        let atoms = enc.atoms.clone();
        let mut atom_lits: Vec<Lit> = Vec::with_capacity(atoms.len());
        for a in &atoms {
            match a {
                AtomData::BvEq(x, y) => {
                    let l = blaster.eq_lit(x, y, &mut cnf);
                    atom_lits.push(l);
                }
                _ => {
                    let v: Var = cnf.new_var();
                    atom_lits.push(Lit::pos(v));
                }
            }
        }
        let lookup = |a: crate::atom::AtomId, pol: bool| {
            let l = atom_lits[a.0 as usize];
            if pol {
                l
            } else {
                l.negate()
            }
        };
        for f in &formulas {
            let root = tseitin(f, &lookup, &mut cnf);
            cnf.add_clause(vec![root]);
        }

        for _round in 0..self.max_rounds {
            self.stats.sat_rounds += 1;
            match cnf.solve() {
                SatOutcome::Unsat => return SatResult::Unsat,
                SatOutcome::Sat(model) => {
                    let assign: Vec<Option<bool>> = atoms
                        .iter()
                        .enumerate()
                        .map(|(i, a)| match a {
                            AtomData::BvEq(..) => None,
                            _ => {
                                let l = atom_lits[i];
                                let val = model[l.var() as usize];
                                Some(if l.is_neg() { !val } else { val })
                            }
                        })
                        .collect();
                    match theory::check(
                        &enc.arena,
                        &atoms,
                        &enc.defs,
                        &assign,
                        enc.true_node,
                        enc.false_node,
                    ) {
                        TheoryVerdict::Consistent => return SatResult::Sat,
                        TheoryVerdict::Conflict(ids) => {
                            self.stats.theory_conflicts += 1;
                            // Greedy core minimization: a short blocking
                            // clause prunes exponentially more models than
                            // negating the whole assignment.
                            let restrict = |core: &[crate::atom::AtomId]| {
                                let mut a: Vec<Option<bool>> = vec![None; assign.len()];
                                for id in core {
                                    a[id.0 as usize] = assign[id.0 as usize];
                                }
                                a
                            };
                            let mut core = ids.clone();
                            let check_core = |core: &[crate::atom::AtomId]| {
                                matches!(
                                    theory::check(
                                        &enc.arena,
                                        &atoms,
                                        &enc.defs,
                                        &restrict(core),
                                        enc.true_node,
                                        enc.false_node,
                                    ),
                                    TheoryVerdict::Conflict(_)
                                )
                            };
                            if check_core(&core) {
                                let mut i = 0;
                                while i < core.len() && core.len() > 1 {
                                    let mut trial = core.clone();
                                    trial.remove(i);
                                    if check_core(&trial) {
                                        core = trial;
                                    } else {
                                        i += 1;
                                    }
                                }
                            }
                            let clause: Vec<Lit> = core
                                .iter()
                                .map(|id| {
                                    let l = atom_lits[id.0 as usize];
                                    match assign[id.0 as usize] {
                                        Some(true) => l.negate(),
                                        _ => l,
                                    }
                                })
                                .collect();
                            if clause.is_empty() {
                                return SatResult::Unsat;
                            }
                            cnf.add_clause(clause);
                        }
                    }
                }
            }
        }
        SatResult::Unknown
    }

    /// Checks validity of `hyps ⇒ goal`: true only when the negation is
    /// proven unsatisfiable (Unknown answers count as *not valid*, the
    /// conservative direction for verification).
    pub fn is_valid(&mut self, env: &SortEnv, hyps: &[Pred], goal: &Pred) -> bool {
        let mut preds: Vec<Pred> = hyps.to_vec();
        preds.push(Pred::not(goal.clone()));
        let r = self.is_sat(env, &preds) == SatResult::Unsat;
        if r {
            self.stats.valid += 1;
        }
        r
    }
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}
