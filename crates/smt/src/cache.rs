//! A shared verification-condition cache.
//!
//! The Liquid fixpoint re-proves the same implication many times: every
//! outer iteration re-validates each kept qualifier of every unchanged
//! constraint, overload conjuncts duplicate whole environments, and loop
//! bodies re-check the same invariant obligations. The parallel checking
//! driver therefore shares one [`VcCache`] across all per-function solver
//! instances.
//!
//! # Canonical fingerprints
//!
//! Two queries that differ only in variable names (SSA temporaries,
//! overload parameter copies) or in hypothesis order are the same VC. A
//! query `is_sat(Γ, p₁ ∧ … ∧ pₙ)` is canonicalized before lookup:
//!
//! 1. the conjuncts are sorted by their rendering (a name-stable order),
//! 2. variables are alpha-renamed via [`Subst`] to `#0, #1, …` in order
//!    of first occurrence over the sorted sequence,
//! 3. the key is the renamed conjuncts plus the sorts of `#0, #1, …`.
//!
//! Key equality therefore implies the queries are alpha-variants of the
//! same conjunction under the same sort assignment, so they are
//! equisatisfiable. Uninterpreted function symbols are *not* renamed;
//! instead, the key records the *signature* of every function symbol and
//! field selector the canonical conjuncts apply (step 4 below). Two
//! programs that reuse a symbol name at different signatures therefore
//! get different keys, which is what makes it legal for a cache to
//! outlive a single checker run: incremental check sessions (the
//! `rsc_incr` crate) share one cache across every re-check of an evolving
//! program, and across programs, without consulting any class table.
//!
//! # Soundness contract: only Unsat is memoized
//!
//! Only **Unsat** answers (= proven-valid VCs) are stored. An Unsat
//! answer is a proof and remains correct wherever the same canonical
//! query reappears. Sat and Unknown answers are *not* cached: Unknown
//! depends on resource caps, and a cached Sat could mask a later
//! refutation if the solver's encoding is ever extended — caching either
//! could only ever turn a rejected program into an accepted one, which is
//! the unsound direction. A false cache *miss* merely re-runs the solver.
//!
//! # Determinism
//!
//! When a cache is attached, [`crate::Solver::is_valid`] solves the
//! *canonical* form of the query (the exact conjunct sequence hashed into
//! the key), so the verdict is a pure function of the canonical key. Hit
//! or miss, first thread or last, the answer is identical — this is what
//! makes parallel checking produce byte-identical diagnostics for any
//! worker count. (A cached solver may differ from an *uncached* one on
//! queries cut off by the round cap — conjunct order steers the search —
//! but only between `Unsat` and `Unknown`, i.e. in the conservative
//! reject-more direction, and deterministically so for a given mode.)

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt::Write;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rsc_logic::{FunSig, Pred, Sort, SortLookup, Subst, Sym, Term};

/// Number of independently locked shards. Contention is low (queries are
/// long compared to a hash lookup), 16 keeps it negligible.
const SHARDS: usize = 16;

/// Cache counters at one point in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the solver.
    pub misses: u64,
    /// Canonical VCs currently stored.
    pub entries: u64,
    /// Entries evicted by the capacity bound (0 for unbounded caches).
    pub evictions: u64,
}

impl CacheCounters {
    /// Hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe map of canonical VC fingerprints proven Unsat, sharded
/// to keep lock contention off the solving hot path.
///
/// # Bounding (generation-count LRU)
///
/// Long-lived incremental sessions share one cache across every
/// re-check, so an unbounded cache grows for the life of the session.
/// With a capacity set ([`VcCache::with_capacity`],
/// `CheckerOptions::cache_capacity`, `RSC_CACHE_CAP`), every entry
/// carries the global *generation* (a counter bumped on each probe and
/// record) at which it was last touched; when a shard exceeds its slice
/// of the capacity, the oldest-generation entries are evicted. Evicting
/// an Unsat proof is always sound — the next identical query merely
/// re-runs the solver on the same canonical form and re-proves it, so
/// verdicts (and diagnostics) are unchanged at any capacity.
#[derive(Debug, Default)]
pub struct VcCache {
    /// Canonical key → generation of last touch.
    shards: [Mutex<HashMap<String, u64>>; SHARDS],
    /// Max entries per shard (0 = unbounded).
    shard_cap: usize,
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl VcCache {
    /// An empty, unbounded cache.
    pub fn new() -> VcCache {
        VcCache::default()
    }

    /// An empty cache bounded to roughly `capacity` entries (`0` =
    /// unbounded). The bound is enforced per shard, so the effective
    /// cap is `capacity` rounded up to a multiple of the shard count.
    pub fn with_capacity(capacity: usize) -> VcCache {
        VcCache {
            shard_cap: capacity.div_ceil(SHARDS),
            ..VcCache::default()
        }
    }

    /// An empty unbounded cache behind an [`Arc`], ready to share
    /// across solvers.
    pub fn shared() -> Arc<VcCache> {
        Arc::new(VcCache::new())
    }

    /// [`VcCache::with_capacity`] behind an [`Arc`].
    pub fn shared_with_capacity(capacity: usize) -> Arc<VcCache> {
        Arc::new(VcCache::with_capacity(capacity))
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, u64>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn next_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up a canonical key, bumping the hit/miss counters. `true`
    /// means the key was previously proven Unsat. A hit refreshes the
    /// entry's generation (LRU touch).
    pub fn probe(&self, key: &str) -> bool {
        let generation = self.next_generation();
        let hit = match self.shard(key).lock().unwrap().get_mut(key) {
            Some(entry) => {
                *entry = generation;
                true
            }
            None => false,
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Records a canonical key as proven Unsat. When the key's shard
    /// exceeds its capacity slice, the oldest-generation entries are
    /// evicted in one batch down to `cap - max(cap/8, 1)` (never below
    /// one entry, so the just-recorded proof always survives). For
    /// non-tiny caps that leaves real headroom: a shard pinned at
    /// capacity pays one sort every `cap/8` inserts — amortized
    /// `O(log cap)` per insert — instead of a full scan on every one.
    /// (At `shard_cap == 1` the headroom degenerates and every insert
    /// sorts, but that sort is over two entries.)
    pub fn record_unsat(&self, key: String) {
        let generation = self.next_generation();
        let mut shard = self.shard(&key).lock().unwrap();
        shard.insert(key, generation);
        if self.shard_cap > 0 && shard.len() > self.shard_cap {
            let keep = (self.shard_cap - (self.shard_cap / 8).max(1)).max(1);
            let evict = shard.len() - keep;
            // Generations are unique (a global fetch_add), so selecting
            // the `evict`-th smallest gives an exact cutoff — no key
            // strings are cloned and the work under the lock is O(n).
            let mut generations: Vec<u64> = shard.values().copied().collect();
            let (_, &mut cutoff, _) = generations.select_nth_unstable(evict - 1);
            shard.retain(|_, generation| *generation > cutoff);
            self.evictions.fetch_add(evict as u64, Ordering::Relaxed);
        }
    }

    /// Clones every stored key — the disk tier's flush source. Shards
    /// are locked one at a time, so concurrent probes only ever wait on
    /// their own shard.
    pub fn snapshot_keys(&self) -> Vec<String> {
        let mut keys = Vec::new();
        for shard in &self.shards {
            keys.extend(shard.lock().unwrap().keys().cloned());
        }
        keys
    }

    /// Seeds the cache with keys proven Unsat in an earlier process (the
    /// disk tier's load path). Seeded entries join the LRU like any
    /// other record.
    pub fn seed(&self, keys: impl IntoIterator<Item = String>) {
        for k in keys {
            self.record_unsat(k);
        }
    }

    /// Current counters (entries counted across all shards).
    pub fn counters(&self) -> CacheCounters {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap().len() as u64)
            .sum();
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// A canonicalized `is_sat` query: the fingerprint key, the canonical
/// conjunct sequence it denotes (sorted, alpha-renamed, deduped), and the
/// canonical binders `#0, #1, …` with their sorts. Solving the conjuncts
/// under a [`rsc_logic::SortScope`] layering `binders` over the source
/// environment is equisatisfiable with solving the original query — the
/// overlay is a pair of borrows, so neither a hit nor a miss ever clones
/// an environment.
#[derive(Debug)]
pub struct CanonicalQuery {
    /// The cache fingerprint.
    pub key: String,
    /// The canonical conjuncts (exactly what the key hashes).
    pub preds: Vec<Pred>,
    /// Sorts of the canonical variables, indexed by their number.
    pub binders: Vec<(Sym, Sort)>,
}

/// Renders the *effective* signature of an applied symbol into the key.
/// Field selectors are special-cased: sorting only ever reads their
/// result sort (defaulting to `int` when unregistered), so that is all
/// the key needs to record.
fn write_sig(key: &mut String, env: &dyn SortLookup, f: &Sym) {
    let _ = write!(key, "{f}!");
    if f.as_str().starts_with("field$") {
        let r = env.sig_of_fun(f).map(|s| s.result()).unwrap_or(Sort::Int);
        let _ = write!(key, "{r};");
        return;
    }
    match env.sig_of_fun(f) {
        Some(FunSig::Fixed(args, r)) => {
            for a in args {
                let _ = write!(key, "{a},");
            }
            let _ = write!(key, "->{r};");
        }
        Some(FunSig::AnyArgs(n, r)) => {
            let _ = write!(key, "any{n}->{r};");
        }
        None => {
            let _ = write!(key, "?;");
        }
    }
}

/// Collects every uninterpreted symbol a term applies: `App` heads and
/// `field$f` selectors (whose sorts come from the same signature table).
fn applied_syms_term(t: &Term, out: &mut BTreeSet<Sym>) {
    match t {
        Term::Var(_) | Term::IntLit(_) | Term::BoolLit(_) | Term::StrLit(_) | Term::BvLit(_) => {}
        Term::Field(b, f) => {
            out.insert(Sym::from(format!("field${f}")));
            applied_syms_term(b, out);
        }
        Term::App(f, args) => {
            out.insert(f.clone());
            for a in args {
                applied_syms_term(a, out);
            }
        }
        Term::Bin(_, a, b) => {
            applied_syms_term(a, out);
            applied_syms_term(b, out);
        }
        Term::Neg(a) => applied_syms_term(a, out),
    }
}

fn applied_syms_pred(p: &Pred, out: &mut BTreeSet<Sym>) {
    match p {
        Pred::True | Pred::False => {}
        Pred::And(ps) | Pred::Or(ps) => ps.iter().for_each(|q| applied_syms_pred(q, out)),
        Pred::Not(q) => applied_syms_pred(q, out),
        Pred::Imp(a, b) | Pred::Iff(a, b) => {
            applied_syms_pred(a, out);
            applied_syms_pred(b, out);
        }
        Pred::Cmp(_, a, b) => {
            applied_syms_term(a, out);
            applied_syms_term(b, out);
        }
        Pred::App(f, args) => {
            out.insert(f.clone());
            for a in args {
                applied_syms_term(a, out);
            }
        }
        Pred::TermPred(t) => applied_syms_term(t, out),
        Pred::KVar(_, s) => {
            for (_, t) in s.iter() {
                applied_syms_term(t, out);
            }
        }
    }
}

/// Canonicalizes an `is_sat` query (see [`CanonicalQuery`]).
pub fn canonical_query(env: &dyn SortLookup, preds: &[Pred]) -> CanonicalQuery {
    let refs: Vec<&Pred> = preds.iter().collect();
    canonical_query_refs(env, &refs)
}

/// [`canonical_query`] over borrowed conjuncts: the validity entry
/// points canonicalize `hyps + ¬goal` on every query, and borrowing
/// avoids deep-cloning the hypothesis predicates just to build the key.
pub fn canonical_query_refs(env: &dyn SortLookup, preds: &[&Pred]) -> CanonicalQuery {
    // 1. Name-stable order: sort conjuncts by their original rendering.
    let mut rendered: Vec<(String, &Pred)> = preds
        .iter()
        .map(|&p| {
            let mut s = String::new();
            p.write_into(&mut s);
            (s, p)
        })
        .collect();
    rendered.sort_by(|a, b| a.0.cmp(&b.0));
    rendered.dedup_by(|a, b| a.0 == b.0);

    // 2. Alpha-rename free variables to #0, #1, … in order of first
    //    occurrence over the sorted sequence (free_vars is a BTreeSet, so
    //    the within-predicate order is deterministic too).
    let mut order: Vec<Sym> = Vec::new();
    let mut seen: HashSet<Sym> = HashSet::new();
    for (_, p) in &rendered {
        for x in p.free_vars() {
            if seen.insert(x.clone()) {
                order.push(x);
            }
        }
    }
    let mut rename = Subst::new();
    for (i, x) in order.iter().enumerate() {
        rename.push(x.clone(), Term::var(format!("#{i}")));
    }
    let canonical: Vec<Pred> = rendered.iter().map(|(_, p)| rename.apply_pred(p)).collect();

    // 3. The key: canonical binder sorts, then the canonical conjuncts.
    let mut binders = Vec::with_capacity(order.len());
    let mut key = String::with_capacity(64 + 32 * canonical.len());
    for (i, x) in order.iter().enumerate() {
        match env.var_sort(x) {
            Some(s) => {
                binders.push((Sym::from(format!("#{i}")), s));
                let _ = write!(key, "#{i}:{s};");
            }
            None => {
                let _ = write!(key, "#{i}:?;");
            }
        }
    }
    // 4. The signatures of every applied uninterpreted symbol. With these
    //    in the key, key equality no longer presumes a fixed class table,
    //    so the cache may be shared across checker runs (incremental
    //    sessions) and across different programs.
    let mut applied: BTreeSet<Sym> = BTreeSet::new();
    for p in &canonical {
        applied_syms_pred(p, &mut applied);
    }
    for f in &applied {
        write_sig(&mut key, env, f);
    }
    key.push('\u{1}');
    for p in &canonical {
        p.write_into(&mut key);
        key.push('\u{2}');
    }
    CanonicalQuery {
        key,
        preds: canonical,
        binders,
    }
}

// ---------------------------------------------------------- disk tier ---

/// The persistent on-disk tier of the VC cache: canonical Unsat
/// fingerprints survive across processes, CI runs and machines, like a
/// build cache.
///
/// # Soundness and versioning
///
/// The disk tier stores exactly what [`VcCache`] stores — canonical keys
/// proven **Unsat** — so it inherits the same contract: a hit can only
/// skip re-proving a proof, never accept what a solver would reject,
/// *provided the solver that wrote the entry proves the same things as
/// the solver reading it*. That proviso is the version: every file is
/// named `vc-{version:016x}.vcc` and carries a `rsc-vc-cache v1
/// {version:016x}` header, where `version` hashes everything a verdict
/// depends on beyond the canonical key itself — the qualifier set and
/// sort environment (via the session's global fingerprint) and
/// [`ENCODER_VERSION`], bumped whenever the encoder/theory pipeline
/// changes what a canonical key *means*. A solver with a different
/// qualifier set or encoder simply opens a different file and starts
/// cold. Stale files are never misread, only ignored.
///
/// # Format and crash tolerance
///
/// After the header line, the file is a sequence of length-prefixed
/// records (`u32` little-endian byte length, then the key's UTF-8
/// bytes) — canonical keys embed `\u{1}`/`\u{2}` separators and
/// arbitrary renderings, so a line-oriented format would corrupt.
/// Writes are append-only; a torn tail (crash mid-flush) truncates the
/// load at the last complete record and loses nothing but uncommitted
/// proofs. A bad header means "not our file": the cache starts cold and
/// rewrites it on the next flush.
#[derive(Debug)]
pub struct DiskCache {
    path: std::path::PathBuf,
    version: u64,
    /// Keys known to be on disk already (loaded or flushed), so a flush
    /// appends only the delta.
    persisted: Mutex<HashSet<String>>,
    loaded: usize,
}

/// Bumped whenever the encoder, theory combination, or canonicalization
/// changes the meaning of a canonical VC fingerprint. Part of every
/// [`DiskCache`] version hash.
pub const ENCODER_VERSION: u64 = 1;

const DISK_MAGIC: &str = "rsc-vc-cache v1";

impl DiskCache {
    /// Opens (or initializes) the disk tier for `version` in `dir`,
    /// loading every complete record of a matching existing file. The
    /// caller should fold the qualifier-set/environment fingerprint and
    /// [`ENCODER_VERSION`] into `version`.
    pub fn open(dir: &std::path::Path, version: u64) -> std::io::Result<DiskCache> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("vc-{version:016x}.vcc"));
        let mut persisted = HashSet::new();
        match std::fs::read(&path) {
            Ok(bytes) => {
                let header = format!("{DISK_MAGIC} {version:016x}\n");
                if !bytes.starts_with(header.as_bytes()) {
                    // Not our file (corrupt header): drop it so the next
                    // flush rewrites a clean one.
                    let _ = std::fs::remove_file(&path);
                }
                if let Some(mut rest) = bytes.strip_prefix(header.as_bytes()) {
                    while rest.len() >= 4 {
                        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
                        let Some(body) = rest.get(4..4 + len) else {
                            break; // torn tail: keep what we have
                        };
                        if let Ok(key) = std::str::from_utf8(body) {
                            persisted.insert(key.to_string());
                        }
                        rest = &rest[4 + len..];
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let loaded = persisted.len();
        Ok(DiskCache {
            path,
            version,
            persisted: Mutex::new(persisted),
            loaded,
        })
    }

    /// Number of keys loaded from an existing file at open.
    pub fn loaded(&self) -> usize {
        self.loaded
    }

    /// Seeds `cache` with every key loaded from disk.
    pub fn load_into(&self, cache: &VcCache) {
        cache.seed(self.persisted.lock().unwrap().iter().cloned());
    }

    /// Appends every key of `cache` not yet on disk; returns how many
    /// records were written. Creates the file (with header) on first
    /// write. Concurrent flushes of the same `DiskCache` serialize on
    /// the internal lock; distinct processes append independently, and
    /// duplicate records across processes are harmless (loading is
    /// set-based).
    pub fn flush(&self, cache: &VcCache) -> std::io::Result<usize> {
        use std::io::Write as _;
        let keys = cache.snapshot_keys();
        let mut persisted = self.persisted.lock().unwrap();
        let fresh: Vec<&String> = keys.iter().filter(|k| !persisted.contains(*k)).collect();
        if fresh.is_empty() {
            return Ok(0);
        }
        let exists = self.path.exists();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut buf = Vec::new();
        if !exists {
            let version = self.version;
            buf.extend_from_slice(format!("{DISK_MAGIC} {version:016x}\n").as_bytes());
        }
        for k in &fresh {
            buf.extend_from_slice(&(k.len() as u32).to_le_bytes());
            buf.extend_from_slice(k.as_bytes());
        }
        f.write_all(&buf)?;
        f.flush()?;
        let written = fresh.len();
        for k in fresh {
            persisted.insert(k.clone());
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_logic::{CmpOp, Sort, SortEnv};

    fn env() -> SortEnv {
        let mut e = SortEnv::new();
        e.bind("x", Sort::Int);
        e.bind("y", Sort::Int);
        e.bind("a", Sort::Int);
        e.bind("b", Sort::Int);
        e
    }

    #[test]
    fn alpha_variants_share_a_key() {
        let e = env();
        let p1 = vec![
            Pred::cmp(CmpOp::Lt, Term::var("x"), Term::var("y")),
            Pred::cmp(CmpOp::Le, Term::int(0), Term::var("x")),
        ];
        let p2 = vec![
            Pred::cmp(CmpOp::Le, Term::int(0), Term::var("a")),
            Pred::cmp(CmpOp::Lt, Term::var("a"), Term::var("b")),
        ];
        let k1 = canonical_query(&e, &p1).key;
        let k2 = canonical_query(&e, &p2).key;
        assert_eq!(k1, k2, "renamed + reordered query must share the key");
    }

    #[test]
    fn different_sorts_split_the_key() {
        let mut e1 = SortEnv::new();
        e1.bind("x", Sort::Int);
        let mut e2 = SortEnv::new();
        e2.bind("x", Sort::Ref);
        let p = vec![Pred::eq(Term::var("x"), Term::var("x"))];
        let k1 = canonical_query(&e1, &p).key;
        let k2 = canonical_query(&e2, &p).key;
        assert_ne!(k1, k2);
    }

    #[test]
    fn probe_and_record() {
        let c = VcCache::new();
        assert!(!c.probe("k"));
        c.record_unsat("k".to_string());
        assert!(c.probe("k"));
        let counters = c.counters();
        assert_eq!(counters.hits, 1);
        assert_eq!(counters.misses, 1);
        assert_eq!(counters.entries, 1);
        assert_eq!(counters.evictions, 0);
    }

    #[test]
    fn capacity_bounds_entries_and_counts_evictions() {
        // cap 16 → one entry per shard; hammering one shard must stay
        // bounded and evict in LRU (generation) order.
        let c = VcCache::with_capacity(16);
        for i in 0..100 {
            c.record_unsat(format!("key-{i}"));
        }
        let counters = c.counters();
        assert!(
            counters.entries <= 16,
            "entries {} exceed capacity",
            counters.entries
        );
        assert_eq!(counters.evictions + counters.entries, 100);
    }

    #[test]
    fn lru_prefers_recently_probed_entries() {
        // shard_cap = 8 (capacity 8 × SHARDS): fill one shard to its
        // cap, refresh the *oldest* entry by probing it, then overflow
        // the shard. The batch eviction must drop the oldest
        // *generations* — which, thanks to the probe's LRU touch, are
        // the unprobed early inserts, not the probed one.
        let c = VcCache::with_capacity(8 * SHARDS);
        let anchor = "anchor".to_string();
        let mut same_shard: Vec<String> = vec![anchor.clone()];
        for i in 0.. {
            if same_shard.len() == 9 {
                break;
            }
            let k = format!("collide-{i}");
            if std::ptr::eq(c.shard(&k), c.shard(&anchor)) {
                same_shard.push(k);
            }
            assert!(i < 1_000_000, "could not find colliding keys");
        }
        // Insert anchor first (oldest), then 7 more: shard at cap 8.
        for k in &same_shard[..8] {
            c.record_unsat(k.clone());
        }
        assert_eq!(c.counters().evictions, 0);
        // Refresh the oldest entry, then overflow.
        assert!(c.probe(&anchor));
        c.record_unsat(same_shard[8].clone());
        assert!(c.counters().evictions > 0);
        assert!(
            c.probe(&anchor),
            "probed entry must survive eviction (LRU touch)"
        );
        assert!(
            !c.probe(&same_shard[1]),
            "oldest unprobed entry must be evicted"
        );
        assert!(c.probe(&same_shard[8]), "latest insert must survive");
        // Unbounded caches never evict.
        let u = VcCache::new();
        for i in 0..1000 {
            u.record_unsat(format!("k{i}"));
        }
        assert_eq!(u.counters().evictions, 0);
        assert_eq!(u.counters().entries, 1000);
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("rsc-vcc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn disk_round_trip_preserves_control_characters() {
        let dir = scratch_dir("roundtrip");
        let warm = VcCache::new();
        // Real canonical keys embed \u{1}/\u{2}; throw in a newline too.
        let keys = [
            "plain".to_string(),
            "a\u{1}b\u{2}c".to_string(),
            "multi\nline".to_string(),
        ];
        for k in &keys {
            warm.record_unsat(k.clone());
        }
        let disk = DiskCache::open(&dir, 42).unwrap();
        assert_eq!(disk.loaded(), 0);
        assert_eq!(disk.flush(&warm).unwrap(), 3);
        assert_eq!(
            disk.flush(&warm).unwrap(),
            0,
            "second flush appends nothing"
        );

        let disk2 = DiskCache::open(&dir, 42).unwrap();
        assert_eq!(disk2.loaded(), 3);
        let cold = VcCache::new();
        disk2.load_into(&cold);
        for k in &keys {
            assert!(cold.probe(k), "key {k:?} lost in the disk round trip");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_versions_are_isolated() {
        let dir = scratch_dir("versions");
        let warm = VcCache::new();
        warm.record_unsat("proof".to_string());
        let v1 = DiskCache::open(&dir, 1).unwrap();
        v1.flush(&warm).unwrap();
        // A different version (qualifier set / encoder changed) must not
        // see v1's proofs.
        let v2 = DiskCache::open(&dir, 2).unwrap();
        assert_eq!(v2.loaded(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_tolerates_torn_tail_and_bad_header() {
        use std::io::Write as _;
        let dir = scratch_dir("torn");
        let warm = VcCache::new();
        warm.record_unsat("alpha".to_string());
        warm.record_unsat("beta".to_string());
        let disk = DiskCache::open(&dir, 7).unwrap();
        disk.flush(&warm).unwrap();
        let path = dir.join(format!("vc-{:016x}.vcc", 7u64));
        // Simulate a crash mid-append: a length prefix with no body.
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&999u32.to_le_bytes()).unwrap();
            f.write_all(b"trunc").unwrap();
        }
        let reopened = DiskCache::open(&dir, 7).unwrap();
        assert_eq!(reopened.loaded(), 2, "complete records survive a torn tail");
        // A corrupt header means "not our file": load nothing, and the
        // file is dropped so the next flush rewrites it cleanly.
        std::fs::write(&path, b"garbage").unwrap();
        let bad = DiskCache::open(&dir, 7).unwrap();
        assert_eq!(bad.loaded(), 0);
        assert_eq!(bad.flush(&warm).unwrap(), 2);
        let again = DiskCache::open(&dir, 7).unwrap();
        assert_eq!(again.loaded(), 2, "flush after corruption rewrites cleanly");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
