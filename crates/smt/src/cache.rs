//! A shared verification-condition cache.
//!
//! The Liquid fixpoint re-proves the same implication many times: every
//! outer iteration re-validates each kept qualifier of every unchanged
//! constraint, overload conjuncts duplicate whole environments, and loop
//! bodies re-check the same invariant obligations. The parallel checking
//! driver therefore shares one [`VcCache`] across all per-function solver
//! instances.
//!
//! # Canonical fingerprints
//!
//! Two queries that differ only in variable names (SSA temporaries,
//! overload parameter copies) or in hypothesis order are the same VC. A
//! query `is_sat(Γ, p₁ ∧ … ∧ pₙ)` is canonicalized before lookup:
//!
//! 1. the conjuncts are sorted by their rendering (a name-stable order),
//! 2. variables are alpha-renamed via [`Subst`] to `#0, #1, …` in order
//!    of first occurrence over the sorted sequence,
//! 3. the key is the renamed conjuncts plus the sorts of `#0, #1, …`.
//!
//! Key equality therefore implies the queries are alpha-variants of the
//! same conjunction under the same sort assignment, so they are
//! equisatisfiable. Uninterpreted function symbols are *not* renamed;
//! instead, the key records the *signature* of every function symbol and
//! field selector the canonical conjuncts apply (step 4 below). Two
//! programs that reuse a symbol name at different signatures therefore
//! get different keys, which is what makes it legal for a cache to
//! outlive a single checker run: incremental check sessions (the
//! `rsc_incr` crate) share one cache across every re-check of an evolving
//! program, and across programs, without consulting any class table.
//!
//! # Soundness contract: only Unsat is memoized
//!
//! Only **Unsat** answers (= proven-valid VCs) are stored. An Unsat
//! answer is a proof and remains correct wherever the same canonical
//! query reappears. Sat and Unknown answers are *not* cached: Unknown
//! depends on resource caps, and a cached Sat could mask a later
//! refutation if the solver's encoding is ever extended — caching either
//! could only ever turn a rejected program into an accepted one, which is
//! the unsound direction. A false cache *miss* merely re-runs the solver.
//!
//! # Determinism
//!
//! When a cache is attached, [`crate::Solver::is_valid`] solves the
//! *canonical* form of the query (the exact conjunct sequence hashed into
//! the key), so the verdict is a pure function of the canonical key. Hit
//! or miss, first thread or last, the answer is identical — this is what
//! makes parallel checking produce byte-identical diagnostics for any
//! worker count. (A cached solver may differ from an *uncached* one on
//! queries cut off by the round cap — conjunct order steers the search —
//! but only between `Unsat` and `Unknown`, i.e. in the conservative
//! reject-more direction, and deterministically so for a given mode.)

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt::Write;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rsc_logic::{FunSig, Pred, Sort, SortLookup, Subst, Sym, Term};

/// Number of independently locked shards. Contention is low (queries are
/// long compared to a hash lookup), 16 keeps it negligible.
const SHARDS: usize = 16;

/// Cache counters at one point in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the solver.
    pub misses: u64,
    /// Canonical VCs currently stored.
    pub entries: u64,
    /// Entries evicted by the capacity bound (0 for unbounded caches).
    pub evictions: u64,
}

impl CacheCounters {
    /// Hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe map of canonical VC fingerprints proven Unsat, sharded
/// to keep lock contention off the solving hot path.
///
/// # Bounding (generation-count LRU)
///
/// Long-lived incremental sessions share one cache across every
/// re-check, so an unbounded cache grows for the life of the session.
/// With a capacity set ([`VcCache::with_capacity`],
/// `CheckerOptions::cache_capacity`, `RSC_CACHE_CAP`), every entry
/// carries the global *generation* (a counter bumped on each probe and
/// record) at which it was last touched; when a shard exceeds its slice
/// of the capacity, the oldest-generation entries are evicted. Evicting
/// an Unsat proof is always sound — the next identical query merely
/// re-runs the solver on the same canonical form and re-proves it, so
/// verdicts (and diagnostics) are unchanged at any capacity.
#[derive(Debug, Default)]
pub struct VcCache {
    /// Canonical key → generation of last touch.
    shards: [Mutex<HashMap<String, u64>>; SHARDS],
    /// Max entries per shard (0 = unbounded).
    shard_cap: usize,
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl VcCache {
    /// An empty, unbounded cache.
    pub fn new() -> VcCache {
        VcCache::default()
    }

    /// An empty cache bounded to roughly `capacity` entries (`0` =
    /// unbounded). The bound is enforced per shard, so the effective
    /// cap is `capacity` rounded up to a multiple of the shard count.
    pub fn with_capacity(capacity: usize) -> VcCache {
        VcCache {
            shard_cap: capacity.div_ceil(SHARDS),
            ..VcCache::default()
        }
    }

    /// An empty unbounded cache behind an [`Arc`], ready to share
    /// across solvers.
    pub fn shared() -> Arc<VcCache> {
        Arc::new(VcCache::new())
    }

    /// [`VcCache::with_capacity`] behind an [`Arc`].
    pub fn shared_with_capacity(capacity: usize) -> Arc<VcCache> {
        Arc::new(VcCache::with_capacity(capacity))
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, u64>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn next_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up a canonical key, bumping the hit/miss counters. `true`
    /// means the key was previously proven Unsat. A hit refreshes the
    /// entry's generation (LRU touch).
    pub fn probe(&self, key: &str) -> bool {
        let generation = self.next_generation();
        let hit = match self.shard(key).lock().unwrap().get_mut(key) {
            Some(entry) => {
                *entry = generation;
                true
            }
            None => false,
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Records a canonical key as proven Unsat. When the key's shard
    /// exceeds its capacity slice, the oldest-generation entries are
    /// evicted in one batch down to `cap - max(cap/8, 1)` (never below
    /// one entry, so the just-recorded proof always survives). For
    /// non-tiny caps that leaves real headroom: a shard pinned at
    /// capacity pays one sort every `cap/8` inserts — amortized
    /// `O(log cap)` per insert — instead of a full scan on every one.
    /// (At `shard_cap == 1` the headroom degenerates and every insert
    /// sorts, but that sort is over two entries.)
    pub fn record_unsat(&self, key: String) {
        let generation = self.next_generation();
        let mut shard = self.shard(&key).lock().unwrap();
        shard.insert(key, generation);
        if self.shard_cap > 0 && shard.len() > self.shard_cap {
            let keep = (self.shard_cap - (self.shard_cap / 8).max(1)).max(1);
            let evict = shard.len() - keep;
            // Generations are unique (a global fetch_add), so selecting
            // the `evict`-th smallest gives an exact cutoff — no key
            // strings are cloned and the work under the lock is O(n).
            let mut generations: Vec<u64> = shard.values().copied().collect();
            let (_, &mut cutoff, _) = generations.select_nth_unstable(evict - 1);
            shard.retain(|_, generation| *generation > cutoff);
            self.evictions.fetch_add(evict as u64, Ordering::Relaxed);
        }
    }

    /// Current counters (entries counted across all shards).
    pub fn counters(&self) -> CacheCounters {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap().len() as u64)
            .sum();
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// A canonicalized `is_sat` query: the fingerprint key, the canonical
/// conjunct sequence it denotes (sorted, alpha-renamed, deduped), and the
/// canonical binders `#0, #1, …` with their sorts. Solving the conjuncts
/// under a [`rsc_logic::SortScope`] layering `binders` over the source
/// environment is equisatisfiable with solving the original query — the
/// overlay is a pair of borrows, so neither a hit nor a miss ever clones
/// an environment.
#[derive(Debug)]
pub struct CanonicalQuery {
    /// The cache fingerprint.
    pub key: String,
    /// The canonical conjuncts (exactly what the key hashes).
    pub preds: Vec<Pred>,
    /// Sorts of the canonical variables, indexed by their number.
    pub binders: Vec<(Sym, Sort)>,
}

/// Renders the *effective* signature of an applied symbol into the key.
/// Field selectors are special-cased: sorting only ever reads their
/// result sort (defaulting to `int` when unregistered), so that is all
/// the key needs to record.
fn write_sig(key: &mut String, env: &dyn SortLookup, f: &Sym) {
    let _ = write!(key, "{f}!");
    if f.as_str().starts_with("field$") {
        let r = env.sig_of_fun(f).map(|s| s.result()).unwrap_or(Sort::Int);
        let _ = write!(key, "{r};");
        return;
    }
    match env.sig_of_fun(f) {
        Some(FunSig::Fixed(args, r)) => {
            for a in args {
                let _ = write!(key, "{a},");
            }
            let _ = write!(key, "->{r};");
        }
        Some(FunSig::AnyArgs(n, r)) => {
            let _ = write!(key, "any{n}->{r};");
        }
        None => {
            let _ = write!(key, "?;");
        }
    }
}

/// Collects every uninterpreted symbol a term applies: `App` heads and
/// `field$f` selectors (whose sorts come from the same signature table).
fn applied_syms_term(t: &Term, out: &mut BTreeSet<Sym>) {
    match t {
        Term::Var(_) | Term::IntLit(_) | Term::BoolLit(_) | Term::StrLit(_) | Term::BvLit(_) => {}
        Term::Field(b, f) => {
            out.insert(Sym::from(format!("field${f}")));
            applied_syms_term(b, out);
        }
        Term::App(f, args) => {
            out.insert(f.clone());
            for a in args {
                applied_syms_term(a, out);
            }
        }
        Term::Bin(_, a, b) => {
            applied_syms_term(a, out);
            applied_syms_term(b, out);
        }
        Term::Neg(a) => applied_syms_term(a, out),
    }
}

fn applied_syms_pred(p: &Pred, out: &mut BTreeSet<Sym>) {
    match p {
        Pred::True | Pred::False => {}
        Pred::And(ps) | Pred::Or(ps) => ps.iter().for_each(|q| applied_syms_pred(q, out)),
        Pred::Not(q) => applied_syms_pred(q, out),
        Pred::Imp(a, b) | Pred::Iff(a, b) => {
            applied_syms_pred(a, out);
            applied_syms_pred(b, out);
        }
        Pred::Cmp(_, a, b) => {
            applied_syms_term(a, out);
            applied_syms_term(b, out);
        }
        Pred::App(f, args) => {
            out.insert(f.clone());
            for a in args {
                applied_syms_term(a, out);
            }
        }
        Pred::TermPred(t) => applied_syms_term(t, out),
        Pred::KVar(_, s) => {
            for (_, t) in s.iter() {
                applied_syms_term(t, out);
            }
        }
    }
}

/// Canonicalizes an `is_sat` query (see [`CanonicalQuery`]).
pub fn canonical_query(env: &dyn SortLookup, preds: &[Pred]) -> CanonicalQuery {
    // 1. Name-stable order: sort conjuncts by their original rendering.
    let mut rendered: Vec<(String, &Pred)> = preds.iter().map(|p| (p.to_string(), p)).collect();
    rendered.sort_by(|a, b| a.0.cmp(&b.0));
    rendered.dedup_by(|a, b| a.0 == b.0);

    // 2. Alpha-rename free variables to #0, #1, … in order of first
    //    occurrence over the sorted sequence (free_vars is a BTreeSet, so
    //    the within-predicate order is deterministic too).
    let mut order: Vec<Sym> = Vec::new();
    let mut seen: HashSet<Sym> = HashSet::new();
    for (_, p) in &rendered {
        for x in p.free_vars() {
            if seen.insert(x.clone()) {
                order.push(x);
            }
        }
    }
    let mut rename = Subst::new();
    for (i, x) in order.iter().enumerate() {
        rename.push(x.clone(), Term::var(format!("#{i}")));
    }
    let canonical: Vec<Pred> = rendered.iter().map(|(_, p)| rename.apply_pred(p)).collect();

    // 3. The key: canonical binder sorts, then the canonical conjuncts.
    let mut binders = Vec::with_capacity(order.len());
    let mut key = String::with_capacity(64 + 32 * canonical.len());
    for (i, x) in order.iter().enumerate() {
        match env.var_sort(x) {
            Some(s) => {
                binders.push((Sym::from(format!("#{i}")), s));
                let _ = write!(key, "#{i}:{s};");
            }
            None => {
                let _ = write!(key, "#{i}:?;");
            }
        }
    }
    // 4. The signatures of every applied uninterpreted symbol. With these
    //    in the key, key equality no longer presumes a fixed class table,
    //    so the cache may be shared across checker runs (incremental
    //    sessions) and across different programs.
    let mut applied: BTreeSet<Sym> = BTreeSet::new();
    for p in &canonical {
        applied_syms_pred(p, &mut applied);
    }
    for f in &applied {
        write_sig(&mut key, env, f);
    }
    key.push('\u{1}');
    for p in &canonical {
        let _ = write!(key, "{p}\u{2}");
    }
    CanonicalQuery {
        key,
        preds: canonical,
        binders,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_logic::{CmpOp, Sort, SortEnv};

    fn env() -> SortEnv {
        let mut e = SortEnv::new();
        e.bind("x", Sort::Int);
        e.bind("y", Sort::Int);
        e.bind("a", Sort::Int);
        e.bind("b", Sort::Int);
        e
    }

    #[test]
    fn alpha_variants_share_a_key() {
        let e = env();
        let p1 = vec![
            Pred::cmp(CmpOp::Lt, Term::var("x"), Term::var("y")),
            Pred::cmp(CmpOp::Le, Term::int(0), Term::var("x")),
        ];
        let p2 = vec![
            Pred::cmp(CmpOp::Le, Term::int(0), Term::var("a")),
            Pred::cmp(CmpOp::Lt, Term::var("a"), Term::var("b")),
        ];
        let k1 = canonical_query(&e, &p1).key;
        let k2 = canonical_query(&e, &p2).key;
        assert_eq!(k1, k2, "renamed + reordered query must share the key");
    }

    #[test]
    fn different_sorts_split_the_key() {
        let mut e1 = SortEnv::new();
        e1.bind("x", Sort::Int);
        let mut e2 = SortEnv::new();
        e2.bind("x", Sort::Ref);
        let p = vec![Pred::eq(Term::var("x"), Term::var("x"))];
        let k1 = canonical_query(&e1, &p).key;
        let k2 = canonical_query(&e2, &p).key;
        assert_ne!(k1, k2);
    }

    #[test]
    fn probe_and_record() {
        let c = VcCache::new();
        assert!(!c.probe("k"));
        c.record_unsat("k".to_string());
        assert!(c.probe("k"));
        let counters = c.counters();
        assert_eq!(counters.hits, 1);
        assert_eq!(counters.misses, 1);
        assert_eq!(counters.entries, 1);
        assert_eq!(counters.evictions, 0);
    }

    #[test]
    fn capacity_bounds_entries_and_counts_evictions() {
        // cap 16 → one entry per shard; hammering one shard must stay
        // bounded and evict in LRU (generation) order.
        let c = VcCache::with_capacity(16);
        for i in 0..100 {
            c.record_unsat(format!("key-{i}"));
        }
        let counters = c.counters();
        assert!(
            counters.entries <= 16,
            "entries {} exceed capacity",
            counters.entries
        );
        assert_eq!(counters.evictions + counters.entries, 100);
    }

    #[test]
    fn lru_prefers_recently_probed_entries() {
        // shard_cap = 8 (capacity 8 × SHARDS): fill one shard to its
        // cap, refresh the *oldest* entry by probing it, then overflow
        // the shard. The batch eviction must drop the oldest
        // *generations* — which, thanks to the probe's LRU touch, are
        // the unprobed early inserts, not the probed one.
        let c = VcCache::with_capacity(8 * SHARDS);
        let anchor = "anchor".to_string();
        let mut same_shard: Vec<String> = vec![anchor.clone()];
        for i in 0.. {
            if same_shard.len() == 9 {
                break;
            }
            let k = format!("collide-{i}");
            if std::ptr::eq(c.shard(&k), c.shard(&anchor)) {
                same_shard.push(k);
            }
            assert!(i < 1_000_000, "could not find colliding keys");
        }
        // Insert anchor first (oldest), then 7 more: shard at cap 8.
        for k in &same_shard[..8] {
            c.record_unsat(k.clone());
        }
        assert_eq!(c.counters().evictions, 0);
        // Refresh the oldest entry, then overflow.
        assert!(c.probe(&anchor));
        c.record_unsat(same_shard[8].clone());
        assert!(c.counters().evictions > 0);
        assert!(
            c.probe(&anchor),
            "probed entry must survive eviction (LRU touch)"
        );
        assert!(
            !c.probe(&same_shard[1]),
            "oldest unprobed entry must be evicted"
        );
        assert!(c.probe(&same_shard[8]), "latest insert must survive");
        // Unbounded caches never evict.
        let u = VcCache::new();
        for i in 0..1000 {
            u.record_unsat(format!("k{i}"));
        }
        assert_eq!(u.counters().evictions, 0);
        assert_eq!(u.counters().entries, 1000);
    }
}
