//! Hash-consed term arena shared by the EUF and LIA theory solvers.

use std::collections::HashMap;

use rsc_logic::{Sort, Sym};

/// Index of a node in the [`Arena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// A first-order term node. Arithmetic is *not* represented here: linear
/// expressions live in [`crate::lia::LinExp`] over these nodes, and
/// nonlinear operations appear as uninterpreted applications (`mul`, `div`,
/// `mod`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    /// A free variable with its sort.
    Var(Sym, Sort),
    /// An integer constant.
    IntConst(i64),
    /// A string constant (distinct from every other string constant).
    StrConst(Sym),
    /// The boolean constant `true`.
    True,
    /// The boolean constant `false`.
    False,
    /// An uninterpreted application with its result sort.
    App(Sym, Vec<NodeId>, Sort),
    /// A fresh node standing for a compound integer expression that occurs
    /// in an uninterpreted-function argument position; the encoder emits a
    /// defining equation for it.
    Lifted(u32),
}

/// The kind of interpreted constant a node denotes, used for conflict
/// detection inside congruence classes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConstKind {
    /// Integer constant.
    Int(i64),
    /// String constant.
    Str(Sym),
    /// Boolean constant.
    Bool(bool),
}

/// A hash-consed arena of [`Node`]s.
#[derive(Default, Debug)]
pub struct Arena {
    nodes: Vec<Node>,
    sorts: Vec<Sort>,
    map: HashMap<Node, NodeId>,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena::default()
    }

    /// Interns a node, returning its id.
    pub fn intern(&mut self, n: Node) -> NodeId {
        if let Some(&id) = self.map.get(&n) {
            return id;
        }
        let sort = match &n {
            Node::Var(_, s) => *s,
            Node::IntConst(_) => Sort::Int,
            Node::StrConst(_) => Sort::Str,
            Node::True | Node::False => Sort::Bool,
            Node::App(_, _, s) => *s,
            Node::Lifted(_) => Sort::Int,
        };
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(n.clone());
        self.sorts.push(sort);
        self.map.insert(n, id);
        id
    }

    /// Allocates a fresh lifted node (for compound integer arguments).
    pub fn fresh_lifted(&mut self) -> NodeId {
        let k = self.nodes.len() as u32;
        self.intern(Node::Lifted(k))
    }

    /// The node stored at `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// The sort of the node at `id`.
    pub fn sort(&self, id: NodeId) -> Sort {
        self.sorts[id.0 as usize]
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The interpreted constant denoted by a node, if any.
    pub fn const_kind(&self, id: NodeId) -> Option<ConstKind> {
        match self.node(id) {
            Node::IntConst(n) => Some(ConstKind::Int(*n)),
            Node::StrConst(s) => Some(ConstKind::Str(s.clone())),
            Node::True => Some(ConstKind::Bool(true)),
            Node::False => Some(ConstKind::Bool(false)),
            _ => None,
        }
    }

    /// Iterates over all (id, node) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing() {
        let mut a = Arena::new();
        let x1 = a.intern(Node::Var(Sym::from("x"), Sort::Int));
        let x2 = a.intern(Node::Var(Sym::from("x"), Sort::Int));
        assert_eq!(x1, x2);
        assert_eq!(a.len(), 1);
        let f1 = a.intern(Node::App(Sym::from("f"), vec![x1], Sort::Int));
        let f2 = a.intern(Node::App(Sym::from("f"), vec![x2], Sort::Int));
        assert_eq!(f1, f2);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn sorts_recorded() {
        let mut a = Arena::new();
        let s = a.intern(Node::StrConst(Sym::from("number")));
        assert_eq!(a.sort(s), Sort::Str);
        assert_eq!(a.const_kind(s), Some(ConstKind::Str(Sym::from("number"))));
    }

    #[test]
    fn lifted_nodes_are_fresh() {
        let mut a = Arena::new();
        let l1 = a.fresh_lifted();
        let l2 = a.fresh_lifted();
        assert_ne!(l1, l2);
    }
}
