//! Theory combination: congruence closure (EUF) plus linear integer
//! arithmetic, glued by a bounded Nelson–Oppen equality-propagation loop.

use rsc_logic::Sort;

use crate::atom::{AtomData, AtomId, NLinExp};
use crate::euf::{Euf, EufResult};
use crate::lia::{LiaProblem, LinExp};
use crate::node::{Arena, ConstKind, Node, NodeId};

/// The verdict of a theory consistency check over a full propositional
/// assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TheoryVerdict {
    /// The assignment is theory-consistent.
    Consistent,
    /// The assignment is inconsistent; the listed atoms participate in the
    /// conflict (a superset of a minimal core).
    Conflict(Vec<AtomId>),
}

const MAX_NO_ROUNDS: usize = 6;

/// Shrinks a conflicting atom core to a 1-minimal one with binary
/// chunking: try dropping left-to-right chunks of halving size, ending
/// with the single-atom pass that guarantees 1-minimality (the final
/// level is exactly the greedy scan). `check(core)` must return whether
/// the assignment restricted to `core` is still theory-inconsistent.
///
/// The typical conflict involves a handful of atoms inside a large
/// assigned set, and every probe is a full theory check — chunking
/// reaches the kernel in `O(k log n)` checks instead of the greedy
/// scan's `O(n)`. Both solving paths (fresh [`crate::Solver::is_sat`]
/// and the incremental context) must minimize through this one function:
/// the minimized core picks the blocking clause, and the paths only stay
/// trajectory-identical because they shrink cores identically.
pub fn minimize_core(
    mut core: Vec<AtomId>,
    mut check: impl FnMut(&[AtomId]) -> bool,
) -> Vec<AtomId> {
    let mut chunk = (core.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < core.len() && core.len() > 1 {
            let end = (i + chunk).min(core.len());
            if end - i == core.len() {
                break; // never try the empty core
            }
            let mut trial = Vec::with_capacity(core.len() - (end - i));
            trial.extend_from_slice(&core[..i]);
            trial.extend_from_slice(&core[end..]);
            if check(&trial) {
                core = trial;
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            return core;
        }
        chunk /= 2;
    }
}

/// Derives variable values implied by single-variable linear equalities,
/// propagating until a fixpoint (e.g. `x - 5 = 0` gives `x = 5`, which may
/// determine further equations).
fn derive_constants(eqs: &[crate::lia::LinExp]) -> std::collections::HashMap<u32, i128> {
    let mut values: std::collections::HashMap<u32, i128> = std::collections::HashMap::new();
    let mut work: Vec<crate::lia::LinExp> = eqs.to_vec();
    loop {
        let mut changed = false;
        for e in &mut work {
            // Substitute known values.
            let known: Vec<(u32, i128)> = e
                .coeffs
                .iter()
                .filter_map(|(&x, &c)| values.get(&x).map(|v| (x, c * v)))
                .collect();
            for (x, add) in known {
                e.coeffs.remove(&x);
                e.konst += add;
            }
            if e.coeffs.len() == 1 {
                let (&x, &c) = e.coeffs.iter().next().unwrap();
                if c != 0 && e.konst % c == 0 {
                    let v = -e.konst / c;
                    if values.insert(x, v) != Some(v) {
                        changed = true;
                    }
                    e.coeffs.clear();
                    e.konst = 0;
                }
            }
        }
        if !changed {
            return values;
        }
    }
}
const MAX_EQ_PROBE_PAIRS: usize = 48;

/// Checks whether the assignment of theory atoms is consistent with
/// EUF + LIA. `assign[i]` is the polarity of atom `i`, or `None` for atoms
/// outside the theory (bit-vector atoms, which are blasted eagerly).
pub fn check(
    arena: &Arena,
    atoms: &[AtomData],
    defs: &[NLinExp],
    assign: &[Option<bool>],
    true_node: NodeId,
    false_node: NodeId,
) -> TheoryVerdict {
    check_scoped(
        arena, atoms, defs, assign, true_node, false_node, None, None,
    )
}

/// [`check`] with an optional node scope. A persistent incremental
/// context shares one arena across many queries; passing the subterm
/// closure of the current query as `scope` restricts the two
/// heuristic arena sweeps (nonlinear constant evaluation and
/// Nelson–Oppen candidate collection) to the query's own terms, so an
/// unrelated query's nodes can neither consume the bounded probe budget
/// nor surface in its conflicts. `None` sweeps the whole arena — the
/// fresh-per-query path, where the arena *is* the query's closure.
///
/// `assigned_hint`, when given, must list (in ascending id order) a
/// superset of the atoms with `assign[i].is_some()`; the involved-atom
/// sets are then derived from it instead of scanning the whole atom
/// table. A persistent context's table holds every atom it ever encoded,
/// and core minimization re-checks restricted assignments many times per
/// conflict, so the full-table scans are quadratic-ish on the hot path.
#[allow(clippy::too_many_arguments)]
pub fn check_scoped(
    arena: &Arena,
    atoms: &[AtomData],
    defs: &[NLinExp],
    assign: &[Option<bool>],
    true_node: NodeId,
    false_node: NodeId,
    scope: Option<&[NodeId]>,
    assigned_hint: Option<&[AtomId]>,
) -> TheoryVerdict {
    let app_nodes = |arena: &Arena| -> Vec<NodeId> {
        match scope {
            Some(ids) => ids
                .iter()
                .copied()
                .filter(|&id| matches!(arena.node(id), Node::App(..)))
                .collect(),
            None => arena
                .iter()
                .filter(|(_, n)| matches!(n, Node::App(..)))
                .map(|(id, _)| id)
                .collect(),
        }
    };
    let sweep: Vec<NodeId> = app_nodes(arena);
    // Both filters preserve ascending id order, so deriving them from the
    // (ascending) hint yields exactly what the full-table scan would.
    let involved: Vec<AtomId> = match assigned_hint {
        Some(ids) => ids
            .iter()
            .copied()
            .filter(|id| {
                assign[id.0 as usize].is_some()
                    && !matches!(atoms[id.0 as usize], AtomData::BvEq(..))
            })
            .collect(),
        None => atoms
            .iter()
            .enumerate()
            .filter(|(i, a)| assign[*i].is_some() && !matches!(a, AtomData::BvEq(..)))
            .map(|(i, _)| AtomId(i as u32))
            .collect(),
    };
    // A smaller core for EUF-phase conflicts: only equality-bearing atoms.
    let is_euf_core = |a: &AtomData| {
        matches!(
            a,
            AtomData::EufEq(..) | AtomData::BoolNode(..) | AtomData::IntEq(_, Some(_))
        )
    };
    let euf_core: Vec<AtomId> = match assigned_hint {
        Some(ids) => ids
            .iter()
            .copied()
            .filter(|id| assign[id.0 as usize].is_some() && is_euf_core(&atoms[id.0 as usize]))
            .collect(),
        None => atoms
            .iter()
            .enumerate()
            .filter(|(i, a)| assign[*i].is_some() && is_euf_core(a))
            .map(|(i, _)| AtomId(i as u32))
            .collect(),
    };

    let mut extra_merges: Vec<(NodeId, NodeId)> = Vec::new();

    for _round in 0..MAX_NO_ROUNDS {
        // --- EUF phase -----------------------------------------------------
        let mut euf = Euf::new(arena);
        for &AtomId(i) in &involved {
            let a = &atoms[i as usize];
            let Some(pol) = assign[i as usize] else {
                continue;
            };
            match a {
                AtomData::EufEq(x, y) => {
                    if pol {
                        euf.merge(*x, *y);
                    } else {
                        euf.assert_diseq(*x, *y);
                    }
                }
                AtomData::BoolNode(n) => {
                    euf.merge(*n, if pol { true_node } else { false_node });
                }
                AtomData::IntEq(_, Some((x, y))) => {
                    if pol {
                        euf.merge(*x, *y);
                    } else {
                        euf.assert_diseq(*x, *y);
                    }
                }
                _ => {}
            }
        }
        for &(x, y) in &extra_merges {
            euf.merge(x, y);
        }
        if euf.close_over(&sweep, scope) == EufResult::Conflict {
            return TheoryVerdict::Conflict(if extra_merges.is_empty() {
                euf_core.clone()
            } else {
                involved.clone()
            });
        }

        // --- LIA phase -----------------------------------------------------
        let translate = |euf: &mut Euf, l: &NLinExp| -> LinExp {
            let mut out = LinExp::konst(l.konst);
            for (&n, &c) in &l.coeffs {
                let rep = euf.find(n);
                match arena.const_kind(rep) {
                    Some(ConstKind::Int(v)) => out.konst += c * v as i128,
                    _ => out.add_term(rep.0, c),
                }
            }
            out
        };
        let mut prob = LiaProblem::default();
        for d in defs {
            let e = translate(&mut euf, d);
            prob.eqs.push(e);
        }
        for &AtomId(i) in &involved {
            let a = &atoms[i as usize];
            let Some(pol) = assign[i as usize] else {
                continue;
            };
            match a {
                AtomData::LinLe(l) => {
                    let e = translate(&mut euf, l);
                    if pol {
                        prob.les.push(e);
                    } else {
                        // ¬(e ≤ 0) over integers: -e + 1 ≤ 0.
                        let mut neg = e.scale(-1);
                        neg.konst += 1;
                        prob.les.push(neg);
                    }
                }
                AtomData::IntEq(l, _) => {
                    let e = translate(&mut euf, l);
                    if pol {
                        prob.eqs.push(e);
                    } else {
                        prob.diseqs.push(e);
                    }
                }
                _ => {}
            }
        }
        // --- Nonlinear constant evaluation ----------------------------------
        // Derive variable values implied by the (linear) equalities, then
        // evaluate uninterpreted `mul`/`div`/`mod` applications whose
        // arguments are determined — e.g. `(z.w+2)*(z.h+2)` with
        // `z.w = 3 ∧ z.h = 7` becomes 45.
        let consts = derive_constants(&prob.eqs);
        for &id in &sweep {
            if let Node::App(f, args, _) = arena.node(id) {
                let op = f.as_str();
                if !matches!(op, "mul" | "div" | "mod") || args.len() != 2 {
                    continue;
                }
                let val_of = |euf: &mut Euf, a: NodeId| -> Option<i128> {
                    let rep = euf.find(a);
                    match arena.const_kind(rep) {
                        Some(ConstKind::Int(v)) => Some(v as i128),
                        _ => consts.get(&rep.0).copied(),
                    }
                };
                let (Some(va), Some(vb)) = (val_of(&mut euf, args[0]), val_of(&mut euf, args[1]))
                else {
                    continue;
                };
                let value = match op {
                    "mul" => va.checked_mul(vb),
                    "div" if vb != 0 => Some(va / vb),
                    "mod" if vb != 0 => Some(va % vb),
                    _ => None,
                };
                if let Some(v) = value {
                    let rep = euf.find(id);
                    let mut e = match arena.const_kind(rep) {
                        Some(ConstKind::Int(existing)) => {
                            if existing as i128 != v {
                                return TheoryVerdict::Conflict(involved);
                            }
                            continue;
                        }
                        _ => crate::lia::LinExp::var(rep.0),
                    };
                    e.konst = -v;
                    prob.eqs.push(e);
                }
            }
        }

        if prob.feasible() == crate::lia::LiaResult::Infeasible {
            return TheoryVerdict::Conflict(involved);
        }

        // --- Nelson–Oppen equality propagation ------------------------------
        // Candidate nodes: integer-sorted nodes in argument position of an
        // uninterpreted application (only these can trigger new congruences).
        let mut candidates: Vec<NodeId> = Vec::new();
        for &id in &sweep {
            if let Node::App(_, args, _) = arena.node(id) {
                for &a in args {
                    if arena.sort(a) == Sort::Int {
                        let rep = euf.find(a);
                        if arena.const_kind(rep).is_none() && !candidates.contains(&rep) {
                            candidates.push(rep);
                        }
                    }
                }
            }
        }
        // A probe `x = y?` can only be entailed when both variables occur
        // in some row — an unconstrained variable always admits a strict
        // separation. Skipped probes still count against the budget, so
        // the probe sequence (and thus the verdict) is exactly the one
        // the unfiltered loop would produce, minus the doomed solves.
        let mut bounded: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for e in prob
            .les
            .iter()
            .chain(prob.eqs.iter())
            .chain(prob.diseqs.iter())
        {
            bounded.extend(e.coeffs.keys().copied());
        }
        let mut found: Option<(NodeId, NodeId)> = None;
        let mut probes = 0usize;
        'outer: for i in 0..candidates.len() {
            for j in (i + 1)..candidates.len() {
                if probes >= MAX_EQ_PROBE_PAIRS {
                    break 'outer;
                }
                probes += 1;
                let (x, y) = (candidates[i], candidates[j]);
                if bounded.contains(&x.0) && bounded.contains(&y.0) && prob.entails_eq(x.0, y.0) {
                    found = Some((x, y));
                    break 'outer;
                }
            }
        }
        match found {
            Some(pair) => {
                extra_merges.push(pair);
                continue;
            }
            None => return TheoryVerdict::Consistent,
        }
    }
    TheoryVerdict::Consistent
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_logic::Sym;

    /// x = y, len(x) ≤ 3, len(y) ≥ 5 should conflict via congruence.
    #[test]
    fn euf_lia_interaction() {
        let mut arena = Arena::new();
        let tn = arena.intern(Node::True);
        let fnode = arena.intern(Node::False);
        let x = arena.intern(Node::Var(Sym::from("x"), Sort::Ref));
        let y = arena.intern(Node::Var(Sym::from("y"), Sort::Ref));
        let lx = arena.intern(Node::App(Sym::from("len"), vec![x], Sort::Int));
        let ly = arena.intern(Node::App(Sym::from("len"), vec![y], Sort::Int));
        let atoms = vec![
            AtomData::EufEq(x, y),
            AtomData::LinLe({
                let mut e = NLinExp::node(lx);
                e.konst = -3;
                e
            }), // len(x) - 3 <= 0
            AtomData::LinLe({
                let mut e = NLinExp::node(ly).scale(-1);
                e.konst = 5;
                e
            }), // 5 - len(y) <= 0
        ];
        let assign = vec![Some(true), Some(true), Some(true)];
        let v = check(&arena, &atoms, &[], &assign, tn, fnode);
        assert!(matches!(v, TheoryVerdict::Conflict(_)));
    }

    /// Arithmetic forces i = j, so f(i) != f(j) conflicts (Nelson–Oppen).
    #[test]
    fn no_equality_propagation() {
        let mut arena = Arena::new();
        let tn = arena.intern(Node::True);
        let fnode = arena.intern(Node::False);
        let i = arena.intern(Node::Var(Sym::from("i"), Sort::Int));
        let j = arena.intern(Node::Var(Sym::from("j"), Sort::Int));
        let fi = arena.intern(Node::App(Sym::from("f"), vec![i], Sort::Ref));
        let fj = arena.intern(Node::App(Sym::from("f"), vec![j], Sort::Ref));
        // i <= j, j <= i, f(i) != f(j)
        let mut le1 = NLinExp::node(i);
        le1.add_term(j, -1);
        let mut le2 = NLinExp::node(j);
        le2.add_term(i, -1);
        let atoms = vec![
            AtomData::LinLe(le1),
            AtomData::LinLe(le2),
            AtomData::EufEq(fi, fj),
        ];
        let assign = vec![Some(true), Some(true), Some(false)];
        let v = check(&arena, &atoms, &[], &assign, tn, fnode);
        assert!(matches!(v, TheoryVerdict::Conflict(_)));
    }

    #[test]
    fn consistent_assignment() {
        let mut arena = Arena::new();
        let tn = arena.intern(Node::True);
        let fnode = arena.intern(Node::False);
        let x = arena.intern(Node::Var(Sym::from("x"), Sort::Int));
        let mut e = NLinExp::node(x);
        e.konst = -10; // x <= 10
        let atoms = vec![AtomData::LinLe(e)];
        let v = check(&arena, &atoms, &[], &[Some(true)], tn, fnode);
        assert_eq!(v, TheoryVerdict::Consistent);
    }

    #[test]
    fn bool_node_conflict() {
        let mut arena = Arena::new();
        let tn = arena.intern(Node::True);
        let fnode = arena.intern(Node::False);
        let x = arena.intern(Node::Var(Sym::from("x"), Sort::Ref));
        let p = arena.intern(Node::App(Sym::from("impl"), vec![x], Sort::Bool));
        let q = arena.intern(Node::App(Sym::from("impl"), vec![x], Sort::Bool));
        assert_eq!(p, q);
        let atoms = vec![AtomData::BoolNode(p)];
        // Atom asserted both ways cannot happen with one atom id; check that
        // a single positive assertion is consistent.
        let v = check(&arena, &atoms, &[], &[Some(true)], tn, fnode);
        assert_eq!(v, TheoryVerdict::Consistent);
    }
}
