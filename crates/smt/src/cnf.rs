//! A clause store with Tseitin transformation from [`Formula`]s.

use crate::atom::{AtomId, Formula};
use crate::sat::{Lit, SatOutcome, SatSolver, Var};

/// Anything that can allocate SAT variables and accept clauses.
///
/// The Tseitin transform and the bit-blaster are generic over this, so
/// they can target either a [`CnfStore`] (the fresh-per-query solving
/// path, which re-runs CDCL from scratch each round) or a [`SatSolver`]
/// directly (the persistent incremental context in [`crate::incr`],
/// which encodes once and re-solves under assumptions).
pub trait ClauseSink {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;
    /// Adds a clause.
    fn add_clause(&mut self, lits: Vec<Lit>);
}

impl ClauseSink for CnfStore {
    fn new_var(&mut self) -> Var {
        CnfStore::new_var(self)
    }

    fn add_clause(&mut self, lits: Vec<Lit>) {
        CnfStore::add_clause(self, lits)
    }
}

impl ClauseSink for SatSolver {
    fn new_var(&mut self) -> Var {
        SatSolver::new_var(self)
    }

    fn add_clause(&mut self, lits: Vec<Lit>) {
        SatSolver::add_clause(self, lits)
    }
}

/// A persistent store of CNF clauses. The DPLL(T) driver accumulates
/// blocking clauses here and re-solves from scratch each round (VCs are
/// small, so a fresh CDCL run is cheap and keeps the SAT core simple).
#[derive(Default, Debug)]
pub struct CnfStore {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl CnfStore {
    /// An empty store.
    pub fn new() -> Self {
        CnfStore::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Adds a clause.
    pub fn add_clause(&mut self, lits: Vec<Lit>) {
        self.clauses.push(lits);
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Solves the current clause set with a fresh CDCL solver.
    pub fn solve(&self) -> SatOutcome {
        let mut s = SatSolver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c.clone());
        }
        s.solve()
    }
}

/// Tseitin-encodes `f` (which must be free of `Const` after
/// [`Formula::simplify`]) and returns a literal equivalent to `f`.
///
/// `atom_lit` maps an atom with polarity to its SAT literal. The
/// definitional clauses are bidirectional (`o ↔ …`), so the fresh
/// variables are fully defined by their inputs: adding them unasserted
/// to a persistent context never constrains the context.
pub fn tseitin(
    f: &Formula,
    atom_lit: &impl Fn(AtomId, bool) -> Lit,
    cnf: &mut impl ClauseSink,
) -> Lit {
    match f {
        Formula::Const(_) => panic!("tseitin: simplify the formula first"),
        Formula::Lit(a, pol) => atom_lit(*a, *pol),
        Formula::And(fs) => {
            let lits: Vec<Lit> = fs.iter().map(|g| tseitin(g, atom_lit, cnf)).collect();
            let o = Lit::pos(cnf.new_var());
            // o -> l_i
            for &l in &lits {
                cnf.add_clause(vec![o.negate(), l]);
            }
            // (∧ l_i) -> o
            let mut big: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
            big.push(o);
            cnf.add_clause(big);
            o
        }
        Formula::Or(fs) => {
            let lits: Vec<Lit> = fs.iter().map(|g| tseitin(g, atom_lit, cnf)).collect();
            let o = Lit::pos(cnf.new_var());
            // l_i -> o
            for &l in &lits {
                cnf.add_clause(vec![l.negate(), o]);
            }
            // o -> (∨ l_i)
            let mut big: Vec<Lit> = lits.clone();
            big.push(o.negate());
            cnf.add_clause(big);
            o
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tseitin_and_or() {
        // (a || b) && !a  — satisfiable with b=true, a=false.
        let mut cnf = CnfStore::new();
        let va = cnf.new_var();
        let vb = cnf.new_var();
        let lookup = move |a: AtomId, pol: bool| {
            let v = if a.0 == 0 { va } else { vb };
            Lit::new(v, pol)
        };
        let f = Formula::And(vec![
            Formula::Or(vec![
                Formula::Lit(AtomId(0), true),
                Formula::Lit(AtomId(1), true),
            ]),
            Formula::Lit(AtomId(0), false),
        ]);
        let root = tseitin(&f, &lookup, &mut cnf);
        cnf.add_clause(vec![root]);
        match cnf.solve() {
            SatOutcome::Sat(m) => {
                assert!(!m[va as usize]);
                assert!(m[vb as usize]);
            }
            SatOutcome::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn tseitin_unsat() {
        // a && !a
        let mut cnf = CnfStore::new();
        let va = cnf.new_var();
        let lookup = move |_: AtomId, pol: bool| Lit::new(va, pol);
        let f = Formula::And(vec![
            Formula::Lit(AtomId(0), true),
            Formula::Lit(AtomId(0), false),
        ]);
        let root = tseitin(&f, &lookup, &mut cnf);
        cnf.add_clause(vec![root]);
        assert_eq!(cnf.solve(), SatOutcome::Unsat);
    }
}
