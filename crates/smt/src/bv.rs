//! Eager bit-blasting of 32-bit bit-vector terms into the SAT core.
//!
//! RSC uses bit-vectors to encode interface hierarchies (§4.3 of the
//! paper): enum flags are masked with constants and tested against zero.
//! All bit-vector reasoning is therefore equalities between and/or/not
//! combinations of variables and constants — blasted here once, at encode
//! time, so the theory combination never sees bit-vectors.

use std::collections::HashMap;

use crate::atom::BvTerm;
use crate::cnf::ClauseSink;
use crate::node::NodeId;
use crate::sat::Lit;

const WIDTH: usize = 32;

/// A single bit: a constant or a SAT literal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bit {
    /// A known constant bit.
    Const(bool),
    /// A SAT literal.
    L(Lit),
}

/// Blasts bit-vector terms into an underlying [`ClauseSink`], caching the 32
/// fresh variables allocated for each opaque node slot.
#[derive(Default)]
pub struct Blaster {
    slots: HashMap<NodeId, Vec<Bit>>,
}

impl Blaster {
    /// A fresh blaster.
    pub fn new() -> Self {
        Blaster::default()
    }

    fn slot_bits(&mut self, n: NodeId, cnf: &mut impl ClauseSink) -> Vec<Bit> {
        self.slots
            .entry(n)
            .or_insert_with(|| {
                (0..WIDTH)
                    .map(|_| Bit::L(Lit::pos(cnf.new_var())))
                    .collect()
            })
            .clone()
    }

    /// The 32 bits of `t`, least significant first.
    pub fn bits(&mut self, t: &BvTerm, cnf: &mut impl ClauseSink) -> Vec<Bit> {
        match t {
            BvTerm::Const(c) => (0..WIDTH).map(|i| Bit::Const(c >> i & 1 == 1)).collect(),
            BvTerm::Node(n) => self.slot_bits(*n, cnf),
            BvTerm::And(a, b) => {
                let ba = self.bits(a, cnf);
                let bb = self.bits(b, cnf);
                ba.into_iter()
                    .zip(bb)
                    .map(|(x, y)| and_bit(x, y, cnf))
                    .collect()
            }
            BvTerm::Or(a, b) => {
                let ba = self.bits(a, cnf);
                let bb = self.bits(b, cnf);
                ba.into_iter()
                    .zip(bb)
                    .map(|(x, y)| or_bit(x, y, cnf))
                    .collect()
            }
            BvTerm::Not(a) => self
                .bits(a, cnf)
                .into_iter()
                .map(|x| match x {
                    Bit::Const(b) => Bit::Const(!b),
                    Bit::L(l) => Bit::L(l.negate()),
                })
                .collect(),
        }
    }

    /// Returns a SAT literal equivalent to `a = b`, adding defining clauses.
    pub fn eq_lit(&mut self, a: &BvTerm, b: &BvTerm, cnf: &mut impl ClauseSink) -> Lit {
        let ba = self.bits(a, cnf);
        let bb = self.bits(b, cnf);
        let mut bit_eqs: Vec<Bit> = Vec::with_capacity(WIDTH);
        for (x, y) in ba.into_iter().zip(bb) {
            bit_eqs.push(xnor_bit(x, y, cnf));
        }
        // e = AND of the per-bit equivalences.
        and_all(&bit_eqs, cnf)
    }
}

fn and_bit(a: Bit, b: Bit, cnf: &mut impl ClauseSink) -> Bit {
    match (a, b) {
        (Bit::Const(false), _) | (_, Bit::Const(false)) => Bit::Const(false),
        (Bit::Const(true), x) | (x, Bit::Const(true)) => x,
        (Bit::L(x), Bit::L(y)) => {
            let o = Lit::pos(cnf.new_var());
            cnf.add_clause(vec![o.negate(), x]);
            cnf.add_clause(vec![o.negate(), y]);
            cnf.add_clause(vec![x.negate(), y.negate(), o]);
            Bit::L(o)
        }
    }
}

fn or_bit(a: Bit, b: Bit, cnf: &mut impl ClauseSink) -> Bit {
    match (a, b) {
        (Bit::Const(true), _) | (_, Bit::Const(true)) => Bit::Const(true),
        (Bit::Const(false), x) | (x, Bit::Const(false)) => x,
        (Bit::L(x), Bit::L(y)) => {
            let o = Lit::pos(cnf.new_var());
            cnf.add_clause(vec![o, x.negate()]);
            cnf.add_clause(vec![o, y.negate()]);
            cnf.add_clause(vec![x, y, o.negate()]);
            Bit::L(o)
        }
    }
}

fn xnor_bit(a: Bit, b: Bit, cnf: &mut impl ClauseSink) -> Bit {
    match (a, b) {
        (Bit::Const(x), Bit::Const(y)) => Bit::Const(x == y),
        (Bit::Const(true), x) | (x, Bit::Const(true)) => x,
        (Bit::Const(false), Bit::L(l)) | (Bit::L(l), Bit::Const(false)) => Bit::L(l.negate()),
        (Bit::L(x), Bit::L(y)) => {
            let o = Lit::pos(cnf.new_var());
            // o <-> (x <-> y)
            cnf.add_clause(vec![o.negate(), x.negate(), y]);
            cnf.add_clause(vec![o.negate(), x, y.negate()]);
            cnf.add_clause(vec![o, x, y]);
            cnf.add_clause(vec![o, x.negate(), y.negate()]);
            Bit::L(o)
        }
    }
}

fn and_all(bits: &[Bit], cnf: &mut impl ClauseSink) -> Lit {
    if bits.contains(&Bit::Const(false)) {
        // Represent constant false with a fresh var forced false.
        let v = Lit::pos(cnf.new_var());
        cnf.add_clause(vec![v.negate()]);
        return v;
    }
    let lits: Vec<Lit> = bits
        .iter()
        .filter_map(|b| match b {
            Bit::Const(_) => None,
            Bit::L(l) => Some(*l),
        })
        .collect();
    if lits.is_empty() {
        let v = Lit::pos(cnf.new_var());
        cnf.add_clause(vec![v]);
        return v;
    }
    if lits.len() == 1 {
        return lits[0];
    }
    let o = Lit::pos(cnf.new_var());
    for &l in &lits {
        cnf.add_clause(vec![o.negate(), l]);
    }
    let mut big: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
    big.push(o);
    cnf.add_clause(big);
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::CnfStore;
    use crate::sat::SatOutcome;

    fn assert_valid_bv(build: impl Fn(&mut Blaster, &mut CnfStore) -> Lit) {
        // valid iff asserting the negation is unsat
        let mut cnf = CnfStore::new();
        let mut bl = Blaster::new();
        let l = build(&mut bl, &mut cnf);
        cnf.add_clause(vec![l.negate()]);
        assert_eq!(cnf.solve(), SatOutcome::Unsat);
    }

    fn assert_sat_bv(build: impl Fn(&mut Blaster, &mut CnfStore) -> Lit) {
        let mut cnf = CnfStore::new();
        let mut bl = Blaster::new();
        let l = build(&mut bl, &mut cnf);
        cnf.add_clause(vec![l]);
        assert!(matches!(cnf.solve(), SatOutcome::Sat(_)));
    }

    #[test]
    fn constant_masking() {
        // (0x0400 & 0x3C00) = 0x0400 is valid.
        assert_valid_bv(|bl, cnf| {
            let t = BvTerm::And(
                Box::new(BvTerm::Const(0x0400)),
                Box::new(BvTerm::Const(0x3c00)),
            );
            bl.eq_lit(&t, &BvTerm::Const(0x0400), cnf)
        });
    }

    #[test]
    fn subset_mask_implication() {
        // (f & 0x0400) != 0  ∧  (f & 0x3C00) = 0   is UNSAT.
        let mut cnf = CnfStore::new();
        let mut bl = Blaster::new();
        let f = BvTerm::Node(NodeId(0));
        let small = BvTerm::And(Box::new(f.clone()), Box::new(BvTerm::Const(0x0400)));
        let big = BvTerm::And(Box::new(f), Box::new(BvTerm::Const(0x3c00)));
        let small_zero = bl.eq_lit(&small, &BvTerm::Const(0), &mut cnf);
        let big_zero = bl.eq_lit(&big, &BvTerm::Const(0), &mut cnf);
        cnf.add_clause(vec![small_zero.negate()]);
        cnf.add_clause(vec![big_zero]);
        assert_eq!(cnf.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn disjoint_masks_satisfiable() {
        // (f & 0x1) != 0 ∧ (f & 0x2) = 0 is SAT (f = 1).
        let mut cnf = CnfStore::new();
        let mut bl = Blaster::new();
        let f = BvTerm::Node(NodeId(0));
        let a = BvTerm::And(Box::new(f.clone()), Box::new(BvTerm::Const(1)));
        let b = BvTerm::And(Box::new(f), Box::new(BvTerm::Const(2)));
        let az = bl.eq_lit(&a, &BvTerm::Const(0), &mut cnf);
        let bz = bl.eq_lit(&b, &BvTerm::Const(0), &mut cnf);
        cnf.add_clause(vec![az.negate()]);
        cnf.add_clause(vec![bz]);
        assert!(matches!(cnf.solve(), SatOutcome::Sat(_)));
    }

    #[test]
    fn or_composition() {
        // (x | 0xFF) & 0x0F = 0x0F valid.
        assert_valid_bv(|bl, cnf| {
            let x = BvTerm::Node(NodeId(1));
            let t = BvTerm::And(
                Box::new(BvTerm::Or(Box::new(x), Box::new(BvTerm::Const(0xff)))),
                Box::new(BvTerm::Const(0x0f)),
            );
            bl.eq_lit(&t, &BvTerm::Const(0x0f), cnf)
        });
    }

    #[test]
    fn not_involution_sat() {
        assert_sat_bv(|bl, cnf| {
            let x = BvTerm::Node(NodeId(2));
            let nn = BvTerm::Not(Box::new(BvTerm::Not(Box::new(x.clone()))));
            bl.eq_lit(&nn, &x, cnf)
        });
    }
}
