//! Congruence closure for the theory of equality with uninterpreted
//! functions (EUF).
//!
//! The implementation is a straightforward union-find plus a congruence
//! fixpoint over application nodes; arenas in RSC verification conditions
//! are small (tens of nodes), so the quadratic fixpoint is more than fast
//! enough and much easier to audit than an e-graph.

use crate::node::{Arena, ConstKind, Node, NodeId};

/// The result of running congruence closure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EufResult {
    /// The asserted (dis)equalities are consistent.
    Consistent,
    /// A conflict: two distinct interpreted constants were merged, or an
    /// asserted disequality was violated.
    Conflict,
}

/// A congruence-closure engine over an [`Arena`].
pub struct Euf<'a> {
    arena: &'a Arena,
    parent: Vec<u32>,
    diseqs: Vec<(NodeId, NodeId)>,
}

impl<'a> Euf<'a> {
    /// Creates an engine over the arena with every node in its own class.
    pub fn new(arena: &'a Arena) -> Self {
        Euf {
            arena,
            parent: (0..arena.len() as u32).collect(),
            diseqs: Vec::new(),
        }
    }

    /// The representative of `n`'s class.
    pub fn find(&mut self, n: NodeId) -> NodeId {
        let mut r = n.0;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        // Path compression.
        let mut c = n.0;
        while self.parent[c as usize] != r {
            let next = self.parent[c as usize];
            self.parent[c as usize] = r;
            c = next;
        }
        NodeId(r)
    }

    /// Asserts `a = b`.
    pub fn merge(&mut self, a: NodeId, b: NodeId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Prefer constant representatives for easy conflict checks.
            if self.arena.const_kind(ra).is_some() {
                self.parent[rb.0 as usize] = ra.0;
            } else {
                self.parent[ra.0 as usize] = rb.0;
            }
        }
    }

    /// Asserts `a != b`.
    pub fn assert_diseq(&mut self, a: NodeId, b: NodeId) {
        self.diseqs.push((a, b));
    }

    /// Runs the congruence fixpoint and checks consistency over the whole
    /// arena (the fresh-per-query path, where the arena *is* the query).
    pub fn close(&mut self) -> EufResult {
        let apps: Vec<NodeId> = self
            .arena
            .iter()
            .filter(|(_, n)| matches!(n, Node::App(..)))
            .map(|(id, _)| id)
            .collect();
        self.close_over(&apps, None)
    }

    /// Runs the congruence fixpoint restricted to `apps` (the application
    /// nodes that can participate in a congruence) and checks consistency
    /// against the constants of `const_scan` (`None` scans the whole
    /// arena). A persistent incremental context shares one arena across
    /// many queries; passing the current query's subterm closure here
    /// makes the quadratic fixpoint quadratic in the *query*, not in
    /// everything the context ever encoded — and since merges only ever
    /// start from the query's own assertions, out-of-scope nodes stay in
    /// singleton classes and cannot contribute a conflict anyway.
    pub fn close_over(&mut self, apps: &[NodeId], const_scan: Option<&[NodeId]>) -> EufResult {
        loop {
            let mut changed = false;
            for i in 0..apps.len() {
                for j in (i + 1)..apps.len() {
                    let (id_i, id_j) = (apps[i], apps[j]);
                    if self.find(id_i) == self.find(id_j) {
                        continue;
                    }
                    if let (Node::App(f, ai, _), Node::App(g, aj, _)) =
                        (self.arena.node(id_i), self.arena.node(id_j))
                    {
                        if f == g
                            && ai.len() == aj.len()
                            && ai
                                .iter()
                                .zip(aj.iter())
                                .all(|(&x, &y)| self.find(x) == self.find(y))
                        {
                            self.merge(id_i, id_j);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Distinct-constant conflicts.
        let n = self.arena.len();
        let mut class_const: Vec<Option<ConstKind>> = vec![None; n];
        let mut scan_one = |this: &mut Self, id: NodeId| -> bool {
            if let Some(c) = this.arena.const_kind(id) {
                let r = this.find(id).0 as usize;
                match &class_const[r] {
                    None => class_const[r] = Some(c),
                    Some(c0) if *c0 != c => return false,
                    _ => {}
                }
            }
            true
        };
        match const_scan {
            Some(ids) => {
                for &id in ids {
                    if !scan_one(self, id) {
                        return EufResult::Conflict;
                    }
                }
            }
            None => {
                for i in 0..n {
                    if !scan_one(self, NodeId(i as u32)) {
                        return EufResult::Conflict;
                    }
                }
            }
        }
        // Asserted disequality conflicts.
        for (a, b) in self.diseqs.clone() {
            if self.find(a) == self.find(b) {
                return EufResult::Conflict;
            }
        }
        EufResult::Consistent
    }

    /// Returns the classes as a map from node to representative (after
    /// [`Euf::close`]).
    pub fn rep_of(&mut self, n: NodeId) -> NodeId {
        self.find(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_logic::{Sort, Sym};

    fn var(a: &mut Arena, s: &str) -> NodeId {
        a.intern(Node::Var(Sym::from(s), Sort::Ref))
    }

    fn app(a: &mut Arena, f: &str, args: Vec<NodeId>) -> NodeId {
        a.intern(Node::App(Sym::from(f), args, Sort::Ref))
    }

    #[test]
    fn congruence_basic() {
        // x = y |= f(x) = f(y)
        let mut a = Arena::new();
        let x = var(&mut a, "x");
        let y = var(&mut a, "y");
        let fx = app(&mut a, "f", vec![x]);
        let fy = app(&mut a, "f", vec![y]);
        let mut e = Euf::new(&a);
        e.merge(x, y);
        e.assert_diseq(fx, fy);
        assert_eq!(e.close(), EufResult::Conflict);
    }

    #[test]
    fn transitive_congruence() {
        // x = y |= f(f(x)) = f(f(y))
        let mut a = Arena::new();
        let x = var(&mut a, "x");
        let y = var(&mut a, "y");
        let fx = app(&mut a, "f", vec![x]);
        let fy = app(&mut a, "f", vec![y]);
        let ffx = app(&mut a, "f", vec![fx]);
        let ffy = app(&mut a, "f", vec![fy]);
        let mut e = Euf::new(&a);
        e.merge(x, y);
        e.assert_diseq(ffx, ffy);
        assert_eq!(e.close(), EufResult::Conflict);
    }

    #[test]
    fn distinct_strings_conflict() {
        let mut a = Arena::new();
        let s1 = a.intern(Node::StrConst(Sym::from("number")));
        let s2 = a.intern(Node::StrConst(Sym::from("string")));
        let x = var(&mut a, "x");
        let tx = a.intern(Node::App(Sym::from("ttag"), vec![x], Sort::Str));
        let mut e = Euf::new(&a);
        e.merge(tx, s1);
        e.merge(tx, s2);
        assert_eq!(e.close(), EufResult::Conflict);
    }

    #[test]
    fn consistent_assertions() {
        let mut a = Arena::new();
        let x = var(&mut a, "x");
        let y = var(&mut a, "y");
        let fx = app(&mut a, "f", vec![x]);
        let gy = app(&mut a, "g", vec![y]);
        let mut e = Euf::new(&a);
        e.merge(x, y);
        e.assert_diseq(fx, gy); // different symbols: no congruence
        assert_eq!(e.close(), EufResult::Consistent);
    }

    #[test]
    fn true_false_conflict() {
        let mut a = Arena::new();
        let t = a.intern(Node::True);
        let f = a.intern(Node::False);
        let b = a.intern(Node::Var(Sym::from("b"), Sort::Bool));
        let mut e = Euf::new(&a);
        e.merge(b, t);
        e.merge(b, f);
        assert_eq!(e.close(), EufResult::Conflict);
    }
}
