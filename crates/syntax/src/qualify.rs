//! Per-module qualification: α-renaming a file's top-level declarations
//! into a module-private namespace before closure merging.
//!
//! A multi-file workspace merges a document's import closure into one
//! program. Plain concatenation puts every file in a single global
//! namespace, so two files declaring `function helper(...)` collide —
//! and a file can accidentally *capture* another module's private
//! helper it never imported. Qualification fixes both: each file's
//! top-level declarations are renamed to `m{id}$name` (where `{id}` is
//! a stable 64-bit hash of the file's workspace key — see
//! [`module_id`]) and every reference is rewritten scope-awarely:
//!
//! * references bound locally (parameters, type parameters, hoisted
//!   `var`s and nested functions, refinement value variables) are left
//!   alone;
//! * references to the module's own top-level declarations — or to
//!   names it imports — are rewritten to the declaring module's
//!   qualified name;
//! * references to a name declared only in *other* closure files are a
//!   [`QualifyError`] at the use site (real scoping instead of
//!   accidental capture);
//! * everything else (builtins like `len`, `number`, enum member names,
//!   field and method names) is untouched.
//!
//! The renaming is the identity for a single-file closure (an empty
//! [`ModuleEnv`] with zero shifts reproduces the input program), and
//! module ids depend only on the file's name — never on its position
//! in the closure — so canonical bundle fingerprints survive adding an
//! unrelated module to a closure.
//!
//! Mangled names must never reach the user: [`demangle`] strips the
//! `m{id}$` prefixes from any rendered text (diagnostic messages,
//! dirty-unit names), so diagnostics always show the source name.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::Hasher;

pub use rsc_logic::Sym;
use rsc_logic::{Pred, Term};

use crate::ast::{
    Block, ClassDecl, CtorDecl, DeclareDecl, EnumDecl, Expr, FieldDecl, FunDecl, ImportDecl,
    InterfaceDecl, Item, LValue, MethodDecl, Program, QualifDecl, Stmt, TypeAlias,
};
use crate::span::Span;
use crate::types::{AnnArg, AnnTy, FunTy};

/// The module id of a workspace file: `m` followed by the 64-bit
/// `DefaultHasher` hash of the file's workspace key (URI or path),
/// in fixed-width hex. Content- and position-independent: the id of
/// `lib.rsc` never changes when other files join or leave the closure,
/// which is what keeps retained bundle fingerprints stable.
pub fn module_id(key: &str) -> String {
    let mut h = DefaultHasher::new();
    h.write(key.as_bytes());
    format!("m{:016x}", h.finish())
}

/// The qualified form of a top-level name: `{id}${name}` (`$` is a
/// legal identifier character, so qualified programs re-parse).
pub fn qualified_name(id: &str, name: &str) -> String {
    format!("{id}${name}")
}

/// Strips every `m{id}$` prefix in `ids` from `text`, restoring source
/// names in user-visible renderings (diagnostic messages and notes,
/// dirty-unit names). Applied at the presentation boundary only — the
/// checked program itself stays qualified.
pub fn demangle(text: &str, ids: &[String]) -> String {
    let mut out = text.to_string();
    for id in ids {
        let pat = format!("{id}$");
        if out.contains(pat.as_str()) {
            out = out.replace(pat.as_str(), "");
        }
    }
    out
}

/// Names a file declares at top level (and therefore owns): type
/// aliases, classes, interfaces, enums, functions, ambient declares,
/// and `var`s hoisted from top-level statements. Qualifier declaration
/// names are *not* included — they are labels for qualifier mining,
/// not referenceable values.
pub fn top_level_decls(p: &Program) -> Vec<Sym> {
    let mut out = Vec::new();
    for item in &p.items {
        match item {
            Item::TypeAlias(a) => out.push(a.name.clone()),
            Item::Qualif(_) => {}
            Item::Class(c) => out.push(c.name.clone()),
            Item::Interface(i) => out.push(i.name.clone()),
            Item::Enum(e) => out.push(e.name.clone()),
            Item::Fun(f) => out.push(f.name.clone()),
            Item::Declare(d) => out.push(d.name.clone()),
            Item::Stmt(s) => hoisted_decls(std::slice::from_ref(s), &mut out),
        }
    }
    out
}

/// Collects `var` and nested-function names hoisted to the enclosing
/// function (or module) scope: through `Seq` groups and `if`/`while`
/// blocks, but never into nested function bodies.
fn hoisted_decls(stmts: &[Stmt], out: &mut Vec<Sym>) {
    for s in stmts {
        match s {
            Stmt::VarDecl { name, .. } => out.push(name.clone()),
            Stmt::Fun(f) => out.push(f.name.clone()),
            Stmt::Seq(ss, _) => hoisted_decls(ss, out),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                hoisted_decls(&then_blk.stmts, out);
                hoisted_decls(&else_blk.stmts, out);
            }
            Stmt::While { body, .. } => hoisted_decls(&body.stmts, out),
            _ => {}
        }
    }
}

/// One file's renaming environment inside a closure.
#[derive(Clone, Debug, Default)]
pub struct ModuleEnv {
    /// Original name → qualified name: the module's own top-level
    /// declarations (qualified with its own id) plus its imports
    /// (qualified with the exporter's id). An own declaration shadows
    /// an import of the same name (import-then-shadow).
    pub renames: BTreeMap<Sym, Sym>,
    /// Names declared at top level only in *other* closure files and
    /// neither declared nor imported here, mapped to the declaring
    /// file's name. Referencing one is a [`QualifyError`].
    pub foreign: BTreeMap<Sym, String>,
}

/// A reference to another module's name without an import — the use
/// site's error, in the *file-local, pre-shift* coordinates of the
/// referencing file.
#[derive(Clone, Debug)]
pub struct QualifyError {
    /// The source name as written.
    pub name: Sym,
    /// Use-site span in the referencing file's own coordinates.
    pub span: Span,
    /// The file that declares the name.
    pub from: String,
}

/// Qualifies one file's items for a merged closure: renames per `env`,
/// and shifts every non-dummy span by `shift` bytes / `lines` lines so
/// spans keep pointing at the file's region of the merged text.
/// Returns the rewritten items, or the first foreign reference.
pub fn qualify_program(
    p: &Program,
    env: &ModuleEnv,
    shift: u32,
    lines: u32,
) -> Result<Vec<Item>, QualifyError> {
    let r = Renamer { env, shift, lines };
    let mut scope = Vec::new();
    p.items.iter().map(|it| r.item(it, &mut scope)).collect()
}

/// Rewrites a file's `import` declarations with shifted spans (the
/// merged program keeps them as inert metadata so the merged byte
/// ranges covered by import lines still belong to a parsed construct).
pub fn shift_imports(imports: &[ImportDecl], shift: u32, lines: u32) -> Vec<ImportDecl> {
    let r = Renamer {
        env: &ModuleEnv::default(),
        shift,
        lines,
    };
    imports
        .iter()
        .map(|imp| ImportDecl {
            names: imp
                .names
                .iter()
                .map(|(n, s)| (n.clone(), r.span(*s)))
                .collect(),
            from: imp.from.clone(),
            span: r.span(imp.span),
        })
        .collect()
}

/// Lexical scope during renaming: a stack of locally-bound names.
/// Scopes are small (parameters + hoisted locals), so linear search is
/// fine.
type Scope = Vec<Sym>;

fn bound(scope: &Scope, s: &Sym) -> bool {
    scope.iter().any(|n| n == s)
}

struct Renamer<'a> {
    env: &'a ModuleEnv,
    shift: u32,
    lines: u32,
}

impl Renamer<'_> {
    fn span(&self, s: Span) -> Span {
        if s.is_dummy() {
            s
        } else {
            Span {
                lo: s.lo + self.shift,
                hi: s.hi + self.shift,
                line: s.line + self.lines,
            }
        }
    }

    /// Renames a *reference* according to the scope rules. `at` is the
    /// original (pre-shift) use-site span for error reporting; type and
    /// predicate positions carry no spans of their own and pass the
    /// nearest enclosing construct's span.
    fn name(&self, s: &Sym, scope: &Scope, at: Span) -> Result<Sym, QualifyError> {
        if bound(scope, s) {
            return Ok(s.clone());
        }
        if let Some(q) = self.env.renames.get(s) {
            return Ok(q.clone());
        }
        if let Some(from) = self.env.foreign.get(s) {
            return Err(QualifyError {
                name: s.clone(),
                span: at,
                from: from.clone(),
            });
        }
        Ok(s.clone())
    }

    /// Renames a top-level *declaration* name (always through
    /// `renames`; top-level declarations are what `renames` is built
    /// from, so the lookup cannot hit `foreign`).
    fn decl(&self, s: &Sym) -> Sym {
        self.env
            .renames
            .get(s)
            .cloned()
            .unwrap_or_else(|| s.clone())
    }

    fn item(&self, item: &Item, scope: &mut Scope) -> Result<Item, QualifyError> {
        Ok(match item {
            Item::TypeAlias(a) => {
                let mark = scope.len();
                scope.extend(a.params.iter().cloned());
                let body = self.ty(&a.body, scope, a.span)?;
                scope.truncate(mark);
                Item::TypeAlias(TypeAlias {
                    name: self.decl(&a.name),
                    params: a.params.clone(),
                    body,
                    span: self.span(a.span),
                })
            }
            Item::Qualif(q) => {
                let mark = scope.len();
                let mut params = Vec::with_capacity(q.params.len());
                for (x, t) in &q.params {
                    params.push((x.clone(), self.ty(t, scope, q.span)?));
                    scope.push(x.clone());
                }
                let body = self.pred(&q.body, scope, q.span)?;
                scope.truncate(mark);
                // Qualifier names are mining labels, never referenced.
                Item::Qualif(QualifDecl {
                    name: q.name.clone(),
                    params,
                    body,
                    span: self.span(q.span),
                })
            }
            Item::Class(c) => Item::Class(self.class(c, scope)?),
            Item::Interface(i) => {
                let mark = scope.len();
                scope.extend(i.tparams.iter().cloned());
                scope.extend(i.fields.iter().map(|f| f.name.clone()));
                scope.push(Sym::from(rsc_logic::THIS));
                scope.push(Sym::from(rsc_logic::VV));
                let extends = i
                    .extends
                    .iter()
                    .map(|e| self.name(e, scope, i.span))
                    .collect::<Result<Vec<_>, _>>()?;
                let fields = i
                    .fields
                    .iter()
                    .map(|f| self.field(f, scope))
                    .collect::<Result<Vec<_>, _>>()?;
                let methods = i
                    .methods
                    .iter()
                    .map(|m| self.method(m, scope))
                    .collect::<Result<Vec<_>, _>>()?;
                scope.truncate(mark);
                Item::Interface(InterfaceDecl {
                    name: self.decl(&i.name),
                    tparams: i.tparams.clone(),
                    extends,
                    fields,
                    methods,
                    span: self.span(i.span),
                })
            }
            Item::Enum(e) => Item::Enum(EnumDecl {
                name: self.decl(&e.name),
                members: e.members.clone(),
                span: self.span(e.span),
            }),
            Item::Fun(f) => Item::Fun(self.fun(f, scope, true)?),
            Item::Declare(d) => Item::Declare(DeclareDecl {
                name: self.decl(&d.name),
                ty: self.ty(&d.ty, scope, d.span)?,
                span: self.span(d.span),
            }),
            Item::Stmt(s) => Item::Stmt(self.stmt(s, scope, true)?),
        })
    }

    fn class(&self, c: &ClassDecl, scope: &mut Scope) -> Result<ClassDecl, QualifyError> {
        let mark = scope.len();
        scope.extend(c.tparams.iter().cloned());
        scope.extend(c.fields.iter().map(|f| f.name.clone()));
        scope.push(Sym::from(rsc_logic::THIS));
        scope.push(Sym::from(rsc_logic::VV));
        let extends = match &c.extends {
            Some(sup) => Some(self.name(sup, scope, c.span)?),
            None => None,
        };
        let invariant = match &c.invariant {
            Some(p) => Some(self.pred(p, scope, c.span)?),
            None => None,
        };
        let fields = c
            .fields
            .iter()
            .map(|f| self.field(f, scope))
            .collect::<Result<Vec<_>, _>>()?;
        let ctor = match &c.ctor {
            Some(ct) => {
                let cm = scope.len();
                let mut params = Vec::with_capacity(ct.params.len());
                for (x, t) in &ct.params {
                    params.push((x.clone(), self.ty(t, scope, ct.span)?));
                    scope.push(x.clone());
                }
                let body = self.body_block(&ct.body, scope)?;
                scope.truncate(cm);
                Some(CtorDecl {
                    params,
                    body,
                    span: self.span(ct.span),
                })
            }
            None => None,
        };
        let methods = c
            .methods
            .iter()
            .map(|m| self.method(m, scope))
            .collect::<Result<Vec<_>, _>>()?;
        scope.truncate(mark);
        Ok(ClassDecl {
            name: self.decl(&c.name),
            tparams: c.tparams.clone(),
            extends,
            invariant,
            fields,
            ctor,
            methods,
            span: self.span(c.span),
        })
    }

    fn field(&self, f: &FieldDecl, scope: &mut Scope) -> Result<FieldDecl, QualifyError> {
        Ok(FieldDecl {
            name: f.name.clone(),
            mutability: f.mutability,
            ty: self.ty(&f.ty, scope, f.span)?,
            span: self.span(f.span),
        })
    }

    fn method(&self, m: &MethodDecl, scope: &mut Scope) -> Result<MethodDecl, QualifyError> {
        let sig = self.fun_ty(&m.sig, scope, m.span)?;
        let body = match &m.body {
            Some(b) => {
                let mark = scope.len();
                scope.extend(m.sig.tparams.iter().cloned());
                scope.extend(m.sig.params.iter().map(|(x, _)| x.clone()));
                let out = self.body_block(b, scope)?;
                scope.truncate(mark);
                Some(out)
            }
            None => None,
        };
        Ok(MethodDecl {
            name: m.name.clone(),
            recv: m.recv,
            sig,
            body,
            span: self.span(m.span),
        })
    }

    /// Renames a function declaration. `top` marks module scope: the
    /// function's name is a module declaration there (renamed), while a
    /// nested function's name is a local already bound by the enclosing
    /// body's hoisting.
    fn fun(&self, f: &FunDecl, scope: &mut Scope, top: bool) -> Result<FunDecl, QualifyError> {
        let sigs = f
            .sigs
            .iter()
            .map(|s| self.fun_ty(s, scope, f.span))
            .collect::<Result<Vec<_>, _>>()?;
        let mark = scope.len();
        for s in &f.sigs {
            scope.extend(s.tparams.iter().cloned());
        }
        scope.extend(f.params.iter().cloned());
        let body = self.body_block(&f.body, scope)?;
        scope.truncate(mark);
        Ok(FunDecl {
            name: if top {
                self.decl(&f.name)
            } else {
                f.name.clone()
            },
            sigs,
            params: f.params.clone(),
            body,
            span: self.span(f.span),
        })
    }

    /// A function/constructor body: binds the body's hoisted `var` and
    /// nested-function names before renaming its statements.
    fn body_block(&self, b: &Block, scope: &mut Scope) -> Result<Block, QualifyError> {
        let mark = scope.len();
        let mut hoisted = Vec::new();
        hoisted_decls(&b.stmts, &mut hoisted);
        scope.extend(hoisted);
        let out = self.block(b, scope, false)?;
        scope.truncate(mark);
        Ok(out)
    }

    fn block(&self, b: &Block, scope: &mut Scope, top: bool) -> Result<Block, QualifyError> {
        Ok(Block {
            stmts: b
                .stmts
                .iter()
                .map(|s| self.stmt(s, scope, top))
                .collect::<Result<Vec<_>, _>>()?,
            span: self.span(b.span),
        })
    }

    fn stmt(&self, s: &Stmt, scope: &mut Scope, top: bool) -> Result<Stmt, QualifyError> {
        Ok(match s {
            Stmt::VarDecl {
                name,
                ann,
                init,
                span,
            } => Stmt::VarDecl {
                // At module scope a `var` is a module declaration; in a
                // body it is a local (already bound via hoisting).
                name: if top { self.decl(name) } else { name.clone() },
                ann: match ann {
                    Some(t) => Some(self.ty(t, scope, *span)?),
                    None => None,
                },
                init: self.expr(init, scope)?,
                span: self.span(*span),
            },
            Stmt::Assign {
                target,
                value,
                span,
            } => Stmt::Assign {
                target: match target {
                    LValue::Var(x, sp) => LValue::Var(self.name(x, scope, *sp)?, self.span(*sp)),
                    LValue::Field(e, f, sp) => {
                        LValue::Field(self.expr(e, scope)?, f.clone(), self.span(*sp))
                    }
                    LValue::Index(a, i, sp) => {
                        LValue::Index(self.expr(a, scope)?, self.expr(i, scope)?, self.span(*sp))
                    }
                },
                value: self.expr(value, scope)?,
                span: self.span(*span),
            },
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => Stmt::If {
                cond: self.expr(cond, scope)?,
                then_blk: self.block(then_blk, scope, top)?,
                else_blk: self.block(else_blk, scope, top)?,
                span: self.span(*span),
            },
            Stmt::While { cond, body, span } => Stmt::While {
                cond: self.expr(cond, scope)?,
                body: self.block(body, scope, top)?,
                span: self.span(*span),
            },
            Stmt::Return { value, span } => Stmt::Return {
                value: match value {
                    Some(e) => Some(self.expr(e, scope)?),
                    None => None,
                },
                span: self.span(*span),
            },
            Stmt::ExprStmt { expr, span } => Stmt::ExprStmt {
                expr: self.expr(expr, scope)?,
                span: self.span(*span),
            },
            Stmt::Fun(f) => Stmt::Fun(self.fun(f, scope, top)?),
            Stmt::Seq(ss, span) => Stmt::Seq(
                ss.iter()
                    .map(|s| self.stmt(s, scope, top))
                    .collect::<Result<Vec<_>, _>>()?,
                self.span(*span),
            ),
            Stmt::Skip(span) => Stmt::Skip(self.span(*span)),
        })
    }

    fn expr(&self, e: &Expr, scope: &mut Scope) -> Result<Expr, QualifyError> {
        Ok(match e {
            Expr::Num(n, sp) => Expr::Num(*n, self.span(*sp)),
            Expr::Bv(n, sp) => Expr::Bv(*n, self.span(*sp)),
            Expr::Str(s, sp) => Expr::Str(s.clone(), self.span(*sp)),
            Expr::Bool(b, sp) => Expr::Bool(*b, self.span(*sp)),
            Expr::Null(sp) => Expr::Null(self.span(*sp)),
            Expr::Undefined(sp) => Expr::Undefined(self.span(*sp)),
            Expr::Var(x, sp) => Expr::Var(self.name(x, scope, *sp)?, self.span(*sp)),
            Expr::This(sp) => Expr::This(self.span(*sp)),
            Expr::Field(b, f, sp) => {
                Expr::Field(Box::new(self.expr(b, scope)?), f.clone(), self.span(*sp))
            }
            Expr::Index(a, i, sp) => Expr::Index(
                Box::new(self.expr(a, scope)?),
                Box::new(self.expr(i, scope)?),
                self.span(*sp),
            ),
            Expr::Call(f, args, sp) => Expr::Call(
                Box::new(self.expr(f, scope)?),
                args.iter()
                    .map(|a| self.expr(a, scope))
                    .collect::<Result<Vec<_>, _>>()?,
                self.span(*sp),
            ),
            Expr::New(c, targs, args, sp) => Expr::New(
                self.name(c, scope, *sp)?,
                targs
                    .iter()
                    .map(|t| self.ty(t, scope, *sp))
                    .collect::<Result<Vec<_>, _>>()?,
                args.iter()
                    .map(|a| self.expr(a, scope))
                    .collect::<Result<Vec<_>, _>>()?,
                self.span(*sp),
            ),
            Expr::Cast(t, e, sp) => Expr::Cast(
                self.ty(t, scope, *sp)?,
                Box::new(self.expr(e, scope)?),
                self.span(*sp),
            ),
            Expr::Unary(op, e, sp) => {
                Expr::Unary(*op, Box::new(self.expr(e, scope)?), self.span(*sp))
            }
            Expr::Binary(op, a, b, sp) => Expr::Binary(
                *op,
                Box::new(self.expr(a, scope)?),
                Box::new(self.expr(b, scope)?),
                self.span(*sp),
            ),
            Expr::Ternary(c, t, f, sp) => Expr::Ternary(
                Box::new(self.expr(c, scope)?),
                Box::new(self.expr(t, scope)?),
                Box::new(self.expr(f, scope)?),
                self.span(*sp),
            ),
            Expr::ArrayLit(es, sp) => Expr::ArrayLit(
                es.iter()
                    .map(|e| self.expr(e, scope))
                    .collect::<Result<Vec<_>, _>>()?,
                self.span(*sp),
            ),
        })
    }

    /// Surface types carry no spans; `ctx` is the nearest enclosing
    /// construct's original span, used to place foreign-reference
    /// errors.
    fn ty(&self, t: &AnnTy, scope: &mut Scope, ctx: Span) -> Result<AnnTy, QualifyError> {
        Ok(match t {
            AnnTy::Name(n, args) => AnnTy::Name(
                self.name(n, scope, ctx)?,
                args.iter()
                    .map(|a| {
                        Ok(match a {
                            AnnArg::Ty(t) => AnnArg::Ty(self.ty(t, scope, ctx)?),
                            AnnArg::Term(t) => AnnArg::Term(self.term(t, scope, ctx)?),
                            AnnArg::Mut(m) => AnnArg::Mut(*m),
                        })
                    })
                    .collect::<Result<Vec<_>, QualifyError>>()?,
            ),
            AnnTy::Refined { vv, base, pred } => {
                let base = Box::new(self.ty(base, scope, ctx)?);
                let mark = scope.len();
                scope.push(vv.clone());
                let pred = self.pred(pred, scope, ctx)?;
                scope.truncate(mark);
                AnnTy::Refined {
                    vv: vv.clone(),
                    base,
                    pred,
                }
            }
            AnnTy::Array {
                elem,
                mutability,
                nonempty,
            } => AnnTy::Array {
                elem: Box::new(self.ty(elem, scope, ctx)?),
                mutability: *mutability,
                nonempty: *nonempty,
            },
            AnnTy::Union(ts) => AnnTy::Union(
                ts.iter()
                    .map(|t| self.ty(t, scope, ctx))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            AnnTy::Arrow(ft) => AnnTy::Arrow(self.fun_ty(ft, scope, ctx)?),
        })
    }

    fn fun_ty(&self, ft: &FunTy, scope: &mut Scope, ctx: Span) -> Result<FunTy, QualifyError> {
        let mark = scope.len();
        scope.extend(ft.tparams.iter().cloned());
        let mut params = Vec::with_capacity(ft.params.len());
        // Dependent signatures: later parameter types (and the return
        // type) may mention earlier parameter names.
        for (x, t) in &ft.params {
            params.push((x.clone(), self.ty(t, scope, ctx)?));
            scope.push(x.clone());
        }
        let ret = Box::new(self.ty(&ft.ret, scope, ctx)?);
        scope.truncate(mark);
        Ok(FunTy {
            tparams: ft.tparams.clone(),
            params,
            ret,
        })
    }

    fn pred(&self, p: &Pred, scope: &mut Scope, ctx: Span) -> Result<Pred, QualifyError> {
        Ok(match p {
            Pred::True => Pred::True,
            Pred::False => Pred::False,
            Pred::And(ps) => Pred::And(
                ps.iter()
                    .map(|p| self.pred(p, scope, ctx))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Pred::Or(ps) => Pred::Or(
                ps.iter()
                    .map(|p| self.pred(p, scope, ctx))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Pred::Not(p) => Pred::Not(Box::new(self.pred(p, scope, ctx)?)),
            Pred::Imp(a, b) => Pred::Imp(
                Box::new(self.pred(a, scope, ctx)?),
                Box::new(self.pred(b, scope, ctx)?),
            ),
            Pred::Iff(a, b) => Pred::Iff(
                Box::new(self.pred(a, scope, ctx)?),
                Box::new(self.pred(b, scope, ctx)?),
            ),
            Pred::Cmp(op, a, b) => {
                Pred::Cmp(*op, self.term(a, scope, ctx)?, self.term(b, scope, ctx)?)
            }
            Pred::App(h, args) => Pred::App(
                self.name(h, scope, ctx)?,
                args.iter()
                    .map(|t| self.term(t, scope, ctx))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Pred::TermPred(t) => Pred::TermPred(self.term(t, scope, ctx)?),
            // κ-variables never occur in parsed surface predicates.
            Pred::KVar(id, subst) => Pred::KVar(*id, subst.clone()),
        })
    }

    fn term(&self, t: &Term, scope: &mut Scope, ctx: Span) -> Result<Term, QualifyError> {
        Ok(match t {
            Term::Var(x) => Term::Var(self.name(x, scope, ctx)?),
            Term::IntLit(_) | Term::BoolLit(_) | Term::StrLit(_) | Term::BvLit(_) => t.clone(),
            Term::Field(b, f) => Term::Field(Box::new(self.term(b, scope, ctx)?), f.clone()),
            Term::App(h, args) => Term::App(
                self.name(h, scope, ctx)?,
                args.iter()
                    .map(|t| self.term(t, scope, ctx))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Term::Bin(op, a, b) => Term::Bin(
                *op,
                Box::new(self.term(a, scope, ctx)?),
                Box::new(self.term(b, scope, ctx)?),
            ),
            Term::Neg(a) => Term::Neg(Box::new(self.term(a, scope, ctx)?)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    const LIB: &str = "type nat = {v: number | 0 <= v};\n\
        export function step(x: number): nat {\n\
            if (x < 0) { return 0; }\n\
            return x + 1;\n\
        }\n\
        function helper(y: number): number { return y; }\n";

    fn env_for(p: &Program, id: &str) -> ModuleEnv {
        let mut env = ModuleEnv::default();
        for n in top_level_decls(p) {
            let q = Sym::from(qualified_name(id, n.as_str()));
            env.renames.insert(n, q);
        }
        env
    }

    #[test]
    fn module_ids_are_stable_and_distinct() {
        assert_eq!(module_id("lib.rsc"), module_id("lib.rsc"));
        assert_ne!(module_id("lib.rsc"), module_id("app.rsc"));
        assert!(module_id("lib.rsc").len() == 17);
    }

    #[test]
    fn identity_for_empty_env() {
        let p = parse_program(LIB).unwrap();
        let items = qualify_program(&p, &ModuleEnv::default(), 0, 0).unwrap();
        let q = Program {
            items,
            imports: p.imports.clone(),
            exports: p.exports.clone(),
        };
        assert_eq!(crate::pretty::program(&p), crate::pretty::program(&q));
    }

    #[test]
    fn renames_declarations_and_references() {
        let p = parse_program(LIB).unwrap();
        let id = module_id("lib.rsc");
        let env = env_for(&p, &id);
        let items = qualify_program(&p, &env, 0, 0).unwrap();
        let printed = crate::pretty::program(&Program {
            items,
            imports: Vec::new(),
            exports: Vec::new(),
        });
        // Declarations and references are qualified…
        assert!(
            printed.contains(&format!("function {id}$step")),
            "{printed}"
        );
        assert!(printed.contains(&format!("type {id}$nat")), "{printed}");
        assert!(printed.contains(&format!("): {id}$nat")), "{printed}");
        // …while locals and builtins are untouched.
        assert!(printed.contains("(x: number)"), "{printed}");
        assert!(printed.contains("return (x + 1);"), "{printed}");
        // Demangling restores the source text shape.
        let plain = demangle(&printed, &[id]);
        assert!(!plain.contains('$'), "{plain}");
        assert!(plain.contains("function step"), "{plain}");
    }

    #[test]
    fn qualified_programs_reparse() {
        let p = parse_program(LIB).unwrap();
        let env = env_for(&p, &module_id("lib.rsc"));
        let items = qualify_program(&p, &env, 0, 0).unwrap();
        let printed = crate::pretty::program(&Program {
            items,
            imports: Vec::new(),
            exports: Vec::new(),
        });
        parse_program(&printed).unwrap_or_else(|e| panic!("{e}: {printed}"));
    }

    #[test]
    fn foreign_reference_is_an_error_at_the_use_site() {
        let app = "function use(k: number): number { return helper(k); }\n";
        let p = parse_program(app).unwrap();
        let mut env = env_for(&p, &module_id("app.rsc"));
        env.foreign
            .insert(Sym::from("helper"), "lib.rsc".to_string());
        let err = qualify_program(&p, &env, 0, 0).unwrap_err();
        assert_eq!(err.name.as_str(), "helper");
        assert_eq!(err.from, "lib.rsc");
        // The use-site span points at `helper` in the caller's own text.
        assert_eq!(&app[err.span.lo as usize..err.span.hi as usize], "helper");
    }

    #[test]
    fn locals_shadow_module_names() {
        // A parameter named like a foreign declaration is a local, not a
        // foreign reference.
        let src = "function f(helper: number): number { return helper; }\n";
        let p = parse_program(src).unwrap();
        let mut env = ModuleEnv::default();
        env.foreign
            .insert(Sym::from("helper"), "lib.rsc".to_string());
        assert!(qualify_program(&p, &env, 0, 0).is_ok());
    }

    #[test]
    fn spans_shift_into_the_merged_region() {
        let p = parse_program(LIB).unwrap();
        let env = env_for(&p, &module_id("lib.rsc"));
        let items = qualify_program(&p, &env, 100, 7).unwrap();
        let Item::TypeAlias(a) = &items[0] else {
            panic!("first item is the alias");
        };
        let Item::TypeAlias(orig) = &p.items[0] else {
            panic!("first item is the alias");
        };
        assert_eq!(a.span.lo, orig.span.lo + 100);
        assert_eq!(a.span.line, orig.span.line + 7);
    }
}
