//! A recursive-descent parser with token-level backtracking for the RSC
//! input language.

use rsc_logic::{BinOp, CmpOp, Pred, Sym, Term};

use crate::ast::*;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Tok, Token};
use crate::types::{AnnArg, AnnTy, FunTy, Mutability};

/// A parse error with position information.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Where the error occurred.
    pub span: Span,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

/// Parses a complete RSC program.
pub fn parse_program(src: &str) -> PResult<Program> {
    let _sp = rsc_obs::span!("parse");
    Parser::new(src)?.program()
}

/// Parses a type annotation in isolation (used by tests and tools).
pub fn parse_type(src: &str) -> PResult<AnnTy> {
    let mut p = Parser::new(src)?;
    let t = p.ty()?;
    p.expect(Tok::Eof)?;
    Ok(t)
}

/// Parses a predicate in isolation.
pub fn parse_pred(src: &str) -> PResult<Pred> {
    let mut p = Parser::new(src)?;
    let q = p.pred()?;
    p.expect(Tok::Eof)?;
    Ok(q)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// Overload signatures awaiting their function, in declaration
    /// order. A `Vec` rather than a map: when several sigs dangle at end
    /// of input, the error must deterministically blame the
    /// first-declared one (a hash map's iteration order would pick an
    /// arbitrary sig per run).
    pending_sigs: Vec<(Sym, Span, Vec<FunTy>)>,
    imports: Vec<ImportDecl>,
    exports: Vec<(Sym, Span)>,
}

impl Parser {
    fn new(src: &str) -> PResult<Parser> {
        let toks = lex(src).map_err(|e| ParseError {
            message: e.message,
            span: e.span,
        })?;
        Ok(Parser {
            toks,
            pos: 0,
            pending_sigs: Vec::new(),
            imports: Vec::new(),
            exports: Vec::new(),
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_at(&self, k: usize) -> &Tok {
        let i = (self.pos + k).min(self.toks.len() - 1);
        &self.toks[i].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: Tok) -> bool {
        if *self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> PResult<Span> {
        if *self.peek() == t {
            let s = self.span();
            self.bump();
            Ok(s)
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            span: self.span(),
        }
    }

    fn ident(&mut self) -> PResult<Sym> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(Sym::from(s))
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    // ---------------------------------------------------------- program ---

    fn program(&mut self) -> PResult<Program> {
        let mut items = Vec::new();
        while *self.peek() != Tok::Eof {
            if let Some(item) = self.item()? {
                items.push(item);
            }
        }
        if let Some((name, span, _)) = self.pending_sigs.first() {
            // Deterministic: blame the *first-declared* dangling sig, at
            // its own location (not wherever the parser happens to be).
            return Err(ParseError {
                message: format!("sig for `{name}` has no matching function"),
                span: *span,
            });
        }
        Ok(Program {
            items,
            imports: std::mem::take(&mut self.imports),
            exports: std::mem::take(&mut self.exports),
        })
    }

    fn item(&mut self) -> PResult<Option<Item>> {
        match self.peek() {
            Tok::Type => Ok(Some(Item::TypeAlias(self.type_alias()?))),
            Tok::Qualif => Ok(Some(Item::Qualif(self.qualif_decl()?))),
            Tok::Class => Ok(Some(Item::Class(self.class_decl()?))),
            Tok::Interface => Ok(Some(Item::Interface(self.interface_decl()?))),
            Tok::Enum => Ok(Some(Item::Enum(self.enum_decl()?))),
            Tok::Declare => Ok(Some(Item::Declare(self.declare_decl()?))),
            Tok::Import => {
                self.import_decl()?;
                Ok(None)
            }
            Tok::Export => self.export_item(),
            Tok::Sig => {
                self.sig_decl()?;
                Ok(None)
            }
            Tok::Function => Ok(Some(Item::Fun(self.fun_decl()?))),
            _ => Ok(Some(Item::Stmt(self.stmt()?))),
        }
    }

    /// `import {a, b} from "./mod";` — recorded on the [`Program`], not
    /// as an item: the checker ignores imports (the workspace layer
    /// resolves them before checking).
    fn import_decl(&mut self) -> PResult<()> {
        let lo = self.expect(Tok::Import)?;
        self.expect(Tok::LBrace)?;
        let mut names = Vec::new();
        while *self.peek() != Tok::RBrace {
            let nspan = self.span();
            let name = self.ident()?;
            names.push((name, nspan));
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RBrace)?;
        // `from` is contextual (it stays a valid identifier elsewhere).
        match self.peek().clone() {
            Tok::Ident(s) if s == "from" => {
                self.bump();
            }
            other => return Err(self.err(format!("expected `from`, found `{other}`"))),
        }
        let from = match self.peek().clone() {
            Tok::Str(s) => {
                self.bump();
                s
            }
            other => {
                return Err(self.err(format!(
                    "expected module string after `from`, found `{other}`"
                )))
            }
        };
        let hi = self.expect(Tok::Semi)?;
        self.imports.push(ImportDecl {
            names,
            from,
            span: lo.to(hi),
        });
        Ok(())
    }

    /// `export <item>` — parses the item and records its name in the
    /// program's export list. Only named declarations can be exported.
    fn export_item(&mut self) -> PResult<Option<Item>> {
        let lo = self.expect(Tok::Export)?;
        if matches!(self.peek(), Tok::Sig | Tok::Import | Tok::Export) {
            return Err(self.err("`export` must precede a named declaration".into()));
        }
        let item = self.item()?;
        let (name, span) = match &item {
            Some(Item::Fun(f)) => (f.name.clone(), f.span),
            Some(Item::Class(c)) => (c.name.clone(), c.span),
            Some(Item::TypeAlias(a)) => (a.name.clone(), a.span),
            Some(Item::Interface(i)) => (i.name.clone(), i.span),
            Some(Item::Enum(e)) => (e.name.clone(), e.span),
            Some(Item::Declare(d)) => (d.name.clone(), d.span),
            Some(Item::Qualif(q)) => (q.name.clone(), q.span),
            Some(Item::Stmt(_)) | None => {
                return Err(ParseError {
                    message: "`export` must precede a named declaration \
                              (function, class, type, interface, enum, declare, qualif)"
                        .into(),
                    span: lo,
                })
            }
        };
        self.exports.push((name, lo.to(span)));
        Ok(item)
    }

    fn type_alias(&mut self) -> PResult<TypeAlias> {
        let lo = self.expect(Tok::Type)?;
        let name = self.ident()?;
        let mut params = Vec::new();
        if self.eat(Tok::Lt) {
            loop {
                params.push(self.ident()?);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::Gt)?;
        }
        self.expect(Tok::Assign)?;
        let body = self.ty()?;
        let hi = self.expect(Tok::Semi)?;
        Ok(TypeAlias {
            name,
            params,
            body,
            span: lo.to(hi),
        })
    }

    fn qualif_decl(&mut self) -> PResult<QualifDecl> {
        let lo = self.expect(Tok::Qualif)?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        while *self.peek() != Tok::RParen {
            let x = self.ident()?;
            self.expect(Tok::Colon)?;
            let t = self.ty()?;
            params.push((x, t));
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::Colon)?;
        let body = self.pred()?;
        let hi = self.expect(Tok::Semi)?;
        Ok(QualifDecl {
            name,
            params,
            body,
            span: lo.to(hi),
        })
    }

    fn enum_decl(&mut self) -> PResult<EnumDecl> {
        let lo = self.expect(Tok::Enum)?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut members = Vec::new();
        while *self.peek() != Tok::RBrace {
            let m = self.ident()?;
            self.expect(Tok::Assign)?;
            let v = self.enum_value()?;
            members.push((m, v));
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        let hi = self.expect(Tok::RBrace)?;
        Ok(EnumDecl {
            name,
            members,
            span: lo.to(hi),
        })
    }

    /// Enum member values: hex/int literals possibly or-ed together, and
    /// references to earlier members (`Object = Class | Interface`).
    fn enum_value(&mut self) -> PResult<u32> {
        // We parse a small constant expression over | of literals and
        // previously unknown idents resolved later — for simplicity only
        // literals and `|` of literals are supported here; ports
        // pre-compute combined flags.
        let mut v = self.enum_atom()?;
        while self.eat(Tok::Pipe) {
            v |= self.enum_atom()?;
        }
        Ok(v)
    }

    fn enum_atom(&mut self) -> PResult<u32> {
        match self.peek().clone() {
            Tok::Hex(v) => {
                self.bump();
                Ok(v)
            }
            Tok::Int(v) => {
                self.bump();
                u32::try_from(v).map_err(|_| self.err("enum value out of range".into()))
            }
            other => Err(self.err(format!("expected enum constant, found `{other}`"))),
        }
    }

    fn declare_decl(&mut self) -> PResult<DeclareDecl> {
        let lo = self.expect(Tok::Declare)?;
        let name = self.ident()?;
        self.expect(Tok::Colon)?;
        let ty = self.ty()?;
        let hi = self.expect(Tok::Semi)?;
        Ok(DeclareDecl {
            name,
            ty,
            span: lo.to(hi),
        })
    }

    fn sig_decl(&mut self) -> PResult<()> {
        let lo = self.expect(Tok::Sig)?;
        let name = self.ident()?;
        self.expect(Tok::Colon)?;
        let t = self.ty()?;
        self.expect(Tok::Semi)?;
        match t {
            AnnTy::Arrow(ft) => {
                match self.pending_sigs.iter_mut().find(|(n, _, _)| *n == name) {
                    Some((_, _, sigs)) => sigs.push(ft),
                    None => self.pending_sigs.push((name, lo, vec![ft])),
                }
                Ok(())
            }
            _ => Err(self.err(format!("sig for `{name}` must be a function type"))),
        }
    }

    fn fun_decl(&mut self) -> PResult<FunDecl> {
        let lo = self.expect(Tok::Function)?;
        let name = self.ident()?;
        let mut tparams = Vec::new();
        if self.eat(Tok::Lt) {
            loop {
                tparams.push(self.ident()?);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::Gt)?;
        }
        self.expect(Tok::LParen)?;
        let mut params: Vec<Sym> = Vec::new();
        let mut anns: Vec<Option<AnnTy>> = Vec::new();
        while *self.peek() != Tok::RParen {
            let x = self.ident()?;
            let ann = if self.eat(Tok::Colon) {
                Some(self.ty()?)
            } else {
                None
            };
            params.push(x);
            anns.push(ann);
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        let ret_ann = if self.eat(Tok::Colon) {
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        let span = lo.to(self.prev_span());

        let mut sigs = match self.pending_sigs.iter().position(|(n, _, _)| *n == name) {
            Some(i) => self.pending_sigs.remove(i).2,
            None => Vec::new(),
        };
        if sigs.is_empty() && anns.iter().all(Option::is_some) && !anns.is_empty() {
            // Build one signature from inline annotations.
            let ft = FunTy {
                tparams,
                params: params
                    .iter()
                    .cloned()
                    .zip(anns.into_iter().map(Option::unwrap))
                    .collect(),
                ret: Box::new(ret_ann.unwrap_or_else(|| AnnTy::name("void"))),
            };
            sigs.push(ft);
        } else if sigs.is_empty() && params.is_empty() {
            sigs.push(FunTy {
                tparams,
                params: Vec::new(),
                ret: Box::new(ret_ann.unwrap_or_else(|| AnnTy::name("void"))),
            });
        }
        // Otherwise the function is unannotated: its signature is inferred
        // from the call-site template it is passed to (§2.2.1).
        let _ = span;
        // Note: an overload signature may bind *fewer* parameters than the
        // function declares (the extra parameters are `undefined` in that
        // overload) — exactly the `$reduce` idiom from §2.1.2.
        Ok(FunDecl {
            name,
            sigs,
            params,
            body,
            span,
        })
    }

    fn class_decl(&mut self) -> PResult<ClassDecl> {
        let lo = self.expect(Tok::Class)?;
        let name = self.ident()?;
        let mut tparams = Vec::new();
        if self.eat(Tok::Lt) {
            loop {
                let p = self.ident()?;
                // Allow and ignore `extends RO`-style bounds on mutability params.
                if self.eat(Tok::Extends) {
                    self.ident()?;
                }
                tparams.push(p);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::Gt)?;
        }
        let extends = if self.eat(Tok::Extends) {
            let s = self.ident()?;
            // Ignore type arguments on the superclass for now.
            if self.eat(Tok::Lt) {
                let mut depth = 1;
                while depth > 0 {
                    match self.bump() {
                        Tok::Lt => depth += 1,
                        Tok::Gt => depth -= 1,
                        Tok::Eof => return Err(self.err("unterminated type arguments".into())),
                        _ => {}
                    }
                }
            }
            Some(s)
        } else {
            None
        };
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        let mut ctor = None;
        let mut invariant = None;
        while *self.peek() != Tok::RBrace {
            match self.peek().clone() {
                Tok::Invariant => {
                    self.bump();
                    invariant = Some(self.pred()?);
                    self.expect(Tok::Semi)?;
                }
                Tok::Constructor => {
                    let clo = self.span();
                    self.bump();
                    self.expect(Tok::LParen)?;
                    let mut params = Vec::new();
                    while *self.peek() != Tok::RParen {
                        let x = self.ident()?;
                        self.expect(Tok::Colon)?;
                        let t = self.ty()?;
                        params.push((x, t));
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RParen)?;
                    let body = self.block()?;
                    ctor = Some(CtorDecl {
                        params,
                        body,
                        span: clo.to(self.prev_span()),
                    });
                }
                Tok::Immutable | Tok::Mutable => {
                    let m = if self.bump() == Tok::Immutable {
                        FieldMut::Immutable
                    } else {
                        FieldMut::Mutable
                    };
                    fields.push(self.field_decl(m)?);
                }
                Tok::At => {
                    methods.push(self.method_decl()?);
                }
                Tok::Ident(_) => {
                    // field `f : T;` or method `m(...) ... { ... }`
                    if *self.peek_at(1) == Tok::Colon {
                        fields.push(self.field_decl(FieldMut::Mutable)?);
                    } else {
                        methods.push(self.method_decl()?);
                    }
                }
                other => return Err(self.err(format!("unexpected `{other}` in class body"))),
            }
        }
        let hi = self.expect(Tok::RBrace)?;
        Ok(ClassDecl {
            name,
            tparams,
            extends,
            invariant,
            fields,
            ctor,
            methods,
            span: lo.to(hi),
        })
    }

    fn field_decl(&mut self, m: FieldMut) -> PResult<FieldDecl> {
        let lo = self.span();
        let name = self.ident()?;
        self.expect(Tok::Colon)?;
        let ty = self.ty()?;
        let hi = self.expect(Tok::Semi)?;
        Ok(FieldDecl {
            name,
            mutability: m,
            ty,
            span: lo.to(hi),
        })
    }

    fn method_decl(&mut self) -> PResult<MethodDecl> {
        let lo = self.span();
        let recv = if self.eat(Tok::At) {
            let m = self.ident()?;
            Mutability::from_abbrev(m.as_str())
                .ok_or_else(|| self.err(format!("unknown method annotation @{m}")))?
        } else {
            Mutability::Mutable
        };
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        while *self.peek() != Tok::RParen {
            let x = self.ident()?;
            self.expect(Tok::Colon)?;
            let t = self.ty()?;
            params.push((x, t));
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        let ret = if self.eat(Tok::Colon) {
            self.ty()?
        } else {
            AnnTy::name("void")
        };
        let body = if *self.peek() == Tok::LBrace {
            Some(self.block()?)
        } else {
            self.expect(Tok::Semi)?;
            None
        };
        Ok(MethodDecl {
            name,
            recv,
            sig: FunTy {
                tparams: Vec::new(),
                params,
                ret: Box::new(ret),
            },
            body,
            span: lo.to(self.prev_span()),
        })
    }

    fn interface_decl(&mut self) -> PResult<InterfaceDecl> {
        let lo = self.expect(Tok::Interface)?;
        let name = self.ident()?;
        let mut tparams = Vec::new();
        if self.eat(Tok::Lt) {
            loop {
                tparams.push(self.ident()?);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::Gt)?;
        }
        let mut extends = Vec::new();
        if self.eat(Tok::Extends) {
            loop {
                extends.push(self.ident()?);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while *self.peek() != Tok::RBrace {
            match self.peek().clone() {
                Tok::Immutable | Tok::Mutable => {
                    let m = if self.bump() == Tok::Immutable {
                        FieldMut::Immutable
                    } else {
                        FieldMut::Mutable
                    };
                    fields.push(self.field_decl(m)?);
                }
                Tok::At | Tok::Ident(_)
                    if *self.peek_at(1) == Tok::LParen || *self.peek() == Tok::At =>
                {
                    methods.push(self.method_decl()?);
                }
                Tok::Ident(_) => {
                    fields.push(self.field_decl(FieldMut::Mutable)?);
                }
                other => return Err(self.err(format!("unexpected `{other}` in interface body"))),
            }
        }
        let hi = self.expect(Tok::RBrace)?;
        Ok(InterfaceDecl {
            name,
            tparams,
            extends,
            fields,
            methods,
            span: lo.to(hi),
        })
    }

    // ------------------------------------------------------- statements ---

    fn block(&mut self) -> PResult<Block> {
        let lo = self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        let hi = self.expect(Tok::RBrace)?;
        Ok(Block {
            stmts,
            span: lo.to(hi),
        })
    }

    fn block_or_stmt(&mut self) -> PResult<Block> {
        if *self.peek() == Tok::LBrace {
            self.block()
        } else {
            let s = self.stmt()?;
            let span = s.span();
            Ok(Block {
                stmts: vec![s],
                span,
            })
        }
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        match self.peek().clone() {
            Tok::Var | Tok::Let => self.var_decl_stmt(),
            Tok::If => self.if_stmt(),
            Tok::While => self.while_stmt(),
            Tok::For => self.for_stmt(),
            Tok::Return => {
                let lo = self.span();
                self.bump();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                let hi = self.expect(Tok::Semi)?;
                Ok(Stmt::Return {
                    value,
                    span: lo.to(hi),
                })
            }
            Tok::Function => Ok(Stmt::Fun(self.fun_decl()?)),
            Tok::Sig => {
                self.sig_decl()?;
                // A sig is not itself a statement; parse the next one.
                self.stmt()
            }
            Tok::Break => Err(self.err(
                "`break` is not supported; restructure the loop (the paper's ports did the same)"
                    .into(),
            )),
            Tok::Semi => {
                let s = self.span();
                self.bump();
                Ok(Stmt::Skip(s))
            }
            Tok::LBrace => {
                // Braced group: `var` is function-scoped, so a bare block
                // is just a scope-transparent sequence.
                let blk = self.block()?;
                let span = blk.span;
                Ok(Stmt::Seq(blk.stmts, span))
            }
            _ => self.expr_or_assign_stmt(true),
        }
    }

    fn var_decl_stmt(&mut self) -> PResult<Stmt> {
        let lo = self.span();
        self.bump(); // var | let
        let mut decls: Vec<Stmt> = Vec::new();
        loop {
            let name = self.ident()?;
            let ann = if self.eat(Tok::Colon) {
                Some(self.ty()?)
            } else {
                None
            };
            let init = if self.eat(Tok::Assign) {
                self.expr()?
            } else {
                Expr::Undefined(self.prev_span())
            };
            decls.push(Stmt::VarDecl {
                name,
                ann,
                init,
                span: lo.to(self.prev_span()),
            });
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        let hi = self.expect(Tok::Semi)?;
        if decls.len() == 1 {
            Ok(decls.pop().unwrap())
        } else {
            Ok(Stmt::Seq(decls, lo.to(hi)))
        }
    }

    fn if_stmt(&mut self) -> PResult<Stmt> {
        let lo = self.expect(Tok::If)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let then_blk = self.block_or_stmt()?;
        let else_blk = if self.eat(Tok::Else) {
            if *self.peek() == Tok::If {
                let s = self.if_stmt()?;
                let span = s.span();
                Block {
                    stmts: vec![s],
                    span,
                }
            } else {
                self.block_or_stmt()?
            }
        } else {
            Block::default()
        };
        Ok(Stmt::If {
            cond,
            then_blk,
            else_blk,
            span: lo.to(self.prev_span()),
        })
    }

    fn while_stmt(&mut self) -> PResult<Stmt> {
        let lo = self.expect(Tok::While)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let body = self.block_or_stmt()?;
        Ok(Stmt::While {
            cond,
            body,
            span: lo.to(self.prev_span()),
        })
    }

    /// `for (init; cond; step) body` desugars to
    /// `{ init; while (cond) { body; step } }`.
    fn for_stmt(&mut self) -> PResult<Stmt> {
        let lo = self.expect(Tok::For)?;
        self.expect(Tok::LParen)?;
        let init = if *self.peek() == Tok::Semi {
            self.bump();
            Stmt::Skip(lo)
        } else if matches!(self.peek(), Tok::Var | Tok::Let) {
            self.var_decl_stmt()?
        } else {
            self.expr_or_assign_stmt(true)?
        };
        let cond = if *self.peek() == Tok::Semi {
            Expr::Bool(true, self.span())
        } else {
            self.expr()?
        };
        self.expect(Tok::Semi)?;
        let step = if *self.peek() == Tok::RParen {
            Stmt::Skip(self.span())
        } else {
            self.expr_or_assign_stmt(false)?
        };
        self.expect(Tok::RParen)?;
        let mut body = self.block_or_stmt()?;
        body.stmts.push(step);
        let span = lo.to(self.prev_span());
        let whl = Stmt::While { cond, body, span };
        Ok(Stmt::Seq(vec![init, whl], span))
    }

    /// Expression statements and the assignment sugar family:
    /// `x = e`, `e.f = e`, `a[i] = e`, `x++`, `x--`, `x += e`, `x -= e`.
    fn expr_or_assign_stmt(&mut self, want_semi: bool) -> PResult<Stmt> {
        let lo = self.span();
        let e = self.expr()?;
        let stmt = match self.peek().clone() {
            Tok::Assign => {
                self.bump();
                let rhs = self.expr()?;
                let target = self.lvalue(e)?;
                Stmt::Assign {
                    target,
                    value: rhs,
                    span: lo.to(self.prev_span()),
                }
            }
            Tok::PlusPlus | Tok::MinusMinus => {
                let op = if self.bump() == Tok::PlusPlus {
                    BinOpE::Add
                } else {
                    BinOpE::Sub
                };
                let span = lo.to(self.prev_span());
                let target = self.lvalue(e.clone())?;
                Stmt::Assign {
                    target,
                    value: Expr::Binary(op, Box::new(e), Box::new(Expr::Num(1, span)), span),
                    span,
                }
            }
            Tok::PlusEq | Tok::MinusEq => {
                let op = if self.bump() == Tok::PlusEq {
                    BinOpE::Add
                } else {
                    BinOpE::Sub
                };
                let rhs = self.expr()?;
                let span = lo.to(self.prev_span());
                let target = self.lvalue(e.clone())?;
                Stmt::Assign {
                    target,
                    value: Expr::Binary(op, Box::new(e), Box::new(rhs), span),
                    span,
                }
            }
            _ => Stmt::ExprStmt {
                expr: e,
                span: lo.to(self.prev_span()),
            },
        };
        if want_semi {
            self.expect(Tok::Semi)?;
        }
        Ok(stmt)
    }

    fn lvalue(&self, e: Expr) -> PResult<LValue> {
        match e {
            Expr::Var(x, s) => Ok(LValue::Var(x, s)),
            Expr::Field(b, f, s) => Ok(LValue::Field(*b, f, s)),
            Expr::Index(a, i, s) => Ok(LValue::Index(*a, *i, s)),
            other => Err(ParseError {
                message: "invalid assignment target".into(),
                span: other.span(),
            }),
        }
    }

    // ------------------------------------------------------ expressions ---

    fn expr(&mut self) -> PResult<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let c = self.or_expr()?;
        if self.eat(Tok::Question) {
            let t = self.expr()?;
            self.expect(Tok::Colon)?;
            let e = self.expr()?;
            let span = c.span().to(e.span());
            Ok(Expr::Ternary(Box::new(c), Box::new(t), Box::new(e), span))
        } else {
            Ok(c)
        }
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut l = self.and_expr()?;
        while self.eat(Tok::OrOr) {
            let r = self.and_expr()?;
            let span = l.span().to(r.span());
            l = Expr::Binary(BinOpE::Or, Box::new(l), Box::new(r), span);
        }
        Ok(l)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut l = self.bitor_expr()?;
        while self.eat(Tok::AndAnd) {
            let r = self.bitor_expr()?;
            let span = l.span().to(r.span());
            l = Expr::Binary(BinOpE::And, Box::new(l), Box::new(r), span);
        }
        Ok(l)
    }

    fn bitor_expr(&mut self) -> PResult<Expr> {
        let mut l = self.bitand_expr()?;
        while self.eat(Tok::Pipe) {
            let r = self.bitand_expr()?;
            let span = l.span().to(r.span());
            l = Expr::Binary(BinOpE::BitOr, Box::new(l), Box::new(r), span);
        }
        Ok(l)
    }

    fn bitand_expr(&mut self) -> PResult<Expr> {
        let mut l = self.equality_expr()?;
        while self.eat(Tok::Amp) {
            let r = self.equality_expr()?;
            let span = l.span().to(r.span());
            l = Expr::Binary(BinOpE::BitAnd, Box::new(l), Box::new(r), span);
        }
        Ok(l)
    }

    fn equality_expr(&mut self) -> PResult<Expr> {
        let mut l = self.relational_expr()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq | Tok::EqEqEq => BinOpE::Eq,
                Tok::NotEq | Tok::NotEqEq => BinOpE::Ne,
                _ => break,
            };
            self.bump();
            let r = self.relational_expr()?;
            let span = l.span().to(r.span());
            l = Expr::Binary(op, Box::new(l), Box::new(r), span);
        }
        Ok(l)
    }

    fn relational_expr(&mut self) -> PResult<Expr> {
        let mut l = self.additive_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOpE::Lt,
                Tok::Le => BinOpE::Le,
                Tok::Gt => BinOpE::Gt,
                Tok::Ge => BinOpE::Ge,
                _ => break,
            };
            self.bump();
            let r = self.additive_expr()?;
            let span = l.span().to(r.span());
            l = Expr::Binary(op, Box::new(l), Box::new(r), span);
        }
        Ok(l)
    }

    fn additive_expr(&mut self) -> PResult<Expr> {
        let mut l = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOpE::Add,
                Tok::Minus => BinOpE::Sub,
                _ => break,
            };
            self.bump();
            let r = self.multiplicative_expr()?;
            let span = l.span().to(r.span());
            l = Expr::Binary(op, Box::new(l), Box::new(r), span);
        }
        Ok(l)
    }

    fn multiplicative_expr(&mut self) -> PResult<Expr> {
        let mut l = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOpE::Mul,
                Tok::Slash => BinOpE::Div,
                Tok::Percent => BinOpE::Mod,
                _ => break,
            };
            self.bump();
            let r = self.unary_expr()?;
            let span = l.span().to(r.span());
            l = Expr::Binary(op, Box::new(l), Box::new(r), span);
        }
        Ok(l)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        let lo = self.span();
        match self.peek().clone() {
            Tok::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                let span = lo.to(e.span());
                Ok(Expr::Unary(UnOp::Not, Box::new(e), span))
            }
            Tok::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                let span = lo.to(e.span());
                Ok(Expr::Unary(UnOp::Neg, Box::new(e), span))
            }
            Tok::Typeof => {
                self.bump();
                let e = self.unary_expr()?;
                let span = lo.to(e.span());
                Ok(Expr::Unary(UnOp::TypeOf, Box::new(e), span))
            }
            Tok::Lt => {
                // `<T> e` — static cast.
                self.bump();
                let t = self.ty()?;
                self.expect(Tok::Gt)?;
                let e = self.unary_expr()?;
                let span = lo.to(e.span());
                Ok(Expr::Cast(t, Box::new(e), span))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek().clone() {
                Tok::Dot => {
                    self.bump();
                    let f = self.ident_or_keyword()?;
                    let span = e.span().to(self.prev_span());
                    e = Expr::Field(Box::new(e), f, span);
                }
                Tok::LBracket => {
                    self.bump();
                    let i = self.expr()?;
                    let hi = self.expect(Tok::RBracket)?;
                    let span = e.span().to(hi);
                    e = Expr::Index(Box::new(e), Box::new(i), span);
                }
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    while *self.peek() != Tok::RParen {
                        args.push(self.expr()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    let hi = self.expect(Tok::RParen)?;
                    let span = e.span().to(hi);
                    e = Expr::Call(Box::new(e), args, span);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    /// Identifiers in member position may collide with keywords
    /// (`x.length` is fine, but also `x.type` etc.).
    fn ident_or_keyword(&mut self) -> PResult<Sym> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(Sym::from(s))
            }
            Tok::Type => {
                self.bump();
                Ok(Sym::from("type"))
            }
            other => Err(self.err(format!("expected member name, found `{other}`"))),
        }
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        let lo = self.span();
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::Num(n, lo))
            }
            Tok::Hex(n) => {
                self.bump();
                Ok(Expr::Bv(n, lo))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s, lo))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::Bool(true, lo))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::Bool(false, lo))
            }
            Tok::Null => {
                self.bump();
                Ok(Expr::Null(lo))
            }
            Tok::Undefined => {
                self.bump();
                Ok(Expr::Undefined(lo))
            }
            Tok::This => {
                self.bump();
                Ok(Expr::This(lo))
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(Expr::Var(Sym::from(s), lo))
            }
            Tok::New => {
                self.bump();
                let name = self.ident()?;
                let mut targs = Vec::new();
                if self.eat(Tok::Lt) {
                    loop {
                        targs.push(self.ty()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::Gt)?;
                }
                self.expect(Tok::LParen)?;
                let mut args = Vec::new();
                while *self.peek() != Tok::RParen {
                    args.push(self.expr()?);
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                let hi = self.expect(Tok::RParen)?;
                Ok(Expr::New(name, targs, args, lo.to(hi)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::LBracket => {
                self.bump();
                let mut elems = Vec::new();
                while *self.peek() != Tok::RBracket {
                    elems.push(self.expr()?);
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                let hi = self.expect(Tok::RBracket)?;
                Ok(Expr::ArrayLit(elems, lo.to(hi)))
            }
            other => Err(self.err(format!("expected expression, found `{other}`"))),
        }
    }

    // ------------------------------------------------------------ types ---

    fn ty(&mut self) -> PResult<AnnTy> {
        let first = self.postfix_ty()?;
        if *self.peek() == Tok::Plus {
            let mut parts = vec![first];
            while self.eat(Tok::Plus) {
                parts.push(self.postfix_ty()?);
            }
            Ok(AnnTy::Union(parts))
        } else {
            Ok(first)
        }
    }

    fn postfix_ty(&mut self) -> PResult<AnnTy> {
        let mut t = self.atom_ty()?;
        loop {
            if *self.peek() == Tok::LBracket && *self.peek_at(1) == Tok::RBracket {
                self.bump();
                self.bump();
                // `T[]+` non-empty sugar: consume `+` only when it cannot
                // start another union member.
                let nonempty = if *self.peek() == Tok::Plus
                    && !matches!(
                        self.peek_at(1),
                        Tok::Ident(_) | Tok::LBrace | Tok::LParen | Tok::Lt
                    ) {
                    self.bump();
                    true
                } else {
                    false
                };
                // `T[]` defaults to Mutable: in this model array length is
                // fixed at allocation, so `len` refinements stay sound for
                // mutable arrays and element writes just need MU.
                t = AnnTy::Array {
                    elem: Box::new(t),
                    mutability: Mutability::Mutable,
                    nonempty,
                };
            } else {
                break;
            }
        }
        Ok(t)
    }

    fn atom_ty(&mut self) -> PResult<AnnTy> {
        match self.peek().clone() {
            Tok::LBrace => {
                // {v: T | p}
                self.bump();
                let vv = self.ident()?;
                self.expect(Tok::Colon)?;
                let base = self.postfix_ty()?;
                self.expect(Tok::Pipe)?;
                let pred = self.pred()?;
                self.expect(Tok::RBrace)?;
                Ok(AnnTy::Refined {
                    vv,
                    base: Box::new(base),
                    pred,
                })
            }
            Tok::Lt => {
                // <A, B>(params) => R
                self.bump();
                let mut tparams = Vec::new();
                loop {
                    tparams.push(self.ident()?);
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::Gt)?;
                self.arrow_ty(tparams)
            }
            Tok::LParen => self.arrow_ty(Vec::new()),
            Tok::Undefined => {
                self.bump();
                Ok(AnnTy::name("undefined"))
            }
            Tok::Null => {
                self.bump();
                Ok(AnnTy::name("null"))
            }
            Tok::Ident(name) => {
                self.bump();
                let mut args = Vec::new();
                if *self.peek() == Tok::Lt {
                    self.bump();
                    loop {
                        args.push(self.ann_arg()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::Gt)?;
                }
                // Normalize Array<M, T> sugar.
                if name == "Array" {
                    let (mut m, mut elem) = (Mutability::Mutable, None);
                    let mut plain = Vec::new();
                    for a in &args {
                        match a {
                            AnnArg::Mut(mm) => m = *mm,
                            AnnArg::Ty(t) => elem = Some(t.clone()),
                            AnnArg::Term(_) => plain.push(()),
                        }
                    }
                    if let (Some(elem), true) = (elem, plain.is_empty()) {
                        return Ok(AnnTy::Array {
                            elem: Box::new(elem),
                            mutability: m,
                            nonempty: false,
                        });
                    }
                }
                Ok(AnnTy::Name(Sym::from(name), args))
            }
            other => Err(self.err(format!("expected type, found `{other}`"))),
        }
    }

    fn arrow_ty(&mut self, tparams: Vec<Sym>) -> PResult<AnnTy> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        let mut anon = 0usize;
        while *self.peek() != Tok::RParen {
            // Either `x: T` or a bare type (anonymous parameter).
            let named =
                matches!(self.peek(), Tok::Ident(_) | Tok::This) && *self.peek_at(1) == Tok::Colon;
            if named {
                let x = self.ident()?;
                self.expect(Tok::Colon)?;
                let t = self.ty()?;
                params.push((x, t));
            } else {
                let t = self.ty()?;
                anon += 1;
                params.push((Sym::from(format!("$arg{anon}")), t));
            }
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::FatArrow)?;
        let ret = self.ty()?;
        Ok(AnnTy::Arrow(FunTy {
            tparams,
            params,
            ret: Box::new(ret),
        }))
    }

    /// A named-type argument: a mutability modifier, a type, or a logical
    /// term — tried in that order with backtracking.
    fn ann_arg(&mut self) -> PResult<AnnArg> {
        if let Tok::Ident(s) = self.peek() {
            if let Some(m) = Mutability::from_abbrev(s) {
                self.bump();
                return Ok(AnnArg::Mut(m));
            }
        }
        let save = self.pos;
        if let Ok(t) = self.ty() {
            if matches!(self.peek(), Tok::Comma | Tok::Gt) {
                return Ok(AnnArg::Ty(t));
            }
        }
        self.pos = save;
        let t = self.term()?;
        Ok(AnnArg::Term(t))
    }

    // ------------------------------------------------------- predicates ---

    /// Parses a refinement predicate. Predicates share the expression
    /// grammar (so `&&`, `||`, `!`, comparisons work as expected) extended
    /// with `=>` (implication), `<=>` (iff) and `=` as equality.
    fn pred(&mut self) -> PResult<Pred> {
        let p = self.pred_or()?;
        if self.eat(Tok::FatArrow) {
            let q = self.pred()?;
            return Ok(Pred::imp(p, q));
        }
        if self.eat(Tok::Iff) {
            let q = self.pred()?;
            return Ok(Pred::iff(p, q));
        }
        Ok(p)
    }

    fn pred_or(&mut self) -> PResult<Pred> {
        let mut l = self.pred_and()?;
        while self.eat(Tok::OrOr) {
            let r = self.pred_and()?;
            l = Pred::or(vec![l, r]);
        }
        Ok(l)
    }

    fn pred_and(&mut self) -> PResult<Pred> {
        let mut l = self.pred_atom()?;
        while self.eat(Tok::AndAnd) {
            let r = self.pred_atom()?;
            l = Pred::and(vec![l, r]);
        }
        Ok(l)
    }

    fn pred_atom(&mut self) -> PResult<Pred> {
        if self.eat(Tok::Bang) {
            let p = self.pred_atom()?;
            return Ok(Pred::not(p));
        }
        // Parenthesized predicate vs parenthesized term: try predicate.
        if *self.peek() == Tok::LParen {
            let save = self.pos;
            self.bump();
            if let Ok(p) = self.pred() {
                if self.eat(Tok::RParen) {
                    // If a comparison operator follows, the parens belonged
                    // to a term — re-parse.
                    if !matches!(
                        self.peek(),
                        Tok::Lt
                            | Tok::Le
                            | Tok::Gt
                            | Tok::Ge
                            | Tok::Assign
                            | Tok::EqEq
                            | Tok::EqEqEq
                            | Tok::NotEq
                            | Tok::NotEqEq
                            | Tok::Plus
                            | Tok::Minus
                            | Tok::Star
                            | Tok::Amp
                            | Tok::Pipe
                    ) {
                        return Ok(p);
                    }
                }
            }
            self.pos = save;
        }
        let l = self.term()?;
        let op = match self.peek() {
            Tok::Assign | Tok::EqEq | Tok::EqEqEq => Some(CmpOp::Eq),
            Tok::NotEq | Tok::NotEqEq => Some(CmpOp::Ne),
            Tok::Lt => Some(CmpOp::Lt),
            Tok::Le => Some(CmpOp::Le),
            Tok::Gt => Some(CmpOp::Gt),
            Tok::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let r = self.term()?;
                Ok(Pred::cmp(op, l, r))
            }
            None => {
                // Bare term: an uninterpreted predicate application or a
                // boolean-valued term.
                match &l {
                    Term::App(f, args)
                        if f == &Sym::from("impl")
                            || f == &Sym::from("instanceof")
                            || f == &Sym::from("mask") =>
                    {
                        if f == &Sym::from("mask") {
                            // mask(t, m) ≡ (t & m) != 0
                            if args.len() != 2 {
                                return Err(self.err("mask expects two arguments".into()));
                            }
                            return Ok(Pred::cmp(
                                CmpOp::Ne,
                                Term::bin(BinOp::BvAnd, args[0].clone(), args[1].clone()),
                                Term::bv(0),
                            ));
                        }
                        Ok(Pred::App(Sym::from("impl"), args.clone()))
                    }
                    _ => Ok(Pred::TermPred(l)),
                }
            }
        }
    }

    // ------------------------------------------------------ logic terms ---

    fn term(&mut self) -> PResult<Term> {
        self.term_bitor()
    }

    fn term_bitor(&mut self) -> PResult<Term> {
        let mut l = self.term_bitand()?;
        while *self.peek() == Tok::Pipe {
            self.bump();
            let r = self.term_bitand()?;
            l = Term::bin(BinOp::BvOr, l, r);
        }
        Ok(l)
    }

    fn term_bitand(&mut self) -> PResult<Term> {
        let mut l = self.term_add()?;
        while *self.peek() == Tok::Amp {
            self.bump();
            let r = self.term_add()?;
            l = Term::bin(BinOp::BvAnd, l, r);
        }
        Ok(l)
    }

    fn term_add(&mut self) -> PResult<Term> {
        let mut l = self.term_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.term_mul()?;
            l = Term::bin(op, l, r);
        }
        Ok(l)
    }

    fn term_mul(&mut self) -> PResult<Term> {
        let mut l = self.term_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let r = self.term_unary()?;
            l = Term::bin(op, l, r);
        }
        Ok(l)
    }

    fn term_unary(&mut self) -> PResult<Term> {
        if self.eat(Tok::Minus) {
            let t = self.term_unary()?;
            return Ok(Term::neg(t));
        }
        self.term_postfix()
    }

    fn term_postfix(&mut self) -> PResult<Term> {
        let mut t = self.term_primary()?;
        while self.eat(Tok::Dot) {
            let f = self.ident_or_keyword()?;
            t = Term::field(t, f);
        }
        Ok(t)
    }

    fn term_primary(&mut self) -> PResult<Term> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Term::int(n))
            }
            Tok::Hex(n) => {
                self.bump();
                Ok(Term::bv(n))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Term::str(s))
            }
            Tok::True => {
                self.bump();
                Ok(Term::bool(true))
            }
            Tok::False => {
                self.bump();
                Ok(Term::bool(false))
            }
            Tok::This => {
                self.bump();
                Ok(Term::this())
            }
            Tok::Null => {
                self.bump();
                Ok(Term::app("nullv", vec![]))
            }
            Tok::Undefined => {
                self.bump();
                Ok(Term::app("undefv", vec![]))
            }
            Tok::LParen => {
                self.bump();
                let t = self.term()?;
                self.expect(Tok::RParen)?;
                Ok(t)
            }
            Tok::Ident(s) => {
                self.bump();
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    while *self.peek() != Tok::RParen {
                        // In `impl(x, C)` / `instanceof(x, C)` the second
                        // argument is a type name — encode as a string.
                        let is_tag_pos = (s == "impl" || s == "instanceof") && args.len() == 1;
                        if is_tag_pos {
                            if let Tok::Ident(cname) = self.peek().clone() {
                                if *self.peek_at(1) == Tok::RParen {
                                    self.bump();
                                    args.push(Term::str(cname));
                                    continue;
                                }
                            }
                        }
                        args.push(self.term()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Term::app(Sym::from(s), args))
                } else {
                    Ok(Term::var(Sym::from(s)))
                }
            }
            other => Err(self.err(format!("expected logical term, found `{other}`"))),
        }
    }
}
