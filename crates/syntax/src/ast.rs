//! Abstract syntax of the RSC input language — the paper's FRSC (§3.1.1)
//! extended with the constructs its tool supports: loops, nested
//! functions, interfaces, enums, overload signatures and type aliases.

use rsc_logic::{Pred, Sym};

use crate::span::Span;
use crate::types::{AnnTy, FunTy, Mutability};

/// A whole compilation unit.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// `import {a, b} from "./mod";` declarations, in source order.
    ///
    /// Imports are *module metadata*, not checkable items: the batch
    /// checker ignores them entirely (a merged multi-file program simply
    /// defines the imported names earlier in the text), while the
    /// workspace layer (`rsc_incr`) uses them to load the import
    /// closure, order files, and validate that every imported name is
    /// actually exported by its source module.
    pub imports: Vec<ImportDecl>,
    /// Names marked `export`, with the span of the exporting item.
    ///
    /// Like imports, export markers do not change what the checker
    /// proves — they delimit a file's interface for the workspace
    /// layer's cross-file dependency tracking.
    pub exports: Vec<(Sym, Span)>,
}

/// `import {a, b} from "./mod";`
#[derive(Clone, Debug)]
pub struct ImportDecl {
    /// Imported names, each with the span of its occurrence inside the
    /// braces (used to blame a specific name when the source module
    /// does not export it).
    pub names: Vec<(Sym, Span)>,
    /// The module specifier, verbatim (e.g. `./mod` — resolution to a
    /// file is the workspace layer's job).
    pub from: String,
    /// Source location of the whole declaration.
    pub span: Span,
}

/// A top-level item.
#[derive(Clone, Debug)]
pub enum Item {
    /// `type name<params> = T;`
    TypeAlias(TypeAlias),
    /// `qualif Name(v: b, x: b): p;` — extra Liquid qualifiers.
    Qualif(QualifDecl),
    /// A class declaration.
    Class(ClassDecl),
    /// An interface declaration.
    Interface(InterfaceDecl),
    /// An enum of bit-vector flags.
    Enum(EnumDecl),
    /// A function declaration.
    Fun(FunDecl),
    /// `declare name : T;` — an ambient value (library import or trusted
    /// ghost-function axiom, §5 of the paper).
    Declare(DeclareDecl),
    /// A top-level statement.
    Stmt(Stmt),
}

/// `type idx<a> = {v: nat | v < len(a)};`
#[derive(Clone, Debug)]
pub struct TypeAlias {
    /// Alias name.
    pub name: Sym,
    /// Parameters; each is either a type or a term parameter, decided by
    /// use inside the body during alias resolution.
    pub params: Vec<Sym>,
    /// The aliased type.
    pub body: AnnTy,
    /// Source location.
    pub span: Span,
}

/// A user-supplied Liquid qualifier.
#[derive(Clone, Debug)]
pub struct QualifDecl {
    /// Qualifier name.
    pub name: Sym,
    /// Parameters with base-type annotations; the first is the value
    /// variable.
    pub params: Vec<(Sym, AnnTy)>,
    /// The qualifier body.
    pub body: Pred,
    /// Source location.
    pub span: Span,
}

/// A bit-vector flag enumeration (§4.3).
#[derive(Clone, Debug)]
pub struct EnumDecl {
    /// Enum name (used as a 32-bit bit-vector type).
    pub name: Sym,
    /// Members with constant values.
    pub members: Vec<(Sym, u32)>,
    /// Source location.
    pub span: Span,
}

/// Field mutability inside a class or interface.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FieldMut {
    /// `immutable f : T` — assignable only in the constructor; may appear
    /// in refinements.
    Immutable,
    /// Mutable (the default); may be reassigned, never appears in
    /// refinements.
    Mutable,
}

/// A field declaration.
#[derive(Clone, Debug)]
pub struct FieldDecl {
    /// Field name.
    pub name: Sym,
    /// Mutability modifier.
    pub mutability: FieldMut,
    /// Declared type.
    pub ty: AnnTy,
    /// Source location.
    pub span: Span,
}

/// A constructor declaration.
#[derive(Clone, Debug)]
pub struct CtorDecl {
    /// Parameters (name, type).
    pub params: Vec<(Sym, AnnTy)>,
    /// Body.
    pub body: Block,
    /// Source location.
    pub span: Span,
}

/// A method declaration.
#[derive(Clone, Debug)]
pub struct MethodDecl {
    /// Method name.
    pub name: Sym,
    /// Receiver mutability requirement (`@Mutable` by default).
    pub recv: Mutability,
    /// The signature (parameters must be annotated).
    pub sig: FunTy,
    /// Body; `None` for interface method signatures.
    pub body: Option<Block>,
    /// Source location.
    pub span: Span,
}

/// A class declaration.
#[derive(Clone, Debug)]
pub struct ClassDecl {
    /// Class name.
    pub name: Sym,
    /// Type parameters.
    pub tparams: Vec<Sym>,
    /// Superclass, if any.
    pub extends: Option<Sym>,
    /// Optional explicit class invariant predicate over `v`.
    pub invariant: Option<Pred>,
    /// Fields.
    pub fields: Vec<FieldDecl>,
    /// Constructor.
    pub ctor: Option<CtorDecl>,
    /// Methods.
    pub methods: Vec<MethodDecl>,
    /// Source location.
    pub span: Span,
}

/// An interface declaration (structural object type, §4.1).
#[derive(Clone, Debug)]
pub struct InterfaceDecl {
    /// Interface name.
    pub name: Sym,
    /// Type parameters.
    pub tparams: Vec<Sym>,
    /// Extended interfaces.
    pub extends: Vec<Sym>,
    /// Field signatures.
    pub fields: Vec<FieldDecl>,
    /// Method signatures (bodies are `None`).
    pub methods: Vec<MethodDecl>,
    /// Source location.
    pub span: Span,
}

/// A function declaration, possibly overloaded via preceding `sig` items
/// (checked by two-phase typing, §2.1.2).
#[derive(Clone, Debug)]
pub struct FunDecl {
    /// Function name.
    pub name: Sym,
    /// Declared signatures: one from inline annotations, or several from
    /// `sig` declarations (an intersection type).
    pub sigs: Vec<FunTy>,
    /// Parameter names, in order.
    pub params: Vec<Sym>,
    /// Body.
    pub body: Block,
    /// Source location.
    pub span: Span,
}

/// `declare mulThm1 : (a: nat, b: {v:number | v >= 2}) => {v:boolean | ...};`
#[derive(Clone, Debug)]
pub struct DeclareDecl {
    /// Declared name.
    pub name: Sym,
    /// Ambient type.
    pub ty: AnnTy,
    /// Source location.
    pub span: Span,
}

/// A block of statements.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// An assignment target.
#[derive(Clone, Debug)]
pub enum LValue {
    /// `x = …`
    Var(Sym, Span),
    /// `e.f = …`
    Field(Expr, Sym, Span),
    /// `e[i] = …`
    Index(Expr, Expr, Span),
}

/// A statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `var x = e;` with optional annotation.
    VarDecl {
        /// Variable name.
        name: Sym,
        /// Optional type annotation.
        ann: Option<AnnTy>,
        /// Initializer.
        init: Expr,
        /// Source location.
        span: Span,
    },
    /// Assignment to a variable, field or array element.
    Assign {
        /// Target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// `if (e) { … } else { … }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Else branch (empty block when missing).
        else_blk: Block,
        /// Source location.
        span: Span,
    },
    /// `while (e) { … }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source location.
        span: Span,
    },
    /// `return e;`
    Return {
        /// Returned expression (`None` for bare `return;`).
        value: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// An expression evaluated for effect.
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Source location.
        span: Span,
    },
    /// A nested function declaration (closure).
    Fun(FunDecl),
    /// A scope-transparent statement sequence (multi-declarator `var`,
    /// `for`-loop desugaring, braced groups — `var` is function-scoped).
    Seq(Vec<Stmt>, Span),
    /// An empty statement.
    Skip(Span),
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
    /// `typeof e` (reflection, §4.2).
    TypeOf,
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOpE {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==` / `===` (RSC gives both strict semantics).
    Eq,
    /// `!=` / `!==`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `&` (bit-vector and)
    BitAnd,
    /// `|` (bit-vector or)
    BitOr,
}

/// An expression.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    Num(i64, Span),
    /// Bit-vector (hex) literal.
    Bv(u32, Span),
    /// String literal.
    Str(String, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// `null`.
    Null(Span),
    /// `undefined`.
    Undefined(Span),
    /// Variable reference.
    Var(Sym, Span),
    /// `this`.
    This(Span),
    /// `e.f` (also enum member access `Flags.Object`).
    Field(Box<Expr>, Sym, Span),
    /// `e[i]`.
    Index(Box<Expr>, Box<Expr>, Span),
    /// `f(args)` or `e.m(args)`.
    Call(Box<Expr>, Vec<Expr>, Span),
    /// `new C<targs>(args)`; explicit type arguments are optional.
    New(Sym, Vec<AnnTy>, Vec<Expr>, Span),
    /// `<T> e` — a static downcast (§4.3).
    Cast(AnnTy, Box<Expr>, Span),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, Span),
    /// Binary operation.
    Binary(BinOpE, Box<Expr>, Box<Expr>, Span),
    /// `c ? t : e`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>, Span),
    /// `[e1, …, en]` array literal.
    ArrayLit(Vec<Expr>, Span),
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Num(_, s)
            | Expr::Bv(_, s)
            | Expr::Str(_, s)
            | Expr::Bool(_, s)
            | Expr::Null(s)
            | Expr::Undefined(s)
            | Expr::Var(_, s)
            | Expr::This(s)
            | Expr::Field(_, _, s)
            | Expr::Index(_, _, s)
            | Expr::Call(_, _, s)
            | Expr::New(_, _, _, s)
            | Expr::Cast(_, _, s)
            | Expr::Unary(_, _, s)
            | Expr::Binary(_, _, _, s)
            | Expr::Ternary(_, _, _, s)
            | Expr::ArrayLit(_, s) => *s,
        }
    }
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::VarDecl { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::ExprStmt { span, .. }
            | Stmt::Seq(_, span)
            | Stmt::Skip(span) => *span,
            Stmt::Fun(f) => f.span,
        }
    }
}
