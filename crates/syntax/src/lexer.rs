//! A hand-written lexer for the RSC input language.

use crate::span::Span;
use crate::token::{Tok, Token};

/// A lexing error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// Where the error occurred.
    pub span: Span,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`, skipping whitespace and `//` / `/* */` comments.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    macro_rules! span {
        ($lo:expr) => {
            Span {
                lo: $lo as u32,
                hi: i as u32,
                line,
            }
        };
    }

    while i < n {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let lo = i;
                i += 2;
                loop {
                    if i + 1 >= n {
                        return Err(LexError {
                            message: "unterminated block comment".into(),
                            span: span!(lo),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let lo = i;
                if c == b'0' && i + 1 < n && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X') {
                    i += 2;
                    let start = i;
                    while i < n && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    if start == i {
                        return Err(LexError {
                            message: "empty hex literal".into(),
                            span: span!(lo),
                        });
                    }
                    let text = &src[start..i];
                    let v = u32::from_str_radix(text, 16).map_err(|_| LexError {
                        message: format!("hex literal out of range: 0x{text}"),
                        span: span!(lo),
                    })?;
                    out.push(Token {
                        tok: Tok::Hex(v),
                        span: span!(lo),
                    });
                } else {
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[lo..i];
                    let v: i64 = text.parse().map_err(|_| LexError {
                        message: format!("integer literal out of range: {text}"),
                        span: span!(lo),
                    })?;
                    out.push(Token {
                        tok: Tok::Int(v),
                        span: span!(lo),
                    });
                }
            }
            b'"' | b'\'' => {
                let quote = c;
                let lo = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= n {
                        return Err(LexError {
                            message: "unterminated string".into(),
                            span: span!(lo),
                        });
                    }
                    let b = bytes[i];
                    if b == quote {
                        i += 1;
                        break;
                    }
                    if b == b'\\' && i + 1 < n {
                        let esc = bytes[i + 1];
                        s.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            b'\\' => '\\',
                            b'"' => '"',
                            b'\'' => '\'',
                            other => other as char,
                        });
                        i += 2;
                        continue;
                    }
                    if b == b'\n' {
                        return Err(LexError {
                            message: "newline in string literal".into(),
                            span: span!(lo),
                        });
                    }
                    s.push(src[i..].chars().next().unwrap());
                    i += src[i..].chars().next().unwrap().len_utf8();
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    span: span!(lo),
                });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' | b'$' => {
                let lo = i;
                while i < n
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                let text = &src[lo..i];
                let tok = match text {
                    "function" => Tok::Function,
                    "var" => Tok::Var,
                    "let" => Tok::Let,
                    "return" => Tok::Return,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "for" => Tok::For,
                    "new" => Tok::New,
                    "class" => Tok::Class,
                    "extends" => Tok::Extends,
                    "interface" => Tok::Interface,
                    "enum" => Tok::Enum,
                    "type" => Tok::Type,
                    "sig" => Tok::Sig,
                    "declare" => Tok::Declare,
                    "qualif" => Tok::Qualif,
                    "invariant" => Tok::Invariant,
                    "constructor" => Tok::Constructor,
                    "immutable" => Tok::Immutable,
                    "mutable" => Tok::Mutable,
                    "this" => Tok::This,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "null" => Tok::Null,
                    "undefined" => Tok::Undefined,
                    "typeof" => Tok::Typeof,
                    "instanceof" => Tok::Instanceof,
                    "break" => Tok::Break,
                    "import" => Tok::Import,
                    "export" => Tok::Export,
                    _ => Tok::Ident(text.to_string()),
                };
                out.push(Token {
                    tok,
                    span: span!(lo),
                });
            }
            _ => {
                let lo = i;
                let two = if i + 1 < n { &src[i..i + 2] } else { "" };
                let three = if i + 2 < n { &src[i..i + 3] } else { "" };
                let (tok, len) = match (c, two, three) {
                    (_, _, "===") => (Tok::EqEqEq, 3),
                    (_, _, "!==") => (Tok::NotEqEq, 3),
                    (_, _, "<=>") => (Tok::Iff, 3),
                    (_, "==", _) => (Tok::EqEq, 2),
                    (_, "!=", _) => (Tok::NotEq, 2),
                    (_, "<=", _) => (Tok::Le, 2),
                    (_, ">=", _) => (Tok::Ge, 2),
                    (_, "=>", _) => (Tok::FatArrow, 2),
                    (_, "&&", _) => (Tok::AndAnd, 2),
                    (_, "||", _) => (Tok::OrOr, 2),
                    (_, "++", _) => (Tok::PlusPlus, 2),
                    (_, "--", _) => (Tok::MinusMinus, 2),
                    (_, "+=", _) => (Tok::PlusEq, 2),
                    (_, "-=", _) => (Tok::MinusEq, 2),
                    (b'(', _, _) => (Tok::LParen, 1),
                    (b')', _, _) => (Tok::RParen, 1),
                    (b'{', _, _) => (Tok::LBrace, 1),
                    (b'}', _, _) => (Tok::RBrace, 1),
                    (b'[', _, _) => (Tok::LBracket, 1),
                    (b']', _, _) => (Tok::RBracket, 1),
                    (b'<', _, _) => (Tok::Lt, 1),
                    (b'>', _, _) => (Tok::Gt, 1),
                    (b',', _, _) => (Tok::Comma, 1),
                    (b';', _, _) => (Tok::Semi, 1),
                    (b':', _, _) => (Tok::Colon, 1),
                    (b'.', _, _) => (Tok::Dot, 1),
                    (b'?', _, _) => (Tok::Question, 1),
                    (b'=', _, _) => (Tok::Assign, 1),
                    (b'+', _, _) => (Tok::Plus, 1),
                    (b'-', _, _) => (Tok::Minus, 1),
                    (b'*', _, _) => (Tok::Star, 1),
                    (b'/', _, _) => (Tok::Slash, 1),
                    (b'%', _, _) => (Tok::Percent, 1),
                    (b'!', _, _) => (Tok::Bang, 1),
                    (b'&', _, _) => (Tok::Amp, 1),
                    (b'|', _, _) => (Tok::Pipe, 1),
                    (b'@', _, _) => (Tok::At, 1),
                    _ => {
                        return Err(LexError {
                            message: format!("unexpected character {:?}", c as char),
                            span: Span {
                                lo: lo as u32,
                                hi: lo as u32 + 1,
                                line,
                            },
                        })
                    }
                };
                i += len;
                out.push(Token {
                    tok,
                    span: span!(lo),
                });
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span {
            lo: n as u32,
            hi: n as u32,
            line,
        },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("function foo"),
            vec![Tok::Function, Tok::Ident("foo".into()), Tok::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42), Tok::Eof]);
        assert_eq!(toks("0x3C00"), vec![Tok::Hex(0x3c00), Tok::Eof]);
    }

    #[test]
    fn strings() {
        assert_eq!(
            toks("\"number\" 'str'"),
            vec![Tok::Str("number".into()), Tok::Str("str".into()), Tok::Eof]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("=== == = => <= < !== !="),
            vec![
                Tok::EqEqEq,
                Tok::EqEq,
                Tok::Assign,
                Tok::FatArrow,
                Tok::Le,
                Tok::Lt,
                Tok::NotEqEq,
                Tok::NotEq,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // line\n /* block\n still */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn line_numbers() {
        let ts = lex("a\nb\n  c").unwrap();
        assert_eq!(ts[0].span.line, 1);
        assert_eq!(ts[1].span.line, 2);
        assert_eq!(ts[2].span.line, 3);
    }

    #[test]
    fn dollar_identifiers() {
        assert_eq!(
            toks("$reduce"),
            vec![Tok::Ident("$reduce".into()), Tok::Eof]
        );
    }

    #[test]
    fn error_on_bad_char() {
        assert!(lex("a # b").is_err());
    }
}
