//! Source spans.

use std::fmt;

/// A source region: byte offsets plus the 1-based line of the start.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Span {
    /// Start byte offset.
    pub lo: u32,
    /// End byte offset (exclusive).
    pub hi: u32,
    /// 1-based line number of `lo`.
    pub line: u32,
}

impl Span {
    /// A span covering both inputs.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            line: self.line.min(other.line),
        }
    }

    /// A zero-width dummy span.
    pub fn dummy() -> Span {
        Span::default()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}
