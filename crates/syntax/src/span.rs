//! Source spans and the byte-offset → line:column index.

use std::fmt;

/// A source region: byte offsets plus the 1-based line of the start.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Span {
    /// Start byte offset.
    pub lo: u32,
    /// End byte offset (exclusive).
    pub hi: u32,
    /// 1-based line number of `lo`.
    pub line: u32,
}

impl Span {
    /// A span covering both inputs. The `line` stays paired with
    /// whichever input actually contributes the minimal `lo` (min'ing
    /// `lo` and `line` independently can disagree when joining
    /// out-of-order spans).
    pub fn to(self, other: Span) -> Span {
        let (lo, line) = if self.lo <= other.lo {
            (self.lo, self.line)
        } else {
            (other.lo, other.line)
        };
        Span {
            lo,
            hi: self.hi.max(other.hi),
            line,
        }
    }

    /// A zero-width dummy span.
    pub fn dummy() -> Span {
        Span::default()
    }

    /// True for the zero-width dummy span (no source region attached).
    pub fn is_dummy(&self) -> bool {
        *self == Span::default()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// A resolved source position: 1-based line and 1-based column, where
/// columns count Unicode scalar values (not bytes), so multi-byte UTF-8
/// text renders sensible caret positions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number, in characters.
    pub col: u32,
}

/// Maps byte offsets to line/column positions for one source text.
///
/// Built once per file (O(n)); each lookup is a binary search over the
/// recorded line starts plus a character count within the line. Offsets
/// that land inside a multi-byte UTF-8 sequence or past the end of the
/// text are clamped instead of panicking, so stale or synthetic spans
/// can never crash a renderer.
#[derive(Clone, Debug)]
pub struct LineIndex {
    /// Byte offset of the first byte of each line (line 1 starts at 0).
    line_starts: Vec<u32>,
    /// Total length of the indexed text, in bytes.
    len: u32,
}

impl LineIndex {
    /// Indexes `src`. Lines are terminated by `\n`; a `\r\n` sequence
    /// counts as one terminator (the `\r` never appears in a column
    /// count because columns stop at the offset, and offsets inside the
    /// terminator clamp to the line end).
    pub fn new(src: &str) -> LineIndex {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineIndex {
            line_starts,
            len: src.len() as u32,
        }
    }

    /// Number of lines in the indexed text (≥ 1 even for "").
    pub fn num_lines(&self) -> usize {
        self.line_starts.len()
    }

    /// The line/column of a byte offset. `src` must be the text this
    /// index was built from. Offsets past the end clamp to the final
    /// position; offsets inside a multi-byte character clamp to that
    /// character's column.
    pub fn line_col(&self, src: &str, offset: u32) -> LineCol {
        self.line_col_by(src, offset, |_| 1)
    }

    /// Like [`LineIndex::line_col`], but the column counts **UTF-16
    /// code units** instead of characters — the Language Server
    /// Protocol's default position encoding. Astral-plane characters
    /// (4 UTF-8 bytes) count as two columns here and one in
    /// `line_col`; clamping behavior is identical.
    pub fn line_col_utf16(&self, src: &str, offset: u32) -> LineCol {
        self.line_col_by(src, offset, |c| c.len_utf16() as u32)
    }

    /// Shared position lookup: binary-search the line, then walk its
    /// characters accumulating `width` per character strictly before
    /// the offset. One copy of the clamping rules (line terminators,
    /// mid-character offsets, EOF) serves both column encodings.
    fn line_col_by(&self, src: &str, offset: u32, width: impl Fn(char) -> u32) -> LineCol {
        let offset = offset.min(self.len);
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let start = self.line_starts[line_idx] as usize;
        let target = offset as usize;
        let mut col = 1u32;
        for (i, c) in src[start..].char_indices() {
            if start + i >= target {
                break;
            }
            // Stop counting at the line terminator: offsets inside a
            // `\r\n` clamp to the end-of-line column.
            if c == '\n' || c == '\r' {
                break;
            }
            // An offset inside this character's bytes clamps to the
            // character's own column.
            if start + i + c.len_utf8() > target {
                break;
            }
            col += width(c);
        }
        LineCol {
            line: line_idx as u32 + 1,
            col,
        }
    }

    /// The text of the 1-based `line` (without its terminator), for
    /// source excerpts. Returns `None` for out-of-range lines.
    pub fn line_text<'a>(&self, src: &'a str, line: u32) -> Option<&'a str> {
        let idx = (line as usize).checked_sub(1)?;
        let start = *self.line_starts.get(idx)? as usize;
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|&e| e as usize)
            .unwrap_or(src.len());
        Some(src[start..end].trim_end_matches(['\n', '\r']))
    }

    /// Renders a span as `line:col-line:col` (or `line:col` when it is
    /// zero-width).
    pub fn render_range(&self, src: &str, span: Span) -> String {
        let a = self.line_col(src, span.lo);
        let b = self.line_col(src, span.hi);
        if a == b {
            format!("{}:{}", a.line, a.col)
        } else {
            format!("{}:{}-{}:{}", a.line, a.col, b.line, b.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_keeps_line_paired_with_minimal_lo() {
        // Joining out-of-order spans: the second span starts earlier, so
        // the joined span must take *its* line, not the minimum of both
        // lines with the minimum lo.
        let later = Span {
            lo: 50,
            hi: 55,
            line: 9,
        };
        let earlier = Span {
            lo: 10,
            hi: 12,
            line: 3,
        };
        let j = later.to(earlier);
        assert_eq!((j.lo, j.hi, j.line), (10, 55, 3));
        // And symmetrically.
        let j2 = earlier.to(later);
        assert_eq!((j2.lo, j2.hi, j2.line), (10, 55, 3));
    }

    #[test]
    fn to_in_order_unchanged() {
        let a = Span {
            lo: 0,
            hi: 4,
            line: 1,
        };
        let b = Span {
            lo: 6,
            hi: 9,
            line: 2,
        };
        assert_eq!(
            a.to(b),
            Span {
                lo: 0,
                hi: 9,
                line: 1
            }
        );
    }

    #[test]
    fn dummy_detection() {
        assert!(Span::dummy().is_dummy());
        assert!(!Span {
            lo: 0,
            hi: 1,
            line: 1
        }
        .is_dummy());
    }

    #[test]
    fn line_index_basic() {
        let src = "ab\ncde\nf";
        let idx = LineIndex::new(src);
        assert_eq!(idx.num_lines(), 3);
        assert_eq!(idx.line_col(src, 0), LineCol { line: 1, col: 1 });
        assert_eq!(idx.line_col(src, 1), LineCol { line: 1, col: 2 });
        assert_eq!(idx.line_col(src, 3), LineCol { line: 2, col: 1 });
        assert_eq!(idx.line_col(src, 5), LineCol { line: 2, col: 3 });
        assert_eq!(idx.line_col(src, 7), LineCol { line: 3, col: 1 });
        assert_eq!(idx.line_text(src, 2), Some("cde"));
    }

    #[test]
    fn line_index_crlf() {
        let src = "ab\r\ncd\r\n";
        let idx = LineIndex::new(src);
        assert_eq!(idx.num_lines(), 3);
        // Offset of the `\r` clamps to the end-of-line column.
        assert_eq!(idx.line_col(src, 2), LineCol { line: 1, col: 3 });
        // The byte after `\n` starts the next line at column 1.
        assert_eq!(idx.line_col(src, 4), LineCol { line: 2, col: 1 });
        assert_eq!(idx.line_text(src, 1), Some("ab"));
        assert_eq!(idx.line_text(src, 2), Some("cd"));
    }

    #[test]
    fn line_index_multibyte_utf8() {
        // 'é' is 2 bytes, '↑' is 3 bytes, '𝕩' is 4 bytes.
        let src = "é↑𝕩x\nz";
        let idx = LineIndex::new(src);
        assert_eq!(idx.line_col(src, 0), LineCol { line: 1, col: 1 });
        // After 'é' (2 bytes): column 2.
        assert_eq!(idx.line_col(src, 2), LineCol { line: 1, col: 2 });
        // After '↑' (offset 5): column 3.
        assert_eq!(idx.line_col(src, 5), LineCol { line: 1, col: 3 });
        // Inside '𝕩' (offset 7, mid-sequence): clamps to '𝕩''s column.
        assert_eq!(idx.line_col(src, 7), LineCol { line: 1, col: 3 });
        // After '𝕩' (offset 9): the ASCII 'x' at column 4.
        assert_eq!(idx.line_col(src, 9), LineCol { line: 1, col: 4 });
        assert_eq!(idx.line_col(src, 11), LineCol { line: 2, col: 1 });
    }

    #[test]
    fn line_col_utf16_counts_code_units() {
        // '𝕩' is one scalar value but two UTF-16 code units.
        let src = "𝕩x\ny";
        let idx = LineIndex::new(src);
        // Offset 4 points at 'x': char column 2, UTF-16 column 3.
        assert_eq!(idx.line_col(src, 4), LineCol { line: 1, col: 2 });
        assert_eq!(idx.line_col_utf16(src, 4), LineCol { line: 1, col: 3 });
        // BMP text agrees between the two encodings.
        assert_eq!(idx.line_col_utf16(src, 6), LineCol { line: 2, col: 1 });
    }

    #[test]
    fn line_index_offset_at_and_past_eof() {
        let src = "ab\ncd";
        let idx = LineIndex::new(src);
        assert_eq!(idx.line_col(src, 5), LineCol { line: 2, col: 3 });
        // Past-the-end offsets clamp instead of panicking.
        assert_eq!(idx.line_col(src, 999), LineCol { line: 2, col: 3 });
        // EOF right after a newline is the start of the (empty) last line.
        let src2 = "ab\n";
        let idx2 = LineIndex::new(src2);
        assert_eq!(idx2.line_col(src2, 3), LineCol { line: 2, col: 1 });
        assert_eq!(idx2.line_text(src2, 2), Some(""));
        // Empty text.
        let idx3 = LineIndex::new("");
        assert_eq!(idx3.line_col("", 0), LineCol { line: 1, col: 1 });
    }

    #[test]
    fn render_range() {
        let src = "ab\ncdef\n";
        let idx = LineIndex::new(src);
        let span = Span {
            lo: 3,
            hi: 7,
            line: 2,
        };
        assert_eq!(idx.render_range(src, span), "2:1-2:5");
        let point = Span {
            lo: 4,
            hi: 4,
            line: 2,
        };
        assert_eq!(idx.render_range(src, point), "2:2");
    }
}
