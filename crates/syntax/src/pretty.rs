//! A pretty printer for RSC programs — used by diagnostics, debugging
//! dumps and the parser round-trip tests.

use std::fmt::Write;

use crate::ast::*;
use crate::types::AnnTy;

/// Renders a whole program, including its module metadata: `import`
/// declarations come first (they are recorded on the [`Program`], not
/// as items) and items whose name is in the export list are prefixed
/// with `export` — so a printed multi-file module re-parses with the
/// same imports, exports and items (used by the `rsc_gen` workspace
/// generator).
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for imp in &p.imports {
        out.push_str("import {");
        for (i, (name, _)) in imp.names.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{name}");
        }
        let _ = writeln!(out, "}} from \"{}\";", imp.from);
    }
    if !p.imports.is_empty() {
        out.push('\n');
    }
    let exported: std::collections::HashSet<&str> =
        p.exports.iter().map(|(n, _)| n.as_str()).collect();
    for item in &p.items {
        if item_name(item).is_some_and(|n| exported.contains(n)) {
            out.push_str("export ");
        }
        item_str(item, &mut out);
        out.push('\n');
    }
    out
}

/// The declared name of an item, when it has one (exportable items).
fn item_name(item: &Item) -> Option<&str> {
    match item {
        Item::TypeAlias(a) => Some(a.name.as_str()),
        Item::Qualif(q) => Some(q.name.as_str()),
        Item::Class(c) => Some(c.name.as_str()),
        Item::Interface(i) => Some(i.name.as_str()),
        Item::Enum(e) => Some(e.name.as_str()),
        Item::Fun(f) => Some(f.name.as_str()),
        Item::Declare(d) => Some(d.name.as_str()),
        Item::Stmt(_) => None,
    }
}

fn item_str(item: &Item, out: &mut String) {
    match item {
        Item::TypeAlias(a) => {
            let _ = write!(out, "type {}", a.name);
            params(&a.params, out);
            let _ = writeln!(out, " = {};", a.body);
        }
        Item::Qualif(q) => {
            let _ = write!(out, "qualif {}(", q.name);
            for (i, (x, t)) in q.params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{x}: {t}");
            }
            let _ = writeln!(out, "): {};", q.body);
        }
        Item::Enum(e) => {
            let _ = writeln!(out, "enum {} {{", e.name);
            for (m, v) in &e.members {
                let _ = writeln!(out, "    {m} = {v:#010x},");
            }
            out.push_str("}\n");
        }
        Item::Class(c) => {
            let _ = write!(out, "class {}", c.name);
            params(&c.tparams, out);
            if let Some(sup) = &c.extends {
                let _ = write!(out, " extends {sup}");
            }
            out.push_str(" {\n");
            for f in &c.fields {
                field(f, out);
            }
            if let Some(ct) = &c.ctor {
                out.push_str("    constructor(");
                typed_params(&ct.params, out);
                out.push_str(") ");
                block(&ct.body, 1, out);
            }
            for m in &c.methods {
                method(m, out);
            }
            out.push_str("}\n");
        }
        Item::Interface(i) => {
            let _ = write!(out, "interface {}", i.name);
            params(&i.tparams, out);
            if !i.extends.is_empty() {
                out.push_str(" extends ");
                for (k, e) in i.extends.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{e}");
                }
            }
            out.push_str(" {\n");
            for f in &i.fields {
                field(f, out);
            }
            for m in &i.methods {
                method(m, out);
            }
            out.push_str("}\n");
        }
        Item::Fun(f) => fun(f, 0, out),
        Item::Declare(d) => {
            let _ = writeln!(out, "declare {} : {};", d.name, d.ty);
        }
        Item::Stmt(s) => stmt(s, 0, out),
    }
}

fn params(ps: &[rsc_logic::Sym], out: &mut String) {
    if ps.is_empty() {
        return;
    }
    out.push('<');
    for (i, p) in ps.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{p}");
    }
    out.push('>');
}

fn typed_params(ps: &[(rsc_logic::Sym, AnnTy)], out: &mut String) {
    for (i, (x, t)) in ps.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{x}: {t}");
    }
}

fn field(f: &FieldDecl, out: &mut String) {
    let m = if f.mutability == FieldMut::Immutable {
        "immutable "
    } else {
        ""
    };
    let _ = writeln!(out, "    {m}{} : {};", f.name, f.ty);
}

fn method(m: &MethodDecl, out: &mut String) {
    let ann = match m.recv {
        crate::Mutability::Mutable => "",
        crate::Mutability::ReadOnly => "@ReadOnly ",
        crate::Mutability::Immutable => "@Immutable ",
        crate::Mutability::Unique => "@Unique ",
    };
    let _ = write!(out, "    {ann}{}(", m.name);
    typed_params(&m.sig.params, out);
    let _ = write!(out, "): {}", m.sig.ret);
    match &m.body {
        Some(b) => {
            out.push(' ');
            block(b, 1, out);
        }
        None => out.push_str(";\n"),
    }
}

fn fun(f: &FunDecl, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    // Single signatures with matching arity print inline; everything else
    // (overloads, partial-arity signatures) prints as `sig` lines with an
    // unannotated function, which round-trips exactly.
    let inline = f.sigs.len() == 1 && f.sigs[0].params.len() == f.params.len();
    if !inline {
        for sig in &f.sigs {
            let _ = writeln!(out, "{pad}sig {} : {};", f.name, AnnTy::Arrow(sig.clone()));
        }
    }
    let _ = write!(out, "{pad}function {}", f.name);
    if inline && !f.sigs[0].tparams.is_empty() {
        params(&f.sigs[0].tparams, out);
    }
    out.push('(');
    if inline {
        let sig = &f.sigs[0];
        for (i, x) in f.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{x}: {}", sig.params[i].1);
        }
        let _ = write!(out, "): {} ", sig.ret);
    } else {
        for (i, x) in f.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{x}");
        }
        out.push_str(") ");
    }
    block(&f.body, indent, out);
}

fn block(b: &Block, indent: usize, out: &mut String) {
    out.push_str("{\n");
    for s in &b.stmts {
        stmt(s, indent + 1, out);
    }
    let _ = writeln!(out, "{}}}", "    ".repeat(indent));
}

fn stmt(s: &Stmt, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::VarDecl {
            name, ann, init, ..
        } => {
            let _ = write!(out, "{pad}var {name}");
            if let Some(a) = ann {
                let _ = write!(out, ": {a}");
            }
            let _ = writeln!(out, " = {};", expr(init));
        }
        Stmt::Assign { target, value, .. } => {
            let t = match target {
                LValue::Var(x, _) => x.to_string(),
                LValue::Field(e, f, _) => format!("{}.{f}", expr(e)),
                LValue::Index(a, i, _) => format!("{}[{}]", expr(a), expr(i)),
            };
            let _ = writeln!(out, "{pad}{t} = {};", expr(value));
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            let _ = write!(out, "{pad}if ({}) ", expr(cond));
            block(then_blk, indent, out);
            if !else_blk.stmts.is_empty() {
                let _ = write!(out, "{pad}else ");
                block(else_blk, indent, out);
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = write!(out, "{pad}while ({}) ", expr(cond));
            block(body, indent, out);
        }
        Stmt::Return { value, .. } => match value {
            Some(e) => {
                let _ = writeln!(out, "{pad}return {};", expr(e));
            }
            None => {
                let _ = writeln!(out, "{pad}return;");
            }
        },
        Stmt::ExprStmt { expr: e, .. } => {
            let _ = writeln!(out, "{pad}{};", expr(e));
        }
        Stmt::Fun(f) => fun(f, indent, out),
        Stmt::Seq(ss, _) => {
            for s in ss {
                stmt(s, indent, out);
            }
        }
        Stmt::Skip(_) => {
            let _ = writeln!(out, "{pad};");
        }
    }
}

/// Renders an expression.
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Num(n, _) => n.to_string(),
        Expr::Bv(n, _) => format!("{n:#010x}"),
        Expr::Str(s, _) => format!("{s:?}"),
        Expr::Bool(b, _) => b.to_string(),
        Expr::Null(_) => "null".into(),
        Expr::Undefined(_) => "undefined".into(),
        Expr::Var(x, _) => x.to_string(),
        Expr::This(_) => "this".into(),
        Expr::Field(b, f, _) => format!("{}.{f}", expr(b)),
        Expr::Index(a, i, _) => format!("{}[{}]", expr(a), expr(i)),
        Expr::Call(f, args, _) => {
            let a: Vec<String> = args.iter().map(expr).collect();
            format!("{}({})", expr(f), a.join(", "))
        }
        Expr::New(c, targs, args, _) => {
            let a: Vec<String> = args.iter().map(expr).collect();
            if targs.is_empty() {
                format!("new {c}({})", a.join(", "))
            } else {
                let t: Vec<String> = targs.iter().map(|t| t.to_string()).collect();
                format!("new {c}<{}>({})", t.join(", "), a.join(", "))
            }
        }
        Expr::Cast(t, e, _) => format!("<{t}> {}", expr(e)),
        Expr::Unary(op, e, _) => match op {
            UnOp::Not => format!("!{}", expr(e)),
            UnOp::Neg => format!("-{}", expr(e)),
            UnOp::TypeOf => format!("typeof {}", expr(e)),
        },
        Expr::Binary(op, a, b, _) => {
            let sym = match op {
                BinOpE::Add => "+",
                BinOpE::Sub => "-",
                BinOpE::Mul => "*",
                BinOpE::Div => "/",
                BinOpE::Mod => "%",
                BinOpE::Lt => "<",
                BinOpE::Le => "<=",
                BinOpE::Gt => ">",
                BinOpE::Ge => ">=",
                BinOpE::Eq => "===",
                BinOpE::Ne => "!==",
                BinOpE::And => "&&",
                BinOpE::Or => "||",
                BinOpE::BitAnd => "&",
                BinOpE::BitOr => "|",
            };
            format!("({} {sym} {})", expr(a), expr(b))
        }
        Expr::Ternary(c, t, f, _) => format!("({} ? {} : {})", expr(c), expr(t), expr(f)),
        Expr::ArrayLit(es, _) => {
            let a: Vec<String> = es.iter().map(expr).collect();
            format!("[{}]", a.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_program;

    /// Pretty-printing then re-parsing yields a program that pretty-prints
    /// identically (print ∘ parse is idempotent).
    #[test]
    fn roundtrip_idempotent() {
        let src = r#"
            type nat = {v: number | 0 <= v};
            enum F { A = 0x1, B = 0x2, }
            class C {
                immutable k : nat;
                constructor(k: nat) { this.k = k; }
                @ReadOnly get(i: number): number { return i < this.k ? i : 0; }
            }
            sig g : (x: number) => number;
            sig g : (x: number, y: number) => number;
            function g(x, y) {
                if (arguments.length === 2) { return x + y; }
                return x;
            }
            function f(a: number[]): number {
                var s = 0;
                for (var i = 0; i < a.length; i++) { s = s + a[i]; }
                return s;
            }
            var z = new C(3);
        "#;
        let p1 = parse_program(src).unwrap();
        let printed1 = super::program(&p1);
        let p2 = parse_program(&printed1)
            .unwrap_or_else(|e| panic!("pretty output must re-parse: {e}\n{printed1}"));
        let printed2 = super::program(&p2);
        assert_eq!(printed1, printed2);
    }

    /// Imports and export markers survive the print → parse round trip
    /// (the workspace generator prints per-file modules this way).
    #[test]
    fn roundtrip_imports_and_exports() {
        let src = r#"
            import {nat, half} from "./m0";
            import {C} from "./m1";
            export type pos = {v: number | 0 < v};
            export function f(x: pos): nat {
                return half(x + x);
            }
            var q = f(1);
        "#;
        let p1 = parse_program(src).unwrap();
        let printed1 = super::program(&p1);
        let p2 = parse_program(&printed1)
            .unwrap_or_else(|e| panic!("pretty output must re-parse: {e}\n{printed1}"));
        assert_eq!(p2.imports.len(), 2);
        assert_eq!(p2.imports[0].from, "./m0");
        assert_eq!(
            p2.imports[0]
                .names
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            ["nat", "half"]
        );
        assert_eq!(
            p2.exports
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            ["pos", "f"]
        );
        assert_eq!(printed1, super::program(&p2));
    }

    #[test]
    fn corpus_pretty_reparses() {
        // Every benchmark pretty-prints to something that parses again.
        let dir = format!("{}/../../benchmarks", env!("CARGO_MANIFEST_DIR"));
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().and_then(|e| e.to_str()) != Some("rsc") {
                continue;
            }
            let src = std::fs::read_to_string(&path).unwrap();
            let p = parse_program(&src).unwrap();
            let printed = super::program(&p);
            parse_program(&printed)
                .unwrap_or_else(|e| panic!("{}: pretty output must re-parse: {e}", path.display()));
        }
    }
}
