//! The surface type-annotation language of RSC.
//!
//! ```text
//! T ::= {v: B | p}                    refinement type
//!     | B                             base type (number, boolean, …)
//!     | N<args>                       named type / alias application
//!     | T[]   T[]+                    (non-empty) array sugar
//!     | T + T                         union (the paper writes unions with +)
//!     | <A,B>(x: T, …) => T           (polymorphic) function type
//! ```
//!
//! Named-type arguments may be types, logical terms (e.g. `idx<a>`,
//! `natN<n>`, `grid<this.w, this.h>`) or mutability modifiers
//! (`Array<MU, T>`), disambiguated by the parser and resolved during alias
//! expansion in `rsc-core`.

use std::fmt;

use rsc_logic::{Pred, Sym};

use crate::span::Span;

/// Reference mutability, following IGJ (§4.4 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Mutability {
    /// `IM` — neither this reference nor any other may mutate the object.
    Immutable,
    /// `MU` — this (and other) references may mutate the object.
    Mutable,
    /// `RO` — this reference cannot mutate, others may.
    ReadOnly,
    /// `UQ` — the only reference to the object (initialization state).
    Unique,
}

impl Mutability {
    /// Parses the conventional two-letter abbreviation.
    pub fn from_abbrev(s: &str) -> Option<Mutability> {
        match s {
            "IM" | "Immutable" => Some(Mutability::Immutable),
            "MU" | "Mutable" => Some(Mutability::Mutable),
            "RO" | "ReadOnly" => Some(Mutability::ReadOnly),
            "UQ" | "Unique" => Some(Mutability::Unique),
            _ => None,
        }
    }

    /// The conventional abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            Mutability::Immutable => "IM",
            Mutability::Mutable => "MU",
            Mutability::ReadOnly => "RO",
            Mutability::Unique => "UQ",
        }
    }

    /// Whether a reference of this mutability may be used where `want` is
    /// required (receiver compatibility): `MU ≤ RO`, `IM ≤ RO`, and `UQ`
    /// satisfies everything (it can commit to any state).
    pub fn satisfies(self, want: Mutability) -> bool {
        match want {
            Mutability::ReadOnly => true,
            Mutability::Mutable => matches!(self, Mutability::Mutable | Mutability::Unique),
            Mutability::Immutable => matches!(self, Mutability::Immutable | Mutability::Unique),
            Mutability::Unique => matches!(self, Mutability::Unique),
        }
    }
}

impl fmt::Display for Mutability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// An argument of a named type application.
#[derive(Clone, PartialEq, Debug)]
pub enum AnnArg {
    /// A type argument.
    Ty(AnnTy),
    /// A logical term argument (dependent alias parameter).
    Term(rsc_logic::Term),
    /// A mutability modifier.
    Mut(Mutability),
}

/// A (possibly polymorphic, dependent) function type.
#[derive(Clone, PartialEq, Debug)]
pub struct FunTy {
    /// Type parameters (`<A, B>`).
    pub tparams: Vec<Sym>,
    /// Named parameters with their types; later parameter types and the
    /// return type may refer to earlier parameter names.
    pub params: Vec<(Sym, AnnTy)>,
    /// The return type.
    pub ret: Box<AnnTy>,
}

/// A surface type annotation.
#[derive(Clone, PartialEq, Debug)]
pub enum AnnTy {
    /// A named type: primitive, class, interface, enum, alias application
    /// or type variable.
    Name(Sym, Vec<AnnArg>),
    /// A refinement `{v: T | p}`. The bound value-variable name is
    /// recorded (conventionally `v`).
    Refined {
        /// The value variable bound by the refinement.
        vv: Sym,
        /// The refined base.
        base: Box<AnnTy>,
        /// The refinement predicate.
        pred: Pred,
    },
    /// `T[]` (element type, mutability, non-empty flag). `T[]+` adds the
    /// refinement `0 < len(v)`.
    Array {
        /// Element type.
        elem: Box<AnnTy>,
        /// Array-object mutability (`T[]` defaults to immutable).
        mutability: Mutability,
        /// True for the `T[]+` non-empty sugar.
        nonempty: bool,
    },
    /// A union, written with `+` (as in the paper).
    Union(Vec<AnnTy>),
    /// A function type.
    Arrow(FunTy),
}

impl AnnTy {
    /// A plain named type with no arguments.
    pub fn name(s: impl Into<Sym>) -> AnnTy {
        AnnTy::Name(s.into(), Vec::new())
    }

    /// `number`.
    pub fn number() -> AnnTy {
        AnnTy::name("number")
    }

    /// `boolean`.
    pub fn boolean() -> AnnTy {
        AnnTy::name("boolean")
    }
}

impl fmt::Display for AnnTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnTy::Name(n, args) => {
                write!(f, "{n}")?;
                if !args.is_empty() {
                    write!(f, "<")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        match a {
                            AnnArg::Ty(t) => write!(f, "{t}")?,
                            AnnArg::Term(t) => write!(f, "{t}")?,
                            AnnArg::Mut(m) => write!(f, "{m}")?,
                        }
                    }
                    write!(f, ">")?;
                }
                Ok(())
            }
            AnnTy::Refined { vv, base, pred } => write!(f, "{{{vv}: {base} | {pred}}}"),
            AnnTy::Array {
                elem,
                mutability,
                nonempty,
            } => {
                // `T[]` is sugar for Array<MU, T>; other mutabilities are
                // printed in the explicit form so printing is lossless.
                if *mutability == Mutability::Mutable {
                    write!(f, "{elem}[]")?;
                    if *nonempty {
                        write!(f, "+")?;
                    }
                } else if *nonempty {
                    write!(f, "{{v: Array<{mutability}, {elem}> | 0 < len(v)}}")?;
                } else {
                    write!(f, "Array<{mutability}, {elem}>")?;
                }
                Ok(())
            }
            AnnTy::Union(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            AnnTy::Arrow(ft) => {
                if !ft.tparams.is_empty() {
                    write!(f, "<")?;
                    for (i, p) in ft.tparams.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}")?;
                    }
                    write!(f, ">")?;
                }
                write!(f, "(")?;
                for (i, (x, t)) in ft.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}: {t}")?;
                }
                write!(f, ") => {}", ft.ret)
            }
        }
    }
}

/// A type annotation together with its source location.
#[derive(Clone, PartialEq, Debug)]
pub struct SpannedTy {
    /// The annotation.
    pub ty: AnnTy,
    /// Where it was written.
    pub span: Span,
}
