//! Lexical tokens.

use std::fmt;

use crate::span::Span;

/// A lexical token kind.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Identifier (or contextual keyword).
    Ident(String),
    /// Decimal integer literal.
    Int(i64),
    /// Hexadecimal literal (bit-vector constant).
    Hex(u32),
    /// String literal (contents, unescaped).
    Str(String),

    // Keywords
    /// `function`
    Function,
    /// `var`
    Var,
    /// `let`
    Let,
    /// `return`
    Return,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `new`
    New,
    /// `class`
    Class,
    /// `extends`
    Extends,
    /// `interface`
    Interface,
    /// `enum`
    Enum,
    /// `type`
    Type,
    /// `sig`
    Sig,
    /// `declare`
    Declare,
    /// `qualif`
    Qualif,
    /// `invariant`
    Invariant,
    /// `constructor`
    Constructor,
    /// `immutable`
    Immutable,
    /// `mutable`
    Mutable,
    /// `this`
    This,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `undefined`
    Undefined,
    /// `typeof`
    Typeof,
    /// `instanceof`
    Instanceof,
    /// `break`
    Break,
    /// `import`
    Import,
    /// `export`
    Export,

    // Punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `?`
    Question,
    /// `=>`
    FatArrow,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `===`
    EqEqEq,
    /// `!=`
    NotEq,
    /// `!==`
    NotEqEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `<=>` (iff, in qualifier predicates)
    Iff,
    /// `@` (method mutability annotations)
    At,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Hex(n) => write!(f, "{n:#x}"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            other => {
                let s = match other {
                    Tok::Function => "function",
                    Tok::Var => "var",
                    Tok::Let => "let",
                    Tok::Return => "return",
                    Tok::If => "if",
                    Tok::Else => "else",
                    Tok::While => "while",
                    Tok::For => "for",
                    Tok::New => "new",
                    Tok::Class => "class",
                    Tok::Extends => "extends",
                    Tok::Interface => "interface",
                    Tok::Enum => "enum",
                    Tok::Type => "type",
                    Tok::Sig => "sig",
                    Tok::Declare => "declare",
                    Tok::Qualif => "qualif",
                    Tok::Invariant => "invariant",
                    Tok::Constructor => "constructor",
                    Tok::Immutable => "immutable",
                    Tok::Mutable => "mutable",
                    Tok::This => "this",
                    Tok::True => "true",
                    Tok::False => "false",
                    Tok::Null => "null",
                    Tok::Undefined => "undefined",
                    Tok::Typeof => "typeof",
                    Tok::Instanceof => "instanceof",
                    Tok::Break => "break",
                    Tok::Import => "import",
                    Tok::Export => "export",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Lt => "<",
                    Tok::Gt => ">",
                    Tok::Le => "<=",
                    Tok::Ge => ">=",
                    Tok::Comma => ",",
                    Tok::Semi => ";",
                    Tok::Colon => ":",
                    Tok::Dot => ".",
                    Tok::Question => "?",
                    Tok::FatArrow => "=>",
                    Tok::Assign => "=",
                    Tok::EqEq => "==",
                    Tok::EqEqEq => "===",
                    Tok::NotEq => "!=",
                    Tok::NotEqEq => "!==",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Bang => "!",
                    Tok::AndAnd => "&&",
                    Tok::OrOr => "||",
                    Tok::Amp => "&",
                    Tok::Pipe => "|",
                    Tok::PlusPlus => "++",
                    Tok::MinusMinus => "--",
                    Tok::PlusEq => "+=",
                    Tok::MinusEq => "-=",
                    Tok::Iff => "<=>",
                    Tok::At => "@",
                    Tok::Eof => "<eof>",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token kind.
    pub tok: Tok,
    /// Source region.
    pub span: Span,
}
