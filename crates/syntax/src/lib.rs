//! # rsc-syntax
//!
//! The front end of the RSC reproduction: a lexer, recursive-descent
//! parser and AST for the Refined TypeScript input language — the paper's
//! FRSC core (§3.1.1 of *Refinement Types for TypeScript*, PLDI 2016)
//! extended with the features its implementation supports (§4): loops,
//! nested functions, interfaces, bit-vector enums, overload (`sig`)
//! declarations, type aliases and refinement annotations.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     type nat = {v: number | 0 <= v};
//!     function inc(x: nat): {v: number | x < v} {
//!         return x + 1;
//!     }
//! "#;
//! let prog = rsc_syntax::parse_program(src).unwrap();
//! assert_eq!(prog.items.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod qualify;
pub mod span;
pub mod token;
pub mod types;

pub use ast::Program;
pub use parser::{parse_pred, parse_program, parse_type, ParseError};
pub use qualify::{demangle, module_id, qualified_name, qualify_program, ModuleEnv, QualifyError};
pub use span::{LineCol, LineIndex, Span};
pub use types::{AnnArg, AnnTy, FunTy, Mutability};
