//! Parser tests over the code shapes that appear in the paper.

use rsc_syntax::ast::*;
use rsc_syntax::{parse_pred, parse_program, parse_type, AnnArg, AnnTy, Mutability};

#[test]
fn parse_type_aliases() {
    let p = parse_program(
        r#"
        type nat = {v: number | 0 <= v};
        type pos = {v: number | 0 < v};
        type natN<n> = {v: nat | v = n};
        type idx<a> = {v: nat | v < len(a)};
    "#,
    )
    .unwrap();
    assert_eq!(p.items.len(), 4);
    match &p.items[3] {
        Item::TypeAlias(t) => {
            assert_eq!(t.name, "idx");
            assert_eq!(t.params.len(), 1);
        }
        _ => panic!("expected alias"),
    }
}

#[test]
fn parse_reduce_figure_1() {
    let p = parse_program(
        r#"
        function reduce<A, B>(a: A[], f: (acc: B, cur: A, i: idx<a>) => B, x: B): B {
            var res = x, i;
            for (i = 0; i < a.length; i++) {
                res = f(res, a[i], i);
            }
            return res;
        }

        function minIndex(a: number[]): number {
            if (a.length <= 0) { return -1; }
            function step(min: idx<a>, cur: number, i: idx<a>): idx<a> {
                return cur < a[min] ? i : min;
            }
            return reduce(a, step, 0);
        }
    "#,
    )
    .unwrap();
    assert_eq!(p.items.len(), 2);
    match &p.items[0] {
        Item::Fun(f) => {
            assert_eq!(f.name, "reduce");
            assert_eq!(f.sigs.len(), 1);
            assert_eq!(f.sigs[0].tparams.len(), 2);
        }
        _ => panic!("expected function"),
    }
}

#[test]
fn parse_overload_sigs() {
    let p = parse_program(
        r#"
        sig $reduce : <A>(a: A[]+, f: (A, A, idx<a>) => A) => A;
        sig $reduce : <A, B>(a: A[], f: (B, A, idx<a>) => B, x: B) => B;
        function $reduce(a, f, x) {
            return x;
        }
    "#,
    )
    .unwrap();
    match &p.items[0] {
        Item::Fun(f) => {
            assert_eq!(f.sigs.len(), 2);
            assert_eq!(f.params.len(), 3);
        }
        _ => panic!("expected function"),
    }
}

#[test]
fn sig_without_function_is_error() {
    assert!(parse_program("sig f : (x: number) => number;").is_err());
}

#[test]
fn parse_field_class_figure_2() {
    let p = parse_program(
        r#"
        type grid<w, h> = {v: number[] | len(v) = (w + 2) * (h + 2)};
        type okW = {v: nat | v <= this.w};
        type okH = {v: nat | v <= this.h};

        class Field {
            immutable w : pos;
            immutable h : pos;
            dens : grid<this.w, this.h>;

            constructor(w: pos, h: pos, d: grid<w, h>) {
                this.h = h; this.w = w; this.dens = d;
            }

            setDensity(x: okW, y: okH, d: number) {
                var rowS = this.w + 2;
                var i = x + 1 + (y + 1) * rowS;
                this.dens[i] = d;
            }

            @ReadOnly getDensity(x: okW, y: okH): number {
                var rowS = this.w + 2;
                var i = x + 1 + (y + 1) * rowS;
                return this.dens[i];
            }

            reset(d: grid<this.w, this.h>) {
                this.dens = d;
            }
        }
    "#,
    )
    .unwrap();
    match &p.items[3] {
        Item::Class(c) => {
            assert_eq!(c.name, "Field");
            assert_eq!(c.fields.len(), 3);
            assert_eq!(c.fields[0].mutability, FieldMut::Immutable);
            assert_eq!(c.fields[2].mutability, FieldMut::Mutable);
            assert!(c.ctor.is_some());
            assert_eq!(c.methods.len(), 3);
            assert_eq!(c.methods[1].recv, Mutability::ReadOnly);
        }
        other => panic!("expected class, got {other:?}"),
    }
}

#[test]
fn parse_enum_and_interfaces() {
    let p = parse_program(
        r#"
        enum TypeFlags {
            Any = 0x00000001,
            String = 0x00000002,
            Class = 0x00000400,
            Interface = 0x00000800,
            Reference = 0x00001000,
            Object = 0x00000400 | 0x00000800 | 0x00001000,
        }
        interface Type {
            immutable flags : TypeFlags;
            id : number;
        }
        interface ObjectType extends Type {
        }
    "#,
    )
    .unwrap();
    match &p.items[0] {
        Item::Enum(e) => {
            assert_eq!(e.members.len(), 6);
            assert_eq!(e.members[5].1, 0x1c00);
        }
        _ => panic!("expected enum"),
    }
    match &p.items[2] {
        Item::Interface(i) => assert_eq!(i.extends, vec![rsc_logic::Sym::from("Type")]),
        _ => panic!("expected interface"),
    }
}

#[test]
fn parse_cast_and_typeof() {
    let p = parse_program(
        r#"
        function f(t: Type): number {
            if (t.flags & 0x3C00) {
                var o = <ObjectType> t;
                return 1;
            }
            if (typeof t === "number") { return 2; }
            return 0;
        }
    "#,
    )
    .unwrap();
    assert_eq!(p.items.len(), 1);
}

#[test]
fn parse_union_types() {
    let t = parse_type("number + undefined").unwrap();
    match t {
        AnnTy::Union(parts) => assert_eq!(parts.len(), 2),
        other => panic!("expected union, got {other}"),
    }
}

#[test]
fn parse_nonempty_array() {
    let t = parse_type("A[]+").unwrap();
    match t {
        AnnTy::Array { nonempty, .. } => assert!(nonempty),
        other => panic!("expected array, got {other}"),
    }
}

#[test]
fn parse_mutable_array_sugar() {
    let t = parse_type("Array<MU, number>").unwrap();
    match t {
        AnnTy::Array {
            mutability: Mutability::Mutable,
            ..
        } => {}
        other => panic!("expected mutable array, got {other}"),
    }
}

#[test]
fn parse_dependent_alias_args() {
    let t = parse_type("grid<this.w, this.h>").unwrap();
    match t {
        AnnTy::Name(n, args) => {
            assert_eq!(n, "grid");
            assert_eq!(args.len(), 2);
            assert!(matches!(args[0], AnnArg::Term(_)));
        }
        other => panic!("expected named type, got {other}"),
    }
}

#[test]
#[allow(non_snake_case)]
fn parse_isMask_style_predicates() {
    let p = parse_pred("mask(v, 0x00003C00) => impl(this, ObjectType)").unwrap();
    let s = p.to_string();
    assert!(s.contains("impl"), "{s}");
    assert!(s.contains("&"), "{s}");
}

#[test]
fn parse_ghost_function_declare() {
    let p = parse_program(
        r#"
        declare mulThm1 : (a: nat, b: {v: number | v >= 2}) => {v: boolean | a + a <= a * b};
    "#,
    )
    .unwrap();
    match &p.items[0] {
        Item::Declare(d) => assert_eq!(d.name, "mulThm1"),
        _ => panic!("expected declare"),
    }
}

#[test]
fn parse_while_and_break_rejected() {
    assert!(parse_program("function f(): void { while (true) { break; } }").is_err());
}

#[test]
fn parse_new_with_targs() {
    let p = parse_program("var z = new Field(3, 7, new Array<number>(45));").unwrap();
    match &p.items[0] {
        Item::Stmt(Stmt::VarDecl { init, .. }) => match init {
            Expr::New(name, _, args, _) => {
                assert_eq!(*name, "Field");
                assert_eq!(args.len(), 3);
            }
            other => panic!("expected new, got {other:?}"),
        },
        _ => panic!("expected var decl"),
    }
}

#[test]
fn parse_qualif_decl() {
    let p = parse_program("qualif CmpLen(v: number, a: ref): v <= len(a);").unwrap();
    match &p.items[0] {
        Item::Qualif(q) => {
            assert_eq!(q.name, "CmpLen");
            assert_eq!(q.params.len(), 2);
        }
        _ => panic!("expected qualif"),
    }
}

#[test]
fn parse_nested_else_if() {
    let p = parse_program(
        r#"
        function f(x: number): number {
            if (x < 0) { return 0; }
            else if (x < 10) { return 1; }
            else { return 2; }
        }
    "#,
    )
    .unwrap();
    assert_eq!(p.items.len(), 1);
}

#[test]
fn parse_ternary_and_logical() {
    let p = parse_program("var r = a < b ? a : b;");
    assert!(p.is_ok());
}

#[test]
fn spans_track_lines() {
    let p = parse_program("var x = 1;\nvar y = 2;").unwrap();
    match (&p.items[0], &p.items[1]) {
        (Item::Stmt(s1), Item::Stmt(s2)) => {
            assert_eq!(s1.span().line, 1);
            assert_eq!(s2.span().line, 2);
        }
        _ => panic!(),
    }
}

#[test]
fn parse_import_decl() {
    let p = parse_program(
        "import {inc, Counter} from \"./lib\";\nfunction f(x: number): number { return inc(x); }",
    )
    .unwrap();
    assert_eq!(p.imports.len(), 1);
    let imp = &p.imports[0];
    assert_eq!(imp.from, "./lib");
    let names: Vec<_> = imp.names.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["inc", "Counter"]);
    assert_eq!(imp.span.line, 1);
    // The import is metadata, not an item: only the function remains.
    assert_eq!(p.items.len(), 1);
}

#[test]
fn parse_export_modifiers() {
    let p = parse_program(
        r#"
        export function inc(x: number): number { return x + 1; }
        function helper(x: number): number { return x; }
        export type nat = {v: number | 0 <= v};
        export class C { n : number; }
        "#,
    )
    .unwrap();
    let names: Vec<_> = p.exports.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["inc", "nat", "C"]);
    // Exported items still parse as ordinary items.
    assert_eq!(p.items.len(), 4);
}

#[test]
fn export_before_statement_is_error() {
    let e = parse_program("export var x = 1;").unwrap_err();
    assert!(e.message.contains("named declaration"), "{e}");
    assert!(parse_program("export sig f : (x: number) => number;").is_err());
}

#[test]
fn import_requires_from_and_module_string() {
    assert!(parse_program("import {a} \"./m\";").is_err());
    assert!(parse_program("import {a} from m;").is_err());
    // `from` stays usable as an ordinary identifier elsewhere.
    assert!(parse_program("var from = 1; var y = from + 1;").is_ok());
}

/// Several dangling overload sigs: the error must deterministically name
/// the *first-declared* one, at its own source line — not whichever a
/// hash map yields first.
#[test]
fn dangling_sig_error_is_deterministic() {
    for _ in 0..16 {
        let e = parse_program(
            "sig zeta : (x: number) => number;\n\
             sig alpha : (x: number) => number;\n\
             sig mu : (x: number) => number;\n",
        )
        .unwrap_err();
        assert_eq!(e.message, "sig for `zeta` has no matching function");
        assert_eq!(e.span.line, 1, "blame the first-declared sig: {e}");
    }
}
