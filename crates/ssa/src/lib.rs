//! # rsc-ssa
//!
//! The SSA translation from FRSC (the imperative surface language) to
//! IRSC (the functional core the refinement checker operates on), per
//! §3.1 of *Refinement Types for TypeScript* (PLDI 2016).
//!
//! Assignments become `let` bindings of fresh variables; conditionals
//! become `letif` with Φ-variables joining the branches (rule S-ITE);
//! loops — which the paper's formal core omits but its tool supports
//! (§2.2.2) — become `letloop` with Φ-variables at the loop head, whose
//! refinements the Liquid fixpoint infers as loop invariants.
//!
//! # Example
//!
//! ```
//! let prog = rsc_syntax::parse_program(
//!     "function f(c: boolean): number {
//!          var x = 0;
//!          if (c) { x = 1; }
//!          return x;
//!      }",
//! ).unwrap();
//! let ir = rsc_ssa::transform_program(&prog).unwrap();
//! assert_eq!(ir.funs.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod cfg;
pub mod ir;
pub mod transform;

pub use cfg::{Block, BlockId, Cfg, Edge, Stmt, Terminator};
pub use ir::{Body, IrClass, IrCtor, IrExpr, IrFun, IrMethod, IrProgram, LoopPhi, Phi};
pub use transform::{transform_program, Ssa, SsaEnv, SsaError};
