//! The SSA transformation `δ ⊢ s ↪ u; δ′` of Figure 3, implemented over
//! blocks, with the loop extension of §2.2.2 (fresh Φ-variables at loop
//! heads for every variable assigned in the body).

use std::collections::{BTreeSet, HashMap};

use rsc_logic::Sym;
use rsc_syntax::ast::*;
use rsc_syntax::Span;

use crate::ir::*;

/// The SSA translation environment δ: source variable → current SSA name.
#[derive(Clone, Debug, Default)]
pub struct SsaEnv {
    map: HashMap<Sym, Sym>,
}

impl SsaEnv {
    /// Empty environment.
    pub fn new() -> Self {
        SsaEnv::default()
    }

    /// Current SSA name of `x` (identity when unmapped — parameters and
    /// globals keep their names).
    pub fn lookup(&self, x: &Sym) -> Sym {
        self.map.get(x).cloned().unwrap_or_else(|| x.clone())
    }

    /// Rebinds `x` to SSA name `v`.
    pub fn bind(&mut self, x: Sym, v: Sym) {
        self.map.insert(x, v);
    }

    /// True if `x` was declared before the current region (it has a
    /// binding in δ). Variables declared *inside* a branch are local to it
    /// and must not become Φ-variables at the join.
    pub fn in_scope(&self, x: &Sym) -> bool {
        self.map.contains_key(x)
    }

    /// The paper's δ₁ ⋈ δ₂ restricted to `base`'s scope: variables that
    /// were in scope before the branch and have differing SSA names after.
    pub fn join_in(&self, other: &SsaEnv, base: &SsaEnv) -> Vec<Sym> {
        let mut keys: BTreeSet<&Sym> = self.map.keys().collect();
        keys.extend(other.map.keys());
        keys.into_iter()
            .filter(|x| base.in_scope(x) && self.lookup(x) != other.lookup(x))
            .cloned()
            .collect()
    }
}

/// The SSA transformer: fresh-name supply plus recursive translation.
#[derive(Default)]
pub struct Ssa {
    counter: u32,
    /// Maps SSA names back to source names, for diagnostics.
    pub origins: HashMap<Sym, Sym>,
}

/// Errors the transformation can raise (currently only internal limits).
#[derive(Clone, Debug)]
pub struct SsaError {
    /// Message.
    pub message: String,
    /// Location.
    pub span: Span,
}

impl std::fmt::Display for SsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ssa error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for SsaError {}

/// Translates a parsed program into SSA form.
pub fn transform_program(p: &Program) -> Result<IrProgram, SsaError> {
    let _sp = rsc_obs::span!("ssa");
    let mut ssa = Ssa::default();
    let mut out = IrProgram::default();
    let mut top_stmts: Vec<Stmt> = Vec::new();
    for item in &p.items {
        match item {
            Item::TypeAlias(a) => out.aliases.push(a.clone()),
            Item::Qualif(q) => out.quals.push(q.clone()),
            Item::Enum(e) => out.enums.push(e.clone()),
            Item::Interface(i) => out.interfaces.push(i.clone()),
            Item::Declare(d) => out.declares.push(d.clone()),
            Item::Fun(f) => out.funs.push(ssa.fun(f)?),
            Item::Class(c) => out.classes.push(ssa.class(c)?),
            Item::Stmt(s) => top_stmts.push(s.clone()),
        }
    }
    let mut delta = SsaEnv::new();
    let top_end = top_stmts.last().map(|s| s.span()).unwrap_or_default();
    out.top = ssa
        .stmts(&top_stmts, &mut delta, JoinKind::Return, top_end)?
        .body;
    out.exports = p.exports.iter().map(|(n, _)| n.clone()).collect();
    Ok(out)
}

/// What a falling-off-the-end statement sequence should produce.
#[derive(Clone, Copy, PartialEq, Eq)]
enum JoinKind {
    /// Function body: implicit `return;`.
    Return,
    /// Branch arm: fall through to the join.
    Branch,
}

/// Result facts about a translated sequence.
struct Translated {
    body: Body,
    falls: bool,
}

impl Ssa {
    /// A fresh SSA version of source variable `x`.
    pub fn fresh(&mut self, x: &Sym) -> Sym {
        self.counter += 1;
        let name = Sym::from(format!("{x}${}", self.counter));
        self.origins.insert(name.clone(), x.clone());
        name
    }

    /// Translates a function declaration.
    pub fn fun(&mut self, f: &FunDecl) -> Result<IrFun, SsaError> {
        let mut delta = SsaEnv::new();
        for p in &f.params {
            delta.bind(p.clone(), p.clone());
        }
        delta.bind(Sym::from("arguments"), Sym::from("arguments"));
        let body = self.stmts(&f.body.stmts, &mut delta, JoinKind::Return, f.span)?;
        Ok(IrFun {
            name: f.name.clone(),
            sigs: f.sigs.clone(),
            params: f.params.clone(),
            body: body.body,
            span: f.span,
        })
    }

    fn class(&mut self, c: &ClassDecl) -> Result<IrClass, SsaError> {
        let ctor = match &c.ctor {
            Some(ct) => {
                let mut delta = SsaEnv::new();
                for (p, _) in &ct.params {
                    delta.bind(p.clone(), p.clone());
                }
                delta.bind(Sym::from("this"), Sym::from("this"));
                let b = self.stmts(&ct.body.stmts, &mut delta, JoinKind::Return, ct.span)?;
                Some(IrCtor {
                    params: ct.params.clone(),
                    body: b.body,
                    span: ct.span,
                })
            }
            None => None,
        };
        let mut methods = Vec::new();
        for m in &c.methods {
            let body = match &m.body {
                Some(b) => {
                    let mut delta = SsaEnv::new();
                    for (p, _) in &m.sig.params {
                        delta.bind(p.clone(), p.clone());
                    }
                    delta.bind(Sym::from("this"), Sym::from("this"));
                    Some(
                        self.stmts(&b.stmts, &mut delta, JoinKind::Return, m.span)?
                            .body,
                    )
                }
                None => None,
            };
            methods.push(IrMethod {
                name: m.name.clone(),
                recv: m.recv,
                sig: m.sig.clone(),
                body,
                span: m.span,
            });
        }
        Ok(IrClass {
            decl: c.clone(),
            ctor,
            methods,
        })
    }

    /// `end` is the span blamed for the implicit terminator when the
    /// sequence falls off its end (the enclosing function, branch, or
    /// loop) — implicit returns must carry real provenance, not
    /// `Span::dummy()`.
    fn stmts(
        &mut self,
        stmts: &[Stmt],
        delta: &mut SsaEnv,
        join: JoinKind,
        end_span: Span,
    ) -> Result<Translated, SsaError> {
        let Some((first, rest)) = stmts.split_first() else {
            let end = match join {
                JoinKind::Return => Body::Ret(None, end_span),
                JoinKind::Branch => Body::EndBranch(end_span),
            };
            return Ok(Translated {
                body: end,
                falls: true,
            });
        };
        match first {
            Stmt::Skip(_) => self.stmts(rest, delta, join, end_span),
            Stmt::Seq(ss, _) => {
                // Scope-transparent: splice into the current sequence.
                let mut flat: Vec<Stmt> = ss.clone();
                flat.extend_from_slice(rest);
                self.stmts(&flat, delta, join, end_span)
            }
            Stmt::VarDecl {
                name,
                ann,
                init,
                span,
            } => {
                let rhs = self.expr(init, delta);
                let x = self.fresh(name);
                delta.bind(name.clone(), x.clone());
                let k = self.stmts(rest, delta, join, end_span)?;
                Ok(Translated {
                    body: Body::Let {
                        x,
                        ann: ann.clone(),
                        rhs,
                        rest: Box::new(k.body),
                        span: *span,
                    },
                    falls: k.falls,
                })
            }
            Stmt::Assign {
                target,
                value,
                span,
            } => match target {
                LValue::Var(name, _) => {
                    let rhs = self.expr(value, delta);
                    let x = self.fresh(name);
                    delta.bind(name.clone(), x.clone());
                    let k = self.stmts(rest, delta, join, end_span)?;
                    Ok(Translated {
                        body: Body::Let {
                            x,
                            ann: None,
                            rhs,
                            rest: Box::new(k.body),
                            span: *span,
                        },
                        falls: k.falls,
                    })
                }
                LValue::Field(obj, f, _) => {
                    let o = self.expr(obj, delta);
                    let v = self.expr(value, delta);
                    let e = IrExpr::FieldAssign(Box::new(o), f.clone(), Box::new(v), *span);
                    let k = self.stmts(rest, delta, join, end_span)?;
                    Ok(Translated {
                        body: Body::Effect {
                            e,
                            rest: Box::new(k.body),
                            span: *span,
                        },
                        falls: k.falls,
                    })
                }
                LValue::Index(arr, idx, _) => {
                    let a = self.expr(arr, delta);
                    let i = self.expr(idx, delta);
                    let v = self.expr(value, delta);
                    let e = IrExpr::IndexAssign(Box::new(a), Box::new(i), Box::new(v), *span);
                    let k = self.stmts(rest, delta, join, end_span)?;
                    Ok(Translated {
                        body: Body::Effect {
                            e,
                            rest: Box::new(k.body),
                            span: *span,
                        },
                        falls: k.falls,
                    })
                }
            },
            Stmt::ExprStmt { expr, span } => {
                let e = self.expr(expr, delta);
                let k = self.stmts(rest, delta, join, end_span)?;
                Ok(Translated {
                    body: Body::Effect {
                        e,
                        rest: Box::new(k.body),
                        span: *span,
                    },
                    falls: k.falls,
                })
            }
            Stmt::Return { value, span } => {
                // Anything after a return is dead; drop it (the paper's
                // formal core has a single trailing return).
                let e = value.as_ref().map(|v| self.expr(v, delta));
                Ok(Translated {
                    body: Body::Ret(e, *span),
                    falls: false,
                })
            }
            Stmt::Fun(f) => {
                // Nested function: capture the current δ so free variables
                // refer to the SSA names live at the definition point.
                let mut inner = delta.clone();
                for p in &f.params {
                    inner.bind(p.clone(), p.clone());
                }
                inner.bind(Sym::from("arguments"), Sym::from("arguments"));
                let b = self.stmts(&f.body.stmts, &mut inner, JoinKind::Return, f.span)?;
                let fun = IrFun {
                    name: f.name.clone(),
                    sigs: f.sigs.clone(),
                    params: f.params.clone(),
                    body: b.body,
                    span: f.span,
                };
                let k = self.stmts(rest, delta, join, end_span)?;
                Ok(Translated {
                    body: Body::LetFun {
                        fun: Box::new(fun),
                        rest: Box::new(k.body),
                        span: f.span,
                    },
                    falls: k.falls,
                })
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                let c = self.expr(cond, delta);
                let mut d1 = delta.clone();
                let t1 = self.stmts(&then_blk.stmts, &mut d1, JoinKind::Branch, *span)?;
                let mut d2 = delta.clone();
                let t2 = self.stmts(&else_blk.stmts, &mut d2, JoinKind::Branch, *span)?;
                let (phis, d_next) = match (t1.falls, t2.falls) {
                    (true, true) => {
                        let mut phis = Vec::new();
                        let mut dn = delta.clone();
                        for x in d1.join_in(&d2, delta) {
                            let nx = self.fresh(&x);
                            phis.push(Phi {
                                new: nx.clone(),
                                then_src: Some(d1.lookup(&x)),
                                else_src: Some(d2.lookup(&x)),
                                source: x.clone(),
                            });
                            dn.bind(x, nx);
                        }
                        (phis, dn)
                    }
                    (true, false) => (Vec::new(), d1),
                    (false, true) => (Vec::new(), d2),
                    (false, false) => (Vec::new(), delta.clone()),
                };
                *delta = d_next;
                let k = self.stmts(rest, delta, join, end_span)?;
                Ok(Translated {
                    body: Body::If {
                        cond: c,
                        phis,
                        then_br: Box::new(t1.body),
                        else_br: Box::new(t2.body),
                        then_falls: t1.falls,
                        else_falls: t2.falls,
                        rest: Box::new(k.body),
                        span: *span,
                    },
                    falls: k.falls && (t1.falls || t2.falls),
                })
            }
            Stmt::While { cond, body, span } => {
                // Φ-variables: every in-scope variable assigned in the body.
                let mut assigned = BTreeSet::new();
                collect_assigned(&body.stmts, &mut assigned);
                // Only in-scope variables can be loop Φ-variables.
                assigned.retain(|x| delta.in_scope(x));
                let mut d_loop = delta.clone();
                let mut proto_phis: Vec<(Sym, Sym, Sym)> = Vec::new(); // (source, new, init)
                for x in &assigned {
                    let init = delta.lookup(x);
                    let nx = self.fresh(x);
                    d_loop.bind(x.clone(), nx.clone());
                    proto_phis.push((x.clone(), nx, init));
                }
                let c = self.expr(cond, &mut d_loop);
                let mut d_body = d_loop.clone();
                let tb = self.stmts(&body.stmts, &mut d_body, JoinKind::Branch, *span)?;
                let phis: Vec<LoopPhi> = proto_phis
                    .into_iter()
                    .map(|(source, new, init_src)| LoopPhi {
                        body_src: if tb.falls {
                            Some(d_body.lookup(&source))
                        } else {
                            None
                        },
                        new,
                        init_src,
                        source,
                    })
                    .collect();
                // After the loop the Φ names are current.
                for p in &phis {
                    delta.bind(p.source.clone(), p.new.clone());
                }
                let k = self.stmts(rest, delta, join, end_span)?;
                Ok(Translated {
                    body: Body::Loop {
                        phis,
                        cond: c,
                        body: Box::new(tb.body),
                        rest: Box::new(k.body),
                        span: *span,
                    },
                    falls: k.falls,
                })
            }
        }
    }

    /// Expression translation (rule S-VAR renames through δ; everything
    /// else is structural).
    pub fn expr(&mut self, e: &Expr, delta: &mut SsaEnv) -> IrExpr {
        match e {
            Expr::Num(n, s) => IrExpr::Num(*n, *s),
            Expr::Bv(n, s) => IrExpr::Bv(*n, *s),
            Expr::Str(x, s) => IrExpr::Str(x.clone(), *s),
            Expr::Bool(b, s) => IrExpr::Bool(*b, *s),
            Expr::Null(s) => IrExpr::Null(*s),
            Expr::Undefined(s) => IrExpr::Undefined(*s),
            Expr::This(s) => IrExpr::This(*s),
            Expr::Var(x, s) => IrExpr::Var(delta.lookup(x), *s),
            Expr::Field(b, f, s) => IrExpr::Field(Box::new(self.expr(b, delta)), f.clone(), *s),
            Expr::Index(a, i, s) => IrExpr::Index(
                Box::new(self.expr(a, delta)),
                Box::new(self.expr(i, delta)),
                *s,
            ),
            Expr::Call(f, args, s) => IrExpr::Call(
                Box::new(self.expr(f, delta)),
                args.iter().map(|a| self.expr(a, delta)).collect(),
                *s,
            ),
            Expr::New(c, targs, args, s) => IrExpr::New(
                c.clone(),
                targs.clone(),
                args.iter().map(|a| self.expr(a, delta)).collect(),
                *s,
            ),
            Expr::Cast(t, e, s) => IrExpr::Cast(t.clone(), Box::new(self.expr(e, delta)), *s),
            Expr::Unary(op, e, s) => IrExpr::Unary(*op, Box::new(self.expr(e, delta)), *s),
            Expr::Binary(op, a, b, s) => IrExpr::Binary(
                *op,
                Box::new(self.expr(a, delta)),
                Box::new(self.expr(b, delta)),
                *s,
            ),
            Expr::Ternary(c, t, e, s) => {
                // Ternaries translate to a conditional expression; we keep
                // them as a Call to the built-in `$ite` for checking, or
                // more simply as a Binary-like structure. We model them
                // structurally via nested IrExpr::Call on `$ite`? No —
                // keep a dedicated encoding: cond ? t : e becomes
                // Call(Var("$ite"), [c, t, e]) would lose laziness; both
                // sides are pure in our fragment, so we keep evaluation
                // order but note the checker types it path-sensitively.
                IrExpr::Call(
                    Box::new(IrExpr::Var(Sym::from("$ite"), *s)),
                    vec![
                        self.expr(c, delta),
                        self.expr(t, delta),
                        self.expr(e, delta),
                    ],
                    *s,
                )
            }
            Expr::ArrayLit(es, s) => {
                IrExpr::ArrayLit(es.iter().map(|x| self.expr(x, delta)).collect(), *s)
            }
        }
    }
}

/// Collects source variables assigned (via `x = …`, `x++`, …) anywhere in
/// a statement list, including nested blocks and loops — the candidates
/// for loop Φ-variables. Variable *declarations* in the body shadow rather
/// than assign, so they are excluded.
fn collect_assigned(stmts: &[Stmt], out: &mut BTreeSet<Sym>) {
    let mut declared: BTreeSet<Sym> = BTreeSet::new();
    collect_assigned_inner(stmts, out, &mut declared);
}

fn collect_assigned_inner(stmts: &[Stmt], out: &mut BTreeSet<Sym>, declared: &mut BTreeSet<Sym>) {
    for s in stmts {
        match s {
            Stmt::VarDecl { name, .. } => {
                declared.insert(name.clone());
            }
            Stmt::Assign {
                target: LValue::Var(x, _),
                ..
            } if !declared.contains(x) => {
                out.insert(x.clone());
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_assigned_inner(&then_blk.stmts, out, declared);
                collect_assigned_inner(&else_blk.stmts, out, declared);
            }
            Stmt::While { body, .. } => collect_assigned_inner(&body.stmts, out, declared),
            Stmt::Seq(ss, _) => collect_assigned_inner(ss, out, declared),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_syntax::parse_program;

    fn ssa_of(src: &str) -> IrProgram {
        transform_program(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn straight_line_let_chain() {
        let p = ssa_of("var x = 1; x = x + 1; var y = x;");
        let mut body = &p.top;
        let mut names = Vec::new();
        while let Body::Let { x, rest, .. } = body {
            names.push(x.to_string());
            body = rest;
        }
        assert_eq!(names.len(), 3);
        // Second let rebinds x with a fresh version.
        assert_ne!(names[0], names[1]);
    }

    #[test]
    fn if_introduces_phis() {
        let p = ssa_of(
            r#"
            function f(c: boolean): number {
                var x = 0;
                if (c) { x = 1; } else { x = 2; }
                return x;
            }
        "#,
        );
        let f = &p.funs[0];
        // body: let x = 0 in letif ...
        let Body::Let { rest, .. } = &f.body else {
            panic!("expected let")
        };
        let Body::If { phis, .. } = rest.as_ref() else {
            panic!("expected if")
        };
        assert_eq!(phis.len(), 1);
        assert_eq!(phis[0].source, "x");
        assert!(phis[0].then_src.is_some() && phis[0].else_src.is_some());
    }

    #[test]
    fn returning_branch_has_no_phi() {
        let p = ssa_of(
            r#"
            function f(c: boolean): number {
                var x = 0;
                if (c) { return 5; } else { x = 2; }
                return x;
            }
        "#,
        );
        let f = &p.funs[0];
        let Body::Let { rest, .. } = &f.body else {
            panic!()
        };
        let Body::If {
            phis,
            then_falls,
            else_falls,
            ..
        } = rest.as_ref()
        else {
            panic!()
        };
        assert!(phis.is_empty());
        assert!(!then_falls);
        assert!(else_falls);
    }

    #[test]
    fn loop_phis_for_reduce() {
        let p = ssa_of(
            r#"
            function reduce<A, B>(a: A[], f: (acc: B, x: A, i: idx<a>) => B, x: B): B {
                var res = x, i;
                for (i = 0; i < a.length; i++) {
                    res = f(res, a[i], i);
                }
                return res;
            }
        "#,
        );
        let f = &p.funs[0];
        // Walk to the loop node.
        fn find_loop(b: &Body) -> Option<&Body> {
            match b {
                Body::Loop { .. } => Some(b),
                Body::Let { rest, .. } | Body::Effect { rest, .. } | Body::LetFun { rest, .. } => {
                    find_loop(rest)
                }
                Body::If {
                    then_br,
                    else_br,
                    rest,
                    ..
                } => find_loop(then_br)
                    .or_else(|| find_loop(else_br))
                    .or_else(|| find_loop(rest)),
                _ => None,
            }
        }
        let Some(Body::Loop { phis, .. }) = find_loop(&f.body) else {
            panic!("no loop found")
        };
        // i and res are both assigned in the loop body.
        let mut sources: Vec<String> = phis.iter().map(|p| p.source.to_string()).collect();
        sources.sort();
        assert_eq!(sources, vec!["i", "res"]);
    }

    #[test]
    fn nested_function_captures_current_names() {
        let p = ssa_of(
            r#"
            function outer(a: number[]): number {
                var n = 1;
                function inner(k: number): number { return n + k; }
                return inner(2);
            }
        "#,
        );
        let f = &p.funs[0];
        let Body::Let { x, rest, .. } = &f.body else {
            panic!()
        };
        let Body::LetFun { fun, .. } = rest.as_ref() else {
            panic!()
        };
        // inner's body must reference the SSA name of n.
        fn mentions(b: &Body, x: &Sym) -> bool {
            fn in_expr(e: &IrExpr, x: &Sym) -> bool {
                match e {
                    IrExpr::Var(y, _) => y == x,
                    IrExpr::Field(b, _, _) => in_expr(b, x),
                    IrExpr::Index(a, i, _) => in_expr(a, x) || in_expr(i, x),
                    IrExpr::Call(f, args, _) => in_expr(f, x) || args.iter().any(|a| in_expr(a, x)),
                    IrExpr::Binary(_, a, b, _) => in_expr(a, x) || in_expr(b, x),
                    IrExpr::Unary(_, a, _) => in_expr(a, x),
                    _ => false,
                }
            }
            match b {
                Body::Ret(Some(e), _) => in_expr(e, x),
                Body::Let { rhs, rest, .. } => in_expr(rhs, x) || mentions(rest, x),
                _ => false,
            }
        }
        assert!(mentions(&fun.body, x), "inner should use SSA name {x}");
    }

    #[test]
    fn top_level_statements_form_entry() {
        let p = ssa_of("var a = 1; var b = a + 1;");
        assert!(matches!(p.top, Body::Let { .. }));
    }
}
