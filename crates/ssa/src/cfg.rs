//! A control-flow-graph view over the tree-shaped [`Body`] IR, for
//! forward dataflow analyses (`rsc_absint`).
//!
//! The SSA translation produces a recursive body whose `If`/`Loop` nodes
//! carry their continuations; dataflow engines want basic blocks with
//! explicit successor/predecessor edges instead. [`Cfg::build`] lowers a
//! body into blocks that *borrow* the underlying expressions (no IR is
//! cloned), with φ-assignments and branch assumptions attached to the
//! edges that perform them:
//!
//! * a conditional's two out-edges each carry the branch condition with
//!   its polarity (`assume`), so an analysis can refine facts
//!   path-sensitively;
//! * the edge into a join block carries the φ-copies of the arm it
//!   leaves (`copies`); the edges into a loop head carry the loop-φ
//!   init/body copies, and the head is flagged [`Block::loop_head`] so
//!   engines know where to widen.
//!
//! Reverse postorder ([`Cfg::rpo`]) and immediate dominators
//! ([`Cfg::dominators`], Cooper–Harper–Kennedy iteration) are provided
//! as utilities; both are deterministic functions of the body.

use rsc_logic::Sym;
use rsc_syntax::types::AnnTy;
use rsc_syntax::Span;

use crate::ir::{Body, IrExpr, IrFun};

/// Index of a basic block in [`Cfg::blocks`]. Block 0 is the entry.
pub type BlockId = usize;

/// A straight-line statement inside a block.
#[derive(Clone, Copy, Debug)]
pub enum Stmt<'a> {
    /// `let x = rhs` (with the optional source annotation).
    Let {
        /// The bound SSA variable.
        x: &'a Sym,
        /// The source annotation, when present.
        ann: Option<&'a AnnTy>,
        /// The right-hand side.
        rhs: &'a IrExpr,
        /// The binding's source span.
        span: Span,
    },
    /// An expression evaluated for effect.
    Effect {
        /// The effectful expression.
        e: &'a IrExpr,
        /// The statement's source span.
        span: Span,
    },
    /// A nested function definition bound as a value.
    Fun {
        /// The nested function.
        fun: &'a IrFun,
    },
}

/// A directed edge between blocks, carrying the work the control
/// transfer performs: an assumed branch condition and/or φ-copies.
#[derive(Clone, Debug)]
pub struct Edge<'a> {
    /// The target block.
    pub to: BlockId,
    /// A branch condition assumed along this edge (`true` = the
    /// condition holds, `false` = its negation holds).
    pub assume: Option<(&'a IrExpr, bool)>,
    /// φ-assignments `dst ← src` performed along this edge.
    pub copies: Vec<(Sym, Sym)>,
}

/// How a block ends.
#[derive(Clone, Copy, Debug)]
pub enum Terminator<'a> {
    /// `return e` / void return: no successors.
    Ret(Option<&'a IrExpr>, Span),
    /// A two-way branch on `cond`: the block has exactly two out-edges,
    /// the first assuming `cond`, the second assuming `¬cond`.
    Branch(&'a IrExpr, Span),
    /// An unconditional transfer (exactly one out-edge).
    Jump,
}

/// A basic block.
#[derive(Clone, Debug)]
pub struct Block<'a> {
    /// Straight-line statements, in execution order.
    pub stmts: Vec<Stmt<'a>>,
    /// The block terminator.
    pub term: Terminator<'a>,
    /// Out-edges (0 for `Ret`, 1 for `Jump`, 2 for `Branch`).
    pub succs: Vec<Edge<'a>>,
    /// Predecessor block ids (computed after construction).
    pub preds: Vec<BlockId>,
    /// True for loop-head blocks (widening points).
    pub loop_head: bool,
}

impl<'a> Block<'a> {
    fn new() -> Self {
        Block {
            stmts: Vec::new(),
            term: Terminator::Jump,
            succs: Vec::new(),
            preds: Vec::new(),
            loop_head: false,
        }
    }
}

/// The CFG of one function body.
#[derive(Clone, Debug)]
pub struct Cfg<'a> {
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block<'a>>,
}

impl<'a> Cfg<'a> {
    /// Lowers a body into a CFG. Purely structural and deterministic:
    /// blocks are allocated in a fixed traversal order of the tree.
    pub fn build(body: &'a Body) -> Cfg<'a> {
        let mut cfg = Cfg {
            blocks: vec![Block::new()],
        };
        cfg.lower(body, 0, None);
        let edges: Vec<(BlockId, BlockId)> = cfg
            .blocks
            .iter()
            .enumerate()
            .flat_map(|(i, b)| b.succs.iter().map(move |e| (i, e.to)))
            .collect();
        for (from, to) in edges {
            cfg.blocks[to].preds.push(from);
        }
        cfg
    }

    fn fresh(&mut self) -> BlockId {
        self.blocks.push(Block::new());
        self.blocks.len() - 1
    }

    /// Lowers `body` starting in `cur`. `exit` is where an `EndBranch`
    /// transfers to, together with the φ-copies that edge performs (the
    /// enclosing join for conditional arms, the loop head for loop
    /// bodies).
    fn lower(&mut self, body: &'a Body, cur: BlockId, exit: Option<(BlockId, &[(Sym, Sym)])>) {
        match body {
            Body::Ret(e, span) => {
                self.blocks[cur].term = Terminator::Ret(e.as_ref(), *span);
            }
            Body::EndBranch(_) => {
                let (to, copies) = exit.expect("EndBranch outside a branch arm");
                self.blocks[cur].term = Terminator::Jump;
                self.blocks[cur].succs.push(Edge {
                    to,
                    assume: None,
                    copies: copies.to_vec(),
                });
            }
            Body::Let {
                x,
                ann,
                rhs,
                rest,
                span,
            } => {
                self.blocks[cur].stmts.push(Stmt::Let {
                    x,
                    ann: ann.as_ref(),
                    rhs,
                    span: *span,
                });
                self.lower(rest, cur, exit);
            }
            Body::Effect { e, rest, span } => {
                self.blocks[cur].stmts.push(Stmt::Effect { e, span: *span });
                self.lower(rest, cur, exit);
            }
            Body::LetFun { fun, rest, .. } => {
                self.blocks[cur].stmts.push(Stmt::Fun { fun });
                self.lower(rest, cur, exit);
            }
            Body::If {
                cond,
                phis,
                then_br,
                else_br,
                then_falls,
                else_falls,
                rest,
                span,
            } => {
                let then_entry = self.fresh();
                let else_entry = self.fresh();
                let join = self.fresh();
                self.blocks[cur].term = Terminator::Branch(cond, *span);
                self.blocks[cur].succs.push(Edge {
                    to: then_entry,
                    assume: Some((cond, true)),
                    copies: Vec::new(),
                });
                self.blocks[cur].succs.push(Edge {
                    to: else_entry,
                    assume: Some((cond, false)),
                    copies: Vec::new(),
                });
                let then_copies: Vec<(Sym, Sym)> = phis
                    .iter()
                    .filter_map(|p| p.then_src.clone().map(|s| (p.new.clone(), s)))
                    .collect();
                let else_copies: Vec<(Sym, Sym)> = phis
                    .iter()
                    .filter_map(|p| p.else_src.clone().map(|s| (p.new.clone(), s)))
                    .collect();
                // An arm that does not fall through never reaches its
                // `EndBranch`; its returns terminate inside the arm.
                let _ = (then_falls, else_falls);
                self.lower(then_br, then_entry, Some((join, &then_copies)));
                self.lower(else_br, else_entry, Some((join, &else_copies)));
                self.lower(rest, join, exit);
            }
            Body::Loop {
                phis,
                cond,
                body,
                rest,
                span,
            } => {
                let head = self.fresh();
                let body_entry = self.fresh();
                let rest_entry = self.fresh();
                self.blocks[head].loop_head = true;
                let init_copies: Vec<(Sym, Sym)> = phis
                    .iter()
                    .map(|p| (p.new.clone(), p.init_src.clone()))
                    .collect();
                self.blocks[cur].term = Terminator::Jump;
                self.blocks[cur].succs.push(Edge {
                    to: head,
                    assume: None,
                    copies: init_copies,
                });
                self.blocks[head].term = Terminator::Branch(cond, *span);
                self.blocks[head].succs.push(Edge {
                    to: body_entry,
                    assume: Some((cond, true)),
                    copies: Vec::new(),
                });
                self.blocks[head].succs.push(Edge {
                    to: rest_entry,
                    assume: Some((cond, false)),
                    copies: Vec::new(),
                });
                let body_copies: Vec<(Sym, Sym)> = phis
                    .iter()
                    .filter_map(|p| p.body_src.clone().map(|s| (p.new.clone(), s)))
                    .collect();
                self.lower(body, body_entry, Some((head, &body_copies)));
                self.lower(rest, rest_entry, exit);
            }
        }
    }

    /// Reverse postorder over the successor graph from the entry block.
    /// Unreachable blocks (joins of two returning arms) are omitted.
    pub fn rpo(&self) -> Vec<BlockId> {
        let mut seen = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit "children pushed" marker so the
        // postorder matches the recursive formulation exactly.
        let mut stack: Vec<(BlockId, bool)> = vec![(0, false)];
        while let Some((b, expanded)) = stack.pop() {
            if expanded {
                post.push(b);
                continue;
            }
            if seen[b] {
                continue;
            }
            seen[b] = true;
            stack.push((b, true));
            for e in self.blocks[b].succs.iter().rev() {
                if !seen[e.to] {
                    stack.push((e.to, false));
                }
            }
        }
        post.reverse();
        post
    }

    /// Immediate dominators, one entry per block (`idom[0] == 0`;
    /// unreachable blocks map to themselves). Cooper–Harvey–Kennedy
    /// iteration over reverse postorder.
    pub fn dominators(&self) -> Vec<BlockId> {
        let rpo = self.rpo();
        let mut order = vec![usize::MAX; self.blocks.len()];
        for (i, &b) in rpo.iter().enumerate() {
            order[b] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; self.blocks.len()];
        idom[0] = Some(0);
        let intersect =
            |idom: &[Option<BlockId>], order: &[usize], mut a: BlockId, mut b: BlockId| {
                while a != b {
                    while order[a] > order[b] {
                        a = idom[a].expect("processed");
                    }
                    while order[b] > order[a] {
                        b = idom[b].expect("processed");
                    }
                }
                a
            };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &self.blocks[b].preds {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &order, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b] != Some(ni) {
                        idom[b] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        idom.iter()
            .enumerate()
            .map(|(b, d)| d.unwrap_or(b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_of(src: &str) -> (crate::ir::IrProgram, ()) {
        let prog = rsc_syntax::parse_program(src).unwrap();
        (crate::transform_program(&prog).unwrap(), ())
    }

    #[test]
    fn straight_line_is_one_block() {
        let (ir, _) = cfg_of("function f(): number { var x = 1; var y = x + 1; return y; }");
        let cfg = Cfg::build(&ir.funs[0].body);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].stmts.len(), 2);
        assert!(matches!(cfg.blocks[0].term, Terminator::Ret(..)));
    }

    #[test]
    fn ite_makes_diamond_with_phi_copies() {
        let (ir, _) = cfg_of(
            "function f(c: boolean): number {
                 var x = 0;
                 if (c) { x = 1; } else { x = 2; }
                 return x;
             }",
        );
        let cfg = Cfg::build(&ir.funs[0].body);
        // entry, then, else, join.
        assert_eq!(cfg.blocks.len(), 4);
        assert!(matches!(cfg.blocks[0].term, Terminator::Branch(..)));
        assert_eq!(cfg.blocks[0].succs.len(), 2);
        assert_eq!(
            cfg.blocks[0].succs[0].assume.map(|(_, pol)| pol),
            Some(true)
        );
        assert_eq!(
            cfg.blocks[0].succs[1].assume.map(|(_, pol)| pol),
            Some(false)
        );
        let join = cfg.blocks[0].succs[0].to;
        let join = cfg.blocks[join].succs[0].to;
        assert_eq!(cfg.blocks[join].preds.len(), 2);
        // Each arm's out-edge carries exactly one φ-copy for x.
        for &p in &cfg.blocks[join].preds {
            let e = &cfg.blocks[p].succs[0];
            assert_eq!(e.copies.len(), 1, "arm edge must copy the φ source");
        }
    }

    #[test]
    fn loop_head_is_flagged_and_has_back_edge() {
        let (ir, _) = cfg_of(
            "function f(): number {
                 var i = 0;
                 while (i < 10) { i = i + 1; }
                 return i;
             }",
        );
        let cfg = Cfg::build(&ir.funs[0].body);
        let head = (0..cfg.blocks.len())
            .find(|&b| cfg.blocks[b].loop_head)
            .expect("a loop head");
        // Entry edge + back edge.
        assert_eq!(cfg.blocks[head].preds.len(), 2);
        assert!(matches!(cfg.blocks[head].term, Terminator::Branch(..)));
        // The loop head dominates the body and the exit.
        let idom = cfg.dominators();
        for e in &cfg.blocks[head].succs {
            assert_eq!(idom[e.to], head);
        }
    }

    #[test]
    fn rpo_visits_reachable_blocks_once() {
        let (ir, _) = cfg_of(
            "function f(c: boolean): number {
                 if (c) { return 1; } else { return 2; }
             }",
        );
        let cfg = Cfg::build(&ir.funs[0].body);
        let rpo = cfg.rpo();
        let mut sorted = rpo.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), rpo.len(), "no duplicates");
        assert_eq!(rpo[0], 0, "entry first");
        // The join of two returning arms is unreachable and omitted.
        assert!(rpo.len() < cfg.blocks.len());
    }
}
