//! IRSC — the functional intermediate language of §3.1.2, extended with a
//! loop binding form (§2.2.2: loops are handled by Φ-variables at the loop
//! head whose types are inferred as loop invariants).
//!
//! Unlike the paper's hole-based SSA contexts `u⟨·⟩`, bodies here are a
//! recursive datatype whose `Let`/`If`/`Loop` nodes carry their
//! continuation explicitly; the two presentations are isomorphic.

use rsc_logic::Sym;
use rsc_syntax::ast::{BinOpE, UnOp};
use rsc_syntax::types::AnnTy;
use rsc_syntax::Span;

/// An IRSC expression (pure except for calls, `new`, and the assignment
/// forms, which the checker types effectfully).
#[derive(Clone, Debug)]
pub enum IrExpr {
    /// SSA variable.
    Var(Sym, Span),
    /// Integer literal.
    Num(i64, Span),
    /// Bit-vector literal.
    Bv(u32, Span),
    /// String literal.
    Str(String, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// `null`.
    Null(Span),
    /// `undefined`.
    Undefined(Span),
    /// `this`.
    This(Span),
    /// Field access `e.f`.
    Field(Box<IrExpr>, Sym, Span),
    /// Array read `e[i]`, i.e. `get(e, i)` (§2.1.1).
    Index(Box<IrExpr>, Box<IrExpr>, Span),
    /// Function or method call.
    Call(Box<IrExpr>, Vec<IrExpr>, Span),
    /// Object construction.
    New(Sym, Vec<AnnTy>, Vec<IrExpr>, Span),
    /// Static cast `e as T`.
    Cast(AnnTy, Box<IrExpr>, Span),
    /// Unary operation.
    Unary(UnOp, Box<IrExpr>, Span),
    /// Binary operation.
    Binary(BinOpE, Box<IrExpr>, Box<IrExpr>, Span),
    /// Array literal.
    ArrayLit(Vec<IrExpr>, Span),
    /// Field update `e.f ← e'`.
    FieldAssign(Box<IrExpr>, Sym, Box<IrExpr>, Span),
    /// Array write `set(a, i, e)` (§2.1.1).
    IndexAssign(Box<IrExpr>, Box<IrExpr>, Box<IrExpr>, Span),
}

impl IrExpr {
    /// The source span.
    pub fn span(&self) -> Span {
        match self {
            IrExpr::Var(_, s)
            | IrExpr::Num(_, s)
            | IrExpr::Bv(_, s)
            | IrExpr::Str(_, s)
            | IrExpr::Bool(_, s)
            | IrExpr::Null(s)
            | IrExpr::Undefined(s)
            | IrExpr::This(s)
            | IrExpr::Field(_, _, s)
            | IrExpr::Index(_, _, s)
            | IrExpr::Call(_, _, s)
            | IrExpr::New(_, _, _, s)
            | IrExpr::Cast(_, _, s)
            | IrExpr::Unary(_, _, s)
            | IrExpr::Binary(_, _, _, s)
            | IrExpr::ArrayLit(_, s)
            | IrExpr::FieldAssign(_, _, _, s)
            | IrExpr::IndexAssign(_, _, _, s) => *s,
        }
    }
}

/// A conditional Φ-variable: `new = φ(then_src, else_src)`.
///
/// A source is `None` when the corresponding branch does not fall through
/// (it returns), in which case the φ degenerates.
#[derive(Clone, Debug)]
pub struct Phi {
    /// The fresh joined variable.
    pub new: Sym,
    /// Value at the end of the then branch.
    pub then_src: Option<Sym>,
    /// Value at the end of the else branch.
    pub else_src: Option<Sym>,
    /// The source-level variable this φ joins (diagnostics).
    pub source: Sym,
}

/// A loop Φ-variable: `new = φ(init_src, body_src)`.
#[derive(Clone, Debug)]
pub struct LoopPhi {
    /// The fresh loop-head variable.
    pub new: Sym,
    /// Value on loop entry.
    pub init_src: Sym,
    /// Value at the end of the loop body (`None` if the body never falls
    /// through, i.e. always returns).
    pub body_src: Option<Sym>,
    /// The source-level variable (diagnostics).
    pub source: Sym,
}

/// An SSA-translated function body: a tree of bindings ending in returns.
#[derive(Clone, Debug)]
pub enum Body {
    /// `return e` (or a void return / implicit function end).
    Ret(Option<IrExpr>, Span),
    /// End of a branch arm that falls through to the enclosing join.
    EndBranch(Span),
    /// `let x = e in rest` (with optional source annotation).
    Let {
        /// Bound SSA variable.
        x: Sym,
        /// Optional source type annotation.
        ann: Option<AnnTy>,
        /// Right-hand side.
        rhs: IrExpr,
        /// Continuation.
        rest: Box<Body>,
        /// Source span of the binding.
        span: Span,
    },
    /// `let _ = e in rest` — evaluation for effect.
    Effect {
        /// The effectful expression.
        e: IrExpr,
        /// Continuation.
        rest: Box<Body>,
        /// Source span.
        span: Span,
    },
    /// `letif [x̄′, x̄₁, x̄₂] (cond) ? u₁ : u₂ in rest` (§3.1.2).
    If {
        /// The branch condition.
        cond: IrExpr,
        /// Φ-variables joining the two branches.
        phis: Vec<Phi>,
        /// Then arm.
        then_br: Box<Body>,
        /// Else arm.
        else_br: Box<Body>,
        /// Whether each arm falls through to the continuation.
        then_falls: bool,
        /// Whether the else arm falls through.
        else_falls: bool,
        /// Continuation after the join.
        rest: Box<Body>,
        /// Source span.
        span: Span,
    },
    /// `letloop [x̄] (cond) { body } in rest` — the loop extension.
    Loop {
        /// Loop-head Φ-variables.
        phis: Vec<LoopPhi>,
        /// Condition, evaluated with Φ-variables in scope.
        cond: IrExpr,
        /// Loop body.
        body: Box<Body>,
        /// Continuation (Φ-variables in scope, condition false).
        rest: Box<Body>,
        /// Source span.
        span: Span,
    },
    /// A nested function definition bound as a value.
    LetFun {
        /// The translated function.
        fun: Box<IrFun>,
        /// Continuation.
        rest: Box<Body>,
        /// Source span.
        span: Span,
    },
}

/// A function after SSA translation.
#[derive(Clone, Debug)]
pub struct IrFun {
    /// Function name.
    pub name: Sym,
    /// Declared signatures (≥ 2 means overloaded, checked by two-phase
    /// typing).
    pub sigs: Vec<rsc_syntax::FunTy>,
    /// Parameter names in order.
    pub params: Vec<Sym>,
    /// The SSA body.
    pub body: Body,
    /// Source span.
    pub span: Span,
}

/// A method after SSA translation.
#[derive(Clone, Debug)]
pub struct IrMethod {
    /// Method name.
    pub name: Sym,
    /// Receiver mutability requirement.
    pub recv: rsc_syntax::Mutability,
    /// Signature.
    pub sig: rsc_syntax::FunTy,
    /// Body (`None` for interface signatures).
    pub body: Option<Body>,
    /// Source span.
    pub span: Span,
}

/// A constructor after SSA translation.
#[derive(Clone, Debug)]
pub struct IrCtor {
    /// Parameters.
    pub params: Vec<(Sym, AnnTy)>,
    /// Body.
    pub body: Body,
    /// Source span.
    pub span: Span,
}

/// A class with SSA-translated member bodies.
#[derive(Clone, Debug)]
pub struct IrClass {
    /// The underlying declaration (fields, invariant, etc.).
    pub decl: rsc_syntax::ast::ClassDecl,
    /// Translated constructor.
    pub ctor: Option<IrCtor>,
    /// Translated methods.
    pub methods: Vec<IrMethod>,
}

/// A whole program after SSA translation.
#[derive(Clone, Debug, Default)]
pub struct IrProgram {
    /// Type aliases (untranslated — no statements inside).
    pub aliases: Vec<rsc_syntax::ast::TypeAlias>,
    /// User qualifiers.
    pub quals: Vec<rsc_syntax::ast::QualifDecl>,
    /// Enums.
    pub enums: Vec<rsc_syntax::ast::EnumDecl>,
    /// Interfaces.
    pub interfaces: Vec<rsc_syntax::ast::InterfaceDecl>,
    /// Ambient declarations.
    pub declares: Vec<rsc_syntax::ast::DeclareDecl>,
    /// Classes.
    pub classes: Vec<IrClass>,
    /// Top-level functions.
    pub funs: Vec<IrFun>,
    /// Top-level statements, gathered into a synthetic entry body.
    pub top: Body,
    /// Names the source marked `export`, in declaration order. Purely
    /// metadata for the workspace layer (cross-file dependency
    /// tracking); the checker itself never consults it.
    pub exports: Vec<Sym>,
}

impl Default for Body {
    fn default() -> Self {
        Body::Ret(None, Span::dummy())
    }
}
