//! # rsc-liquid
//!
//! Liquid type inference (Rondon–Kawaguchi–Jhala) as used by RSC
//! (§2.2.1–§2.2.2 of *Refinement Types for TypeScript*, PLDI 2016):
//!
//! 1. the checker creates **templates** — refinements containing
//!    κ-variables — for polymorphic instantiations and Φ-variables,
//! 2. typing produces **subtyping constraints** over the templates,
//! 3. this crate solves them by **predicate abstraction**: each κ starts
//!    as the conjunction of all well-sorted qualifier instantiations and
//!    is iteratively weakened until all κ-headed constraints are valid,
//! 4. remaining concrete constraints are checked under the solution; any
//!    failure is a type error.
//!
//! # Example: inferring the loop invariant of `reduce`
//!
//! See `tests/loop_invariant.rs`, which reproduces the fixpoint run of
//! §2.2.2 ending in `κ_i2 ↦ 0 ≤ ν ∧ ν ≤ len(a)`.

#![warn(missing_docs)]

mod blame;
mod bundle;
mod constraint;
mod fingerprint;
mod solve;

pub use blame::{Blame, ObligationKind};
pub use bundle::{partition, ConstraintBundle};
pub use constraint::{CEnv, ConstraintSet, SubC};
pub use fingerprint::{bundle_fingerprint, global_fingerprint};
pub use solve::{filter_relevant, solve, solve_with, LiquidResult, Solution, SolveOptions};
