//! The predicate-abstraction fixpoint (Step 3 of §2.2.1): initialize each
//! κ to all well-sorted qualifier instantiations, iteratively weaken until
//! every κ-headed constraint is valid, then check concrete constraints.

use std::collections::HashMap;

use rsc_logic::{KVarId, Pred, Sort, SortScope, Sym, Term};
use rsc_smt::Solver;

use crate::blame::Blame;
use crate::constraint::{ConstraintSet, SubC};

/// A solution: each κ maps to the conjunction of surviving qualifier
/// instances.
#[derive(Clone, Debug, Default)]
pub struct Solution {
    assignment: HashMap<KVarId, Vec<Pred>>,
}

impl Solution {
    /// The predicates assigned to κ (empty slice = `true`).
    pub fn of(&self, k: KVarId) -> &[Pred] {
        self.assignment.get(&k).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Substitutes the solution into a predicate: every `κ[θ]` becomes
    /// `θ(⋀ A(κ))`.
    pub fn apply(&self, p: &Pred) -> Pred {
        match p {
            Pred::KVar(k, theta) => {
                let body = Pred::and(self.of(*k).to_vec());
                theta.apply_pred(&body)
            }
            Pred::And(ps) => Pred::and(ps.iter().map(|q| self.apply(q)).collect()),
            Pred::Or(ps) => Pred::or(ps.iter().map(|q| self.apply(q)).collect()),
            Pred::Not(q) => Pred::not(self.apply(q)),
            Pred::Imp(a, b) => Pred::imp(self.apply(a), self.apply(b)),
            Pred::Iff(a, b) => Pred::iff(self.apply(a), self.apply(b)),
            other => other.clone(),
        }
    }
}

/// The outcome of constraint solving.
#[derive(Debug)]
pub struct LiquidResult {
    /// The inferred κ assignment.
    pub solution: Solution,
    /// Concrete constraints that failed under the solution (type errors):
    /// indices into `ConstraintSet::subs` plus the structured blame.
    pub failures: Vec<(usize, Blame)>,
    /// Number of SMT validity queries issued.
    pub smt_queries: u64,
}

/// Solves the constraint set.
pub fn solve(cs: &ConstraintSet, smt: &mut Solver) -> LiquidResult {
    // --- Initial assignment -------------------------------------------------
    let mut sol = Solution::default();
    for (id, kv) in &cs.kvars {
        let mut cands: Vec<Pred> = Vec::new();
        // Well-sortedness scope: `v` then the κ's scope, layered over
        // the shared sort environment without cloning it (and built
        // once per κ, not per qualifier).
        let mut binders: Vec<(Sym, Sort)> = Vec::with_capacity(kv.scope.len() + 1);
        binders.push((Sym::from("v"), kv.vv_sort));
        binders.extend(kv.scope.iter().cloned());
        let env = SortScope::new(&*cs.sort_env, &binders);
        for q in cs.quals.iter() {
            if q.vv_sort != kv.vv_sort {
                continue;
            }
            for inst in q.instantiate(&kv.scope) {
                // Keep only well-sorted instantiations.
                if env.check_pred(&inst).is_ok() && !cands.contains(&inst) {
                    cands.push(inst);
                }
            }
        }
        sol.assignment.insert(*id, cands);
    }

    let mut queries = 0u64;

    // --- Fixpoint: weaken κ-headed constraints ------------------------------
    let kvar_headed: Vec<usize> = cs
        .subs
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c.rhs, Pred::KVar(..)))
        .map(|(i, _)| i)
        .collect();
    let mut iteration = 0u64;
    loop {
        let _sp = rsc_obs::span!("fixpoint-iter", unit = iteration);
        iteration += 1;
        let mut changed = false;
        for &ci in &kvar_headed {
            let c = &cs.subs[ci];
            let Pred::KVar(k, theta) = &c.rhs else {
                unreachable!()
            };
            let current = sol.of(*k).to_vec();
            if current.is_empty() {
                continue;
            }
            let (binders, all_hyps, guards) = prepare_hyps(cs, c, &sol);
            let env_sorts = SortScope::new(&*cs.sort_env, &binders);
            let mut kept = Vec::with_capacity(current.len());
            for q in current {
                let goal = theta.apply_pred(&q);
                let mut seeds = goal.free_vars();
                seeds.insert(rsc_logic::Sym::from("v"));
                seeds.extend(sol.apply(&c.lhs).free_vars());
                for g in &guards {
                    seeds.extend(g.free_vars());
                }
                let mut hyps = filter_relevant(all_hyps.clone(), seeds);
                hyps.extend(guards.iter().cloned());
                queries += 1;
                if smt.is_valid(&env_sorts, &hyps, &goal) {
                    kept.push(q);
                } else {
                    if std::env::var("RSC_DEBUG").is_ok() {
                        eprintln!(
                            "[liquid] drop {q} from {k} at `{}`; hyps={:?}",
                            c.blame.message(),
                            hyps.iter().map(|h| h.to_string()).collect::<Vec<_>>()
                        );
                    }
                    changed = true;
                }
            }
            sol.assignment.insert(*k, kept);
        }
        if !changed {
            break;
        }
    }

    // --- Validate concrete constraints --------------------------------------
    let mut failures = Vec::new();
    for (i, c) in cs.subs.iter().enumerate() {
        if matches!(c.rhs, Pred::KVar(..)) {
            continue;
        }
        let (binders, all_hyps, guards) = prepare_hyps(cs, c, &sol);
        let env_sorts = SortScope::new(&*cs.sort_env, &binders);
        let goal = sol.apply(&c.rhs);
        // Dead-code obligations (`… ⊑ false`) need the whole environment
        // to exhibit the inconsistency; everything else is filtered.
        let mut hyps = if matches!(goal, Pred::False) {
            all_hyps
        } else {
            let mut seeds = goal.free_vars();
            seeds.insert(rsc_logic::Sym::from("v"));
            seeds.extend(sol.apply(&c.lhs).free_vars());
            for g in &guards {
                seeds.extend(g.free_vars());
            }
            filter_relevant(all_hyps, seeds)
        };
        hyps.extend(guards.iter().cloned());
        queries += 1;
        if !smt.is_valid(&env_sorts, &hyps, &goal) {
            failures.push((i, c.blame_with_renderings()));
        }
    }

    LiquidResult {
        solution: sol,
        failures,
        smt_queries: queries,
    }
}

/// Keeps only hypotheses transitively sharing variables with the seeds
/// (goal + left-hand side). Dropping hypotheses is conservative, and the
/// filter tames the model-enumeration cost of disjunction-heavy union
/// embeddings.
pub fn filter_relevant(
    hyps: Vec<Pred>,
    seeds: std::collections::BTreeSet<rsc_logic::Sym>,
) -> Vec<Pred> {
    let fvs: Vec<std::collections::BTreeSet<rsc_logic::Sym>> =
        hyps.iter().map(|h| h.free_vars()).collect();
    let mut relevant = seeds;
    let mut keep = vec![false; hyps.len()];
    for _ in 0..3 {
        let mut changed = false;
        for (i, fv) in fvs.iter().enumerate() {
            if keep[i] {
                continue;
            }
            if fv.is_empty() || fv.iter().any(|x| relevant.contains(x)) {
                keep[i] = true;
                relevant.extend(fv.iter().cloned());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    hyps.into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(h, _)| h)
        .collect()
}

/// Builds the binder overlay and hypothesis list for one constraint:
/// ⟦Γ⟧ under the current solution, plus the (solved) left refinement.
/// The binders (constraint scope plus `v`) are layered over the shared
/// sort environment by the caller via [`SortScope`] — the shared
/// environment itself is never cloned per constraint.
fn prepare_hyps(
    cs: &ConstraintSet,
    c: &SubC,
    sol: &Solution,
) -> (Vec<(Sym, Sort)>, Vec<Pred>, Vec<Pred>) {
    let mut binders = c.env.scope();
    binders.push((Sym::from("v"), c.vv_sort));
    let env_sorts = SortScope::new(&*cs.sort_env, &binders);
    let (bind_preds, guard_preds) = c.env.embed_split();
    let mut guards: Vec<Pred> = Vec::new();
    for g in guard_preds {
        guards.extend(sol.apply(&g).conjuncts());
    }
    guards.retain(|p| env_sorts.check_pred(p).is_ok());
    let mut hyps: Vec<Pred> = bind_preds.iter().map(|p| sol.apply(p)).collect();
    hyps.push(sol.apply(&c.lhs));
    // The `len` measure is a natural number: 0 ≤ len(x) for every
    // reference in scope (and for ν itself when it is a reference).
    for (x, s) in c.env.scope() {
        if s == Sort::Ref {
            hyps.push(Pred::cmp(
                rsc_logic::CmpOp::Le,
                Term::int(0),
                Term::len_of(Term::var(x)),
            ));
        }
    }
    if c.vv_sort == Sort::Ref {
        hyps.push(Pred::cmp(
            rsc_logic::CmpOp::Le,
            Term::int(0),
            Term::len_of(Term::vv()),
        ));
    }
    // Split into conjuncts, then drop ill-sorted ones (conservative:
    // fewer hypotheses make validity harder, never easier). Splitting
    // first keeps the well-sorted parts of mixed conjunctions — e.g. the
    // `ttag(v) = "number"` next to a cross-sort `v = x` selfification.
    let mut flat: Vec<Pred> = Vec::new();
    for h in hyps {
        flat.extend(h.conjuncts());
    }
    flat.retain(|p| env_sorts.check_pred(p).is_ok());
    (binders, flat, guards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blame::ObligationKind;
    use crate::constraint::CEnv;
    use rsc_logic::{CmpOp, Subst, Term};

    /// The κ for a simple counter `i = 0; while (i < 10) i = i + 1`.
    #[test]
    fn counter_invariant() {
        let mut cs = ConstraintSet::new();
        let k = cs.fresh_kvar(Sort::Int, vec![], "phi i");
        let kapp = Pred::KVar(k, Subst::new());

        // init: ⊢ {v = 0} ⊑ κ
        cs.push_sub(
            CEnv::new(),
            Pred::vv_eq(Term::int(0)),
            kapp.clone(),
            Sort::Int,
            &Blame::synthetic("init"),
        );
        // step: i:κ, i < 10 ⊢ {v = i + 1} ⊑ κ
        let mut env = CEnv::new();
        env.bind("i", Sort::Int, kapp.clone());
        env.guard(Pred::cmp(CmpOp::Lt, Term::var("i"), Term::int(10)));
        cs.push_sub(
            env.clone(),
            Pred::vv_eq(Term::add(Term::var("i"), Term::int(1))),
            kapp.clone(),
            Sort::Int,
            &Blame::synthetic("step"),
        );
        // use: i:κ, ¬(i < 10) ⊢ {v = i} ⊑ {v = 10}  (exact exit value needs
        // more than the prelude, so check a weaker concrete bound: 0 ≤ v).
        let mut env2 = CEnv::new();
        env2.bind("i", Sort::Int, kapp);
        env2.guard(Pred::cmp(CmpOp::Ge, Term::var("i"), Term::int(10)));
        cs.push_sub(
            env2,
            Pred::vv_eq(Term::var("i")),
            Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
            Sort::Int,
            &Blame::synthetic("use"),
        );

        let mut smt = Solver::new();
        let r = solve(&cs, &mut smt);
        assert!(r.failures.is_empty(), "failures: {:?}", r.failures);
        let shown: Vec<String> = r.solution.of(k).iter().map(|p| p.to_string()).collect();
        assert!(
            shown.contains(&"0 <= v".to_string()),
            "κ should keep Nat, got {shown:?}"
        );
    }

    /// An unsatisfiable concrete constraint is reported as a failure.
    #[test]
    fn concrete_failure_detected() {
        let mut cs = ConstraintSet::new();
        cs.push_sub(
            CEnv::new(),
            Pred::vv_eq(Term::int(5)),
            Pred::cmp(CmpOp::Lt, Term::vv(), Term::int(3)),
            Sort::Int,
            &Blame::synthetic("bad bound"),
        );
        let mut smt = Solver::new();
        let r = solve(&cs, &mut smt);
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].1.detail, "bad bound");
        assert_eq!(r.failures[0].1.kind, ObligationKind::Other);
        assert_eq!(r.failures[0].1.expected, "v < 3");
        assert_eq!(r.failures[0].1.actual, "v = 5");
    }
}
