//! The predicate-abstraction fixpoint (Step 3 of §2.2.1): initialize each
//! κ to all well-sorted qualifier instantiations, iteratively weaken until
//! every κ-headed constraint is valid, then check concrete constraints.
//!
//! Two cold-path optimizations keep the solver off the critical path
//! without changing any verdict or diagnostic:
//!
//! * **Constraint memoization.** The round-robin weakening loop re-checks
//!   every κ-headed constraint each iteration, but a re-check can only
//!   change the outcome if some κ it *depends on* (a κ in its environment,
//!   left-hand side, guards — or its own head, the candidate source) was
//!   weakened since its last check. Each κ carries a version counter,
//!   bumped on every weakening; a constraint whose dependency versions
//!   match its last-checked snapshot is skipped. The skipped re-check
//!   would have issued exactly the queries of the previous check (the
//!   solver is deterministic), kept every candidate, and left `changed`
//!   untouched, so the iteration trajectory — and with it every
//!   diagnostic — is byte-identical; only the redundant SMT queries
//!   disappear.
//! * **Incremental SMT.** Each κ-headed constraint keeps one persistent
//!   [`IncrContext`]: its hypotheses and candidate goals are encoded once
//!   under activation literals, and each weakening iteration re-solves
//!   the delta under assumptions instead of re-encoding the whole query
//!   (see `rsc_smt::incr`). Disable with
//!   [`SolveOptions::incremental`] = `false` (CLI: `--no-incremental-smt`).

use std::collections::{BTreeSet, HashMap, HashSet};

use rsc_logic::{KVarId, Pred, Sort, SortScope, Sym, Term};
use rsc_smt::{IncrContext, Solver};

use crate::blame::Blame;
use crate::constraint::{ConstraintSet, SubC};

/// A solution: each κ maps to the conjunction of surviving qualifier
/// instances.
#[derive(Clone, Debug, Default)]
pub struct Solution {
    assignment: HashMap<KVarId, Vec<Pred>>,
}

impl Solution {
    /// The predicates assigned to κ (empty slice = `true`).
    pub fn of(&self, k: KVarId) -> &[Pred] {
        self.assignment.get(&k).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Substitutes the solution into a predicate: every `κ[θ]` becomes
    /// `θ(⋀ A(κ))`.
    pub fn apply(&self, p: &Pred) -> Pred {
        match p {
            Pred::KVar(k, theta) => {
                let body = Pred::and(self.of(*k).to_vec());
                theta.apply_pred(&body)
            }
            Pred::And(ps) => Pred::and(ps.iter().map(|q| self.apply(q)).collect()),
            Pred::Or(ps) => Pred::or(ps.iter().map(|q| self.apply(q)).collect()),
            Pred::Not(q) => Pred::not(self.apply(q)),
            Pred::Imp(a, b) => Pred::imp(self.apply(a), self.apply(b)),
            Pred::Iff(a, b) => Pred::iff(self.apply(a), self.apply(b)),
            other => other.clone(),
        }
    }
}

/// The outcome of constraint solving.
#[derive(Debug)]
pub struct LiquidResult {
    /// The inferred κ assignment.
    pub solution: Solution,
    /// Concrete constraints that failed under the solution (type errors):
    /// indices into `ConstraintSet::subs` plus the structured blame.
    pub failures: Vec<(usize, Blame)>,
    /// Number of SMT validity queries issued.
    pub smt_queries: u64,
    /// Obligations discharged by the abstract-interpretation pre-pass
    /// without an SMT query (candidate checks and concrete obligations).
    pub discharged: u64,
}

/// Tuning knobs for [`solve_with`]. Copy-cheap so callers can thread it
/// through per-bundle solver setup.
#[derive(Clone, Copy, Debug)]
pub struct SolveOptions {
    /// Use a persistent incremental SMT context per κ-headed constraint
    /// (default). When `false`, every validity query runs on a fresh
    /// encoder — the reference path the differential tests compare
    /// against.
    pub incremental: bool,
    /// Try the abstract-interpretation pre-pass before each SMT query
    /// (default). The pre-pass may only *discharge* obligations (skip
    /// queries whose goal its abstract state entails), never report
    /// errors; because the entailment procedure is confined to the
    /// solver's provable fragment, every discharge is re-derivable by
    /// the solver from the same hypotheses, so the fixpoint trajectory,
    /// the solution and every diagnostic are byte-identical with the
    /// pre-pass on or off. Disable with `--no-absint`.
    pub absint: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            incremental: true,
            absint: true,
        }
    }
}

/// Solves the constraint set with default options.
pub fn solve(cs: &ConstraintSet, smt: &mut Solver) -> LiquidResult {
    solve_with(cs, smt, SolveOptions::default())
}

/// Every κ a constraint's verdict depends on: κs in the environment
/// bindings, guards and left-hand side (they shape the hypotheses) plus
/// the head κ itself (the candidate source).
fn constraint_deps(c: &SubC) -> Vec<KVarId> {
    let mut ks: BTreeSet<KVarId> = BTreeSet::new();
    if let Pred::KVar(k, _) = &c.rhs {
        ks.insert(*k);
    }
    let (bind_preds, guard_preds) = c.env.embed_split();
    for p in bind_preds.iter().chain(guard_preds.iter()).chain([&c.lhs]) {
        for (k, _) in p.kvars() {
            ks.insert(k);
        }
    }
    ks.into_iter().collect()
}

/// True when one well-sortedness check of the qualifier *template*
/// decides every instantiation: the body mentions nothing beyond `v` and
/// the parameters (mined qualifiers may reference scope variables
/// directly), and no scope name shadows `v` or a `★`-style placeholder
/// (which would make the template environment diverge from the
/// instantiation environment).
fn prefilter_applies(
    body_fvs: &BTreeSet<Sym>,
    params: &[(Sym, Sort)],
    scope: &[(Sym, Sort)],
) -> bool {
    body_fvs
        .iter()
        .all(|x| x.as_str() == "v" || params.iter().any(|(p, _)| p == x))
        && scope
            .iter()
            .all(|(x, _)| x.as_str() != "v" && !x.as_str().starts_with('★'))
}

/// Solves the constraint set.
pub fn solve_with(cs: &ConstraintSet, smt: &mut Solver, opts: SolveOptions) -> LiquidResult {
    // --- Initial assignment -------------------------------------------------
    let mut sol = Solution::default();
    for (id, kv) in &cs.kvars {
        let mut cands: Vec<Pred> = Vec::new();
        // Hashed dedup: distinct qualifiers instantiate to overlapping
        // predicates (e.g. `v < ★p` and `v < len(★a)` over rich scopes),
        // and `Vec::contains` made initialization quadratic in the
        // candidate count.
        let mut seen: HashSet<Pred> = HashSet::new();
        // Well-sortedness scope: `v` then the κ's scope, layered over
        // the shared sort environment without cloning it (and built
        // once per κ, not per qualifier).
        let mut binders: Vec<(Sym, Sort)> = Vec::with_capacity(kv.scope.len() + 1);
        binders.push((Sym::from("v"), kv.vv_sort));
        binders.extend(kv.scope.iter().cloned());
        let env = SortScope::new(&*cs.sort_env, &binders);
        for q in cs.quals.iter() {
            if q.vv_sort != kv.vv_sort {
                continue;
            }
            // A parameter sort with no scope variable admits no
            // instantiations at all — skip before enumerating.
            if q.params
                .iter()
                .any(|(_, s)| !kv.scope.iter().any(|(_, t)| t == s))
            {
                continue;
            }
            // Sort-check the *template* once instead of every
            // instantiation: substituting same-sorted scope variables for
            // the parameters cannot change the sorting verdict, so when
            // the pre-filter applies, one check decides them all (in
            // either direction). Qualifiers outside the pre-filter's
            // conditions fall back to the per-instantiation check.
            let template_ok = if prefilter_applies(&q.body.free_vars(), &q.params, &kv.scope) {
                let mut tb: Vec<(Sym, Sort)> = Vec::with_capacity(q.params.len() + 1);
                tb.push((Sym::from("v"), kv.vv_sort));
                tb.extend(q.params.iter().cloned());
                let tenv = SortScope::new(&*cs.sort_env, &tb);
                Some(tenv.check_pred(&q.body).is_ok())
            } else {
                None
            };
            if template_ok == Some(false) {
                continue;
            }
            for inst in q.instantiate(&kv.scope) {
                let well_sorted = template_ok.unwrap_or_else(|| env.check_pred(&inst).is_ok());
                if well_sorted && seen.insert(inst.clone()) {
                    cands.push(inst);
                }
            }
        }
        sol.assignment.insert(*id, cands);
    }

    let mut queries = 0u64;
    let mut discharged = 0u64;

    // --- Fixpoint: weaken κ-headed constraints ------------------------------
    let kvar_headed: Vec<usize> = cs
        .subs
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c.rhs, Pred::KVar(..)))
        .map(|(i, _)| i)
        .collect();
    // Memoization state: per-κ weakening versions, each constraint's κ
    // dependencies, and the dependency-version snapshot at its last check.
    let mut versions: HashMap<KVarId, u64> = HashMap::new();
    let deps: HashMap<usize, Vec<KVarId>> = kvar_headed
        .iter()
        .map(|&ci| (ci, constraint_deps(&cs.subs[ci])))
        .collect();
    let mut last_checked: HashMap<usize, Vec<u64>> = HashMap::new();
    // One persistent incremental context per κ-headed constraint. The
    // constraint's binder overlay (its scope + `v`) is fixed across
    // iterations, which is exactly the context-reuse invariant
    // `rsc_smt::incr` requires.
    let mut ctxs: HashMap<usize, IncrContext> = HashMap::new();
    let mut iteration = 0u64;
    loop {
        let _sp = rsc_obs::span!("fixpoint-iter", unit = iteration);
        iteration += 1;
        let mut changed = false;
        for &ci in &kvar_headed {
            let c = &cs.subs[ci];
            let Pred::KVar(k, theta) = &c.rhs else {
                unreachable!()
            };
            let current = sol.of(*k).to_vec();
            if current.is_empty() {
                continue;
            }
            let snapshot: Vec<u64> = deps[&ci]
                .iter()
                .map(|d| versions.get(d).copied().unwrap_or(0))
                .collect();
            if last_checked.get(&ci) == Some(&snapshot) {
                // No dependency κ was weakened since this constraint's
                // last check: a re-check would repeat the same queries
                // and keep everything. Skip it wholesale.
                continue;
            }
            let (binders, all_hyps, guards) = prepare_hyps(cs, c, &sol);
            let env_sorts = SortScope::new(&*cs.sort_env, &binders);
            // Hoisted out of the per-qualifier loop: the hypotheses'
            // free-variable sets and the candidate-independent seeds
            // (`v`, lhs, guards) are per-constraint, not per-candidate.
            let hyp_fvs: Vec<BTreeSet<Sym>> = all_hyps.iter().map(|h| h.free_vars()).collect();
            let mut base_seeds = sol.apply(&c.lhs).free_vars();
            base_seeds.insert(Sym::from("v"));
            for g in &guards {
                base_seeds.extend(g.free_vars());
            }
            let mut kept = Vec::with_capacity(current.len());
            let mut dropped = false;
            for q in current {
                let goal = theta.apply_pred(&q);
                let mut seeds = base_seeds.clone();
                seeds.extend(goal.free_vars());
                let keep_mask = relevant_mask(&hyp_fvs, seeds);
                let mut hyps: Vec<Pred> = all_hyps
                    .iter()
                    .zip(&keep_mask)
                    .filter(|(_, keep)| **keep)
                    .map(|(h, _)| h.clone())
                    .collect();
                hyps.extend(guards.iter().cloned());
                // Abstract-interpretation pre-pass: if the exact
                // hypothesis list already abstractly entails the goal,
                // the SMT query is guaranteed valid (the entailment
                // procedure stays inside the solver's provable
                // fragment) — keep the candidate without querying.
                let valid = if opts.absint && rsc_absint::entailed_by(&binders, &hyps, &goal) {
                    discharged += 1;
                    true
                } else {
                    queries += 1;
                    if opts.incremental {
                        let ctx = ctxs.entry(ci).or_default();
                        smt.is_valid_ctx(ctx, &env_sorts, &hyps, &goal)
                    } else {
                        smt.is_valid(&env_sorts, &hyps, &goal)
                    }
                };
                if valid {
                    kept.push(q);
                } else {
                    if std::env::var("RSC_DEBUG").is_ok() {
                        eprintln!(
                            "[liquid] drop {q} from {k} at `{}`; hyps={:?}",
                            c.blame.message(),
                            hyps.iter().map(|h| h.to_string()).collect::<Vec<_>>()
                        );
                    }
                    changed = true;
                    dropped = true;
                }
            }
            // Record the *pre-check* snapshot: when this check weakened
            // its own κ, the version bump below makes the constraint
            // dirty again next iteration (weaker hypotheses can drop
            // more), exactly as the unmemoized loop would re-check it.
            last_checked.insert(ci, snapshot);
            if dropped {
                *versions.entry(*k).or_insert(0) += 1;
            }
            sol.assignment.insert(*k, kept);
        }
        if !changed {
            break;
        }
    }

    // --- Validate concrete constraints --------------------------------------
    let mut failures = Vec::new();
    for (i, c) in cs.subs.iter().enumerate() {
        if matches!(c.rhs, Pred::KVar(..)) {
            continue;
        }
        let (binders, all_hyps, guards) = prepare_hyps(cs, c, &sol);
        let env_sorts = SortScope::new(&*cs.sort_env, &binders);
        let goal = sol.apply(&c.rhs);
        // Dead-code obligations (`… ⊑ false`) need the whole environment
        // to exhibit the inconsistency; everything else is filtered.
        let mut hyps = if matches!(goal, Pred::False) {
            all_hyps
        } else {
            let mut seeds = goal.free_vars();
            seeds.insert(rsc_logic::Sym::from("v"));
            seeds.extend(sol.apply(&c.lhs).free_vars());
            for g in &guards {
                seeds.extend(g.free_vars());
            }
            filter_relevant(all_hyps, seeds)
        };
        hyps.extend(guards.iter().cloned());
        // Statically discharged obligations are valid by construction
        // (the abstract entailment is strictly weaker than the solver);
        // skip the query, never the failure check's soundness.
        if opts.absint && rsc_absint::entailed_by(&binders, &hyps, &goal) {
            discharged += 1;
            continue;
        }
        queries += 1;
        if !smt.is_valid(&env_sorts, &hyps, &goal) {
            failures.push((i, c.blame_with_renderings()));
        }
    }

    LiquidResult {
        solution: sol,
        failures,
        smt_queries: queries,
        discharged,
    }
}

/// The transitive-relevance mask over precomputed hypothesis
/// free-variable sets: `mask[i]` is true when hypothesis `i` shares
/// variables (within 3 closure rounds) with the seeds.
fn relevant_mask(fvs: &[BTreeSet<Sym>], seeds: BTreeSet<Sym>) -> Vec<bool> {
    let mut relevant = seeds;
    let mut keep = vec![false; fvs.len()];
    for _ in 0..3 {
        let mut changed = false;
        for (i, fv) in fvs.iter().enumerate() {
            if keep[i] {
                continue;
            }
            if fv.is_empty() || fv.iter().any(|x| relevant.contains(x)) {
                keep[i] = true;
                relevant.extend(fv.iter().cloned());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    keep
}

/// Keeps only hypotheses transitively sharing variables with the seeds
/// (goal + left-hand side). Dropping hypotheses is conservative, and the
/// filter tames the model-enumeration cost of disjunction-heavy union
/// embeddings.
pub fn filter_relevant(hyps: Vec<Pred>, seeds: BTreeSet<Sym>) -> Vec<Pred> {
    let fvs: Vec<BTreeSet<Sym>> = hyps.iter().map(|h| h.free_vars()).collect();
    let keep = relevant_mask(&fvs, seeds);
    hyps.into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(h, _)| h)
        .collect()
}

/// Builds the binder overlay and hypothesis list for one constraint:
/// ⟦Γ⟧ under the current solution, plus the (solved) left refinement.
/// The binders (constraint scope plus `v`) are layered over the shared
/// sort environment by the caller via [`SortScope`] — the shared
/// environment itself is never cloned per constraint.
fn prepare_hyps(
    cs: &ConstraintSet,
    c: &SubC,
    sol: &Solution,
) -> (Vec<(Sym, Sort)>, Vec<Pred>, Vec<Pred>) {
    let mut binders = c.env.scope();
    binders.push((Sym::from("v"), c.vv_sort));
    let env_sorts = SortScope::new(&*cs.sort_env, &binders);
    let (bind_preds, guard_preds) = c.env.embed_split();
    let mut guards: Vec<Pred> = Vec::new();
    for g in guard_preds {
        guards.extend(sol.apply(&g).conjuncts());
    }
    guards.retain(|p| env_sorts.check_pred(p).is_ok());
    let mut hyps: Vec<Pred> = bind_preds.iter().map(|p| sol.apply(p)).collect();
    hyps.push(sol.apply(&c.lhs));
    // The `len` measure is a natural number: 0 ≤ len(x) for every
    // reference in scope (and for ν itself when it is a reference).
    for (x, s) in c.env.scope() {
        if s == Sort::Ref {
            hyps.push(Pred::cmp(
                rsc_logic::CmpOp::Le,
                Term::int(0),
                Term::len_of(Term::var(x)),
            ));
        }
    }
    if c.vv_sort == Sort::Ref {
        hyps.push(Pred::cmp(
            rsc_logic::CmpOp::Le,
            Term::int(0),
            Term::len_of(Term::vv()),
        ));
    }
    // Split into conjuncts, then drop ill-sorted ones (conservative:
    // fewer hypotheses make validity harder, never easier). Splitting
    // first keeps the well-sorted parts of mixed conjunctions — e.g. the
    // `ttag(v) = "number"` next to a cross-sort `v = x` selfification.
    let mut flat: Vec<Pred> = Vec::new();
    for h in hyps {
        flat.extend(h.conjuncts());
    }
    flat.retain(|p| env_sorts.check_pred(p).is_ok());
    (binders, flat, guards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blame::ObligationKind;
    use crate::constraint::CEnv;
    use rsc_logic::{CmpOp, Subst, Term};

    fn counter_constraints() -> (ConstraintSet, KVarId) {
        let mut cs = ConstraintSet::new();
        let k = cs.fresh_kvar(Sort::Int, vec![], "phi i");
        let kapp = Pred::KVar(k, Subst::new());

        // init: ⊢ {v = 0} ⊑ κ
        cs.push_sub(
            CEnv::new(),
            Pred::vv_eq(Term::int(0)),
            kapp.clone(),
            Sort::Int,
            &Blame::synthetic("init"),
        );
        // step: i:κ, i < 10 ⊢ {v = i + 1} ⊑ κ
        let mut env = CEnv::new();
        env.bind("i", Sort::Int, kapp.clone());
        env.guard(Pred::cmp(CmpOp::Lt, Term::var("i"), Term::int(10)));
        cs.push_sub(
            env.clone(),
            Pred::vv_eq(Term::add(Term::var("i"), Term::int(1))),
            kapp.clone(),
            Sort::Int,
            &Blame::synthetic("step"),
        );
        // use: i:κ, ¬(i < 10) ⊢ {v = i} ⊑ {v = 10}  (exact exit value needs
        // more than the prelude, so check a weaker concrete bound: 0 ≤ v).
        let mut env2 = CEnv::new();
        env2.bind("i", Sort::Int, kapp);
        env2.guard(Pred::cmp(CmpOp::Ge, Term::var("i"), Term::int(10)));
        cs.push_sub(
            env2,
            Pred::vv_eq(Term::var("i")),
            Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
            Sort::Int,
            &Blame::synthetic("use"),
        );
        (cs, k)
    }

    /// The κ for a simple counter `i = 0; while (i < 10) i = i + 1`.
    #[test]
    fn counter_invariant() {
        let (cs, k) = counter_constraints();
        let mut smt = Solver::new();
        let r = solve(&cs, &mut smt);
        assert!(r.failures.is_empty(), "failures: {:?}", r.failures);
        let shown: Vec<String> = r.solution.of(k).iter().map(|p| p.to_string()).collect();
        assert!(
            shown.contains(&"0 <= v".to_string()),
            "κ should keep Nat, got {shown:?}"
        );
    }

    /// The incremental and fresh-solver paths must agree on the solution,
    /// the failures, and even the query count (memoization is independent
    /// of the solving backend).
    #[test]
    fn incremental_matches_fresh_path() {
        let (cs, k) = counter_constraints();
        let mut smt_a = Solver::new();
        let a = solve_with(
            &cs,
            &mut smt_a,
            SolveOptions {
                incremental: true,
                ..SolveOptions::default()
            },
        );
        let mut smt_b = Solver::new();
        let b = solve_with(
            &cs,
            &mut smt_b,
            SolveOptions {
                incremental: false,
                ..SolveOptions::default()
            },
        );
        let show = |r: &LiquidResult| {
            r.solution
                .of(k)
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(show(&a), show(&b));
        assert_eq!(a.failures.len(), b.failures.len());
        assert_eq!(a.smt_queries, b.smt_queries);
    }

    /// The absint pre-pass must change only the query count: solution,
    /// failures and the candidate trajectory are byte-identical with it
    /// on or off, and on this workload it discharges something.
    #[test]
    fn absint_prepass_is_query_only() {
        let (cs, k) = counter_constraints();
        let mut smt_on = Solver::new();
        let on = solve_with(&cs, &mut smt_on, SolveOptions::default());
        let mut smt_off = Solver::new();
        let off = solve_with(
            &cs,
            &mut smt_off,
            SolveOptions {
                absint: false,
                ..SolveOptions::default()
            },
        );
        let show = |r: &LiquidResult| {
            r.solution
                .of(k)
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(show(&on), show(&off), "solutions must agree");
        assert_eq!(on.failures.len(), off.failures.len());
        assert_eq!(off.discharged, 0);
        assert!(on.discharged > 0, "expected some static discharges");
        assert_eq!(
            on.smt_queries + on.discharged,
            off.smt_queries,
            "every skipped query must be a discharge, nothing else"
        );
    }

    /// The discharge soundness contract: each obligation the pre-pass
    /// discharges must be re-derivable by the SMT solver. Replay the
    /// concrete obligations of a discharging workload through the
    /// solver directly.
    #[test]
    fn discharged_obligations_replay_as_valid() {
        let (cs, _) = counter_constraints();
        let mut smt = Solver::new();
        let r = solve_with(&cs, &mut smt, SolveOptions::default());
        assert!(r.discharged > 0);
        for c in cs.subs.iter() {
            if matches!(c.rhs, Pred::KVar(..)) {
                continue;
            }
            let (binders, all_hyps, guards) = prepare_hyps(&cs, c, &r.solution);
            let env_sorts = SortScope::new(&*cs.sort_env, &binders);
            let goal = r.solution.apply(&c.rhs);
            let mut hyps = all_hyps;
            hyps.extend(guards.iter().cloned());
            if rsc_absint::entailed_by(&binders, &hyps, &goal) {
                assert!(
                    smt.is_valid(&env_sorts, &hyps, &goal),
                    "discharged obligation must replay as valid: {goal}"
                );
            }
        }
    }

    /// An unsatisfiable concrete constraint is reported as a failure.
    #[test]
    fn concrete_failure_detected() {
        let mut cs = ConstraintSet::new();
        cs.push_sub(
            CEnv::new(),
            Pred::vv_eq(Term::int(5)),
            Pred::cmp(CmpOp::Lt, Term::vv(), Term::int(3)),
            Sort::Int,
            &Blame::synthetic("bad bound"),
        );
        let mut smt = Solver::new();
        let r = solve(&cs, &mut smt);
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].1.detail, "bad bound");
        assert_eq!(r.failures[0].1.kind, ObligationKind::Other);
        assert_eq!(r.failures[0].1.expected, "v < 3");
        assert_eq!(r.failures[0].1.actual, "v = 5");
    }
}
