//! Constraint environments and subtyping constraints over templates.

use std::collections::HashMap;
use std::sync::Arc;

use rsc_logic::{KVar, KVarId, Pred, Qualifier, Sort, SortEnv, Subst, Sym};

use crate::blame::{clip, Blame};

/// A constraint environment Γ: ordered bindings `x : {v:sort | pred}` plus
/// path-sensitivity guard predicates.
#[derive(Clone, Debug, Default)]
pub struct CEnv {
    /// Bindings in dependency order. The predicate is over the value
    /// variable `v`.
    pub binds: Vec<(Sym, Sort, Pred)>,
    /// Guard predicates (branch conditions).
    pub guards: Vec<Pred>,
}

impl CEnv {
    /// An empty environment.
    pub fn new() -> Self {
        CEnv::default()
    }

    /// Pushes a binding.
    pub fn bind(&mut self, x: impl Into<Sym>, sort: Sort, pred: Pred) {
        self.binds.push((x.into(), sort, pred));
    }

    /// Pushes a guard predicate.
    pub fn guard(&mut self, p: Pred) {
        self.guards.push(p);
    }

    /// The embedding ⟦Γ⟧ (§3.2): `[x/v]p` for every binding plus all
    /// guards. Predicates may still contain κ-variables; the solver
    /// substitutes the current assignment before calling the SMT solver.
    pub fn embed(&self) -> Vec<Pred> {
        let mut out = Vec::new();
        for (x, _, p) in &self.binds {
            if matches!(p, Pred::True) {
                continue;
            }
            let s = Subst::one("v", rsc_logic::Term::var(x.clone()));
            out.push(s.apply_pred(p));
        }
        out.extend(self.guards.iter().cloned());
        out
    }

    /// The variables in scope with their sorts (for qualifier
    /// instantiation and SMT sorting).
    pub fn scope(&self) -> Vec<(Sym, Sort)> {
        self.binds.iter().map(|(x, s, _)| (x.clone(), *s)).collect()
    }

    /// The embedding split into binding facts and guard predicates.
    /// Guards carry path-sensitivity and are never relevance-filtered.
    pub fn embed_split(&self) -> (Vec<Pred>, Vec<Pred>) {
        let mut binds = Vec::new();
        for (x, _, p) in &self.binds {
            if matches!(p, Pred::True) {
                continue;
            }
            let s = Subst::one("v", rsc_logic::Term::var(x.clone()));
            binds.push(s.apply_pred(p));
        }
        (binds, self.guards.clone())
    }
}

/// A subtyping constraint `Γ ⊢ {v | lhs} ⊑ {v | rhs}`.
///
/// After splitting, `rhs` is either concrete or a single κ application.
#[derive(Clone, Debug)]
pub struct SubC {
    /// The environment.
    pub env: CEnv,
    /// Left refinement (over `v`), possibly containing κ-variables.
    pub lhs: Pred,
    /// Right refinement (over `v`).
    pub rhs: Pred,
    /// Sort of the value variable.
    pub vv_sort: Sort,
    /// Structured provenance for diagnostics. **Excluded from
    /// [`crate::bundle_fingerprint`]** — blame never influences a
    /// verdict, so provenance-only edits (line shifts) keep bundles
    /// cache-equal.
    pub blame: Blame,
}

impl SubC {
    /// The constraint's blame with the expected/actual refinement
    /// renderings filled in from its own (post-split) sides. Rendered
    /// lazily — only failing constraints ever pay for it.
    pub fn blame_with_renderings(&self) -> Blame {
        let mut blame = self.blame.clone();
        blame.expected = clip(self.rhs.to_string());
        blame.actual = clip(self.lhs.to_string());
        blame
    }
}

/// A full constraint problem: κ declarations, subtyping constraints and
/// the qualifier pool.
///
/// The qualifier pool and the sort environment are run-global and shared
/// behind [`Arc`]s: partitioning a set into hundreds of per-function
/// bundles hands each bundle a pointer bump, not a deep copy — which is
/// also what keeps long-lived incremental check sessions (which hold a
/// bundle per function per run) at a sane memory footprint. Mutate them
/// during generation via [`Arc::make_mut`]; after partitioning they are
/// immutable by construction.
#[derive(Debug, Default)]
pub struct ConstraintSet {
    /// κ-variable metadata (scope for well-formedness).
    pub kvars: HashMap<KVarId, KVar>,
    /// Subtyping constraints.
    pub subs: Vec<SubC>,
    /// Qualifiers available to the fixpoint (shared across bundles).
    pub quals: Arc<Vec<Qualifier>>,
    /// The global sort environment: uninterpreted functions, field
    /// selectors, measures (shared across bundles). Variable sorts come
    /// from each constraint's environment.
    pub sort_env: Arc<SortEnv>,
    next_kvar: u32,
}

impl ConstraintSet {
    /// A fresh constraint set with the default qualifier prelude.
    pub fn new() -> Self {
        ConstraintSet {
            quals: Arc::new(rsc_logic::prelude_qualifiers()),
            sort_env: Arc::new(SortEnv::new()),
            ..Default::default()
        }
    }

    /// A constraint set with no constraints and no κ-variables, but the
    /// given qualifier pool and sort environment — the shell the
    /// partitioner ([`crate::partition`]) fills per bundle. κ allocation
    /// starts at 0; bundles never allocate, they inherit κ metadata.
    pub fn empty(quals: Arc<Vec<Qualifier>>, sort_env: Arc<SortEnv>) -> Self {
        ConstraintSet {
            quals,
            sort_env,
            ..Default::default()
        }
    }

    /// Allocates a fresh κ-variable with the given value-variable sort and
    /// scope.
    pub fn fresh_kvar(
        &mut self,
        vv_sort: Sort,
        scope: Vec<(Sym, Sort)>,
        origin: impl Into<String>,
    ) -> KVarId {
        let id = KVarId(self.next_kvar);
        self.next_kvar += 1;
        self.kvars.insert(id, KVar::new(id, vv_sort, scope, origin));
        id
    }

    /// Adds a subtyping constraint, splitting conjunctive right-hand sides
    /// so every stored constraint has either a concrete rhs or a single κ
    /// application. Each stored constraint receives a copy of `blame`;
    /// the expected/actual refinement renderings are *not* produced here
    /// — rendering every constraint would put two `Pred` pretty-prints
    /// on the generation hot path for strings only failures ever read.
    /// Failure sites call [`SubC::blame_with_renderings`] instead.
    pub fn push_sub(&mut self, env: CEnv, lhs: Pred, rhs: Pred, vv_sort: Sort, blame: &Blame) {
        match rhs {
            Pred::True => {}
            Pred::And(parts) => {
                for p in parts {
                    self.push_sub(env.clone(), lhs.clone(), p, vv_sort, blame);
                }
            }
            rhs => self.subs.push(SubC {
                env,
                lhs,
                rhs,
                vv_sort,
                blame: blame.clone(),
            }),
        }
    }

    /// Number of κ variables allocated.
    pub fn num_kvars(&self) -> usize {
        self.kvars.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_logic::{CmpOp, Term};

    #[test]
    fn embed_substitutes_vv() {
        let mut env = CEnv::new();
        env.bind(
            "x",
            Sort::Int,
            Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
        );
        env.guard(Pred::cmp(CmpOp::Lt, Term::var("x"), Term::int(10)));
        let h = env.embed();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].to_string(), "0 <= x");
    }

    #[test]
    fn push_sub_splits_conjunctions() {
        let mut cs = ConstraintSet::new();
        let rhs = Pred::and(vec![
            Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
            Pred::cmp(CmpOp::Lt, Term::vv(), Term::int(10)),
        ]);
        cs.push_sub(
            CEnv::new(),
            Pred::True,
            rhs,
            Sort::Int,
            &Blame::synthetic("t"),
        );
        assert_eq!(cs.subs.len(), 2);
        // Each split conjunct renders its own expected refinement.
        assert_eq!(cs.subs[0].blame_with_renderings().expected, "0 <= v");
        assert_eq!(cs.subs[1].blame_with_renderings().expected, "v < 10");
    }

    #[test]
    fn fresh_kvars_are_distinct() {
        let mut cs = ConstraintSet::new();
        let a = cs.fresh_kvar(Sort::Int, vec![], "a");
        let b = cs.fresh_kvar(Sort::Int, vec![], "b");
        assert_ne!(a, b);
        assert_eq!(cs.num_kvars(), 2);
    }
}
