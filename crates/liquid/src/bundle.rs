//! Partitioning a constraint set into independently solvable bundles.
//!
//! Liquid inference is embarrassingly parallel at function granularity:
//! the κ-variables allocated while checking one function only appear in
//! that function's constraints, so each function's slice of the
//! constraint set is a closed fixpoint problem. The checker tags every
//! constraint with the *unit* (function, class, or top level) that
//! generated it; [`partition`] groups constraints by unit, then merges
//! any units that turn out to share a κ-variable (e.g. a closure checked
//! at a call site in another unit) so no bundle ever reads a κ another
//! bundle writes.
//!
//! Each [`ConstraintBundle`] carries everything a worker thread needs:
//! its constraints, the κ metadata they mention, and an `Arc` share of
//! the run-global qualifier pool and sort environment (the bundle's
//! slice of the class table). Bundles are ordered by their first
//! constraint's
//! original index, so merging per-bundle results in bundle order
//! reproduces the sequential diagnostic order exactly.

use std::collections::HashMap;

use rsc_logic::KVarId;

use crate::constraint::{ConstraintSet, SubC};

/// One independently solvable slice of a [`ConstraintSet`].
#[derive(Debug)]
pub struct ConstraintBundle {
    /// The bundle's closed constraint problem.
    pub cs: ConstraintSet,
    /// Original indices (into the source set's `subs`) of this bundle's
    /// constraints, ascending; `members[i]` corresponds to `cs.subs[i]`.
    pub members: Vec<usize>,
}

/// Union-find over unit ids.
struct Uf(Vec<usize>);

impl Uf {
    fn new(n: usize) -> Uf {
        Uf((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let r = self.find(self.0[x]);
            self.0[x] = r;
        }
        self.0[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Attach the larger root under the smaller so roots stay
            // stable in source order.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.0[hi] = lo;
        }
    }
}

/// The κ-variables mentioned anywhere in a constraint (environment
/// bindings, guards, both refinements).
fn kvars_of(c: &SubC) -> Vec<KVarId> {
    let mut out: Vec<KVarId> = Vec::new();
    let mut push = |p: &rsc_logic::Pred| {
        for (k, _) in p.kvars() {
            if !out.contains(&k) {
                out.push(k);
            }
        }
    };
    for (_, _, p) in &c.env.binds {
        push(p);
    }
    for g in &c.env.guards {
        push(g);
    }
    push(&c.lhs);
    push(&c.rhs);
    out
}

/// Splits `cs` into bundles along the per-constraint unit tags
/// (`unit_of[i]` is the unit that generated `cs.subs[i]`), merging units
/// that share a κ-variable. Panics if the tag vector's length does not
/// match the constraint count.
pub fn partition(cs: ConstraintSet, unit_of: &[usize]) -> Vec<ConstraintBundle> {
    assert_eq!(
        unit_of.len(),
        cs.subs.len(),
        "one unit tag per constraint required"
    );
    let units = unit_of.iter().copied().max().map_or(1, |m| m + 1);
    let mut uf = Uf::new(units);

    // Merge units sharing a κ.
    let per_constraint: Vec<Vec<KVarId>> = cs.subs.iter().map(kvars_of).collect();
    let mut kvar_home: HashMap<KVarId, usize> = HashMap::new();
    for (ci, ks) in per_constraint.iter().enumerate() {
        for k in ks {
            match kvar_home.get(k) {
                Some(&u) => uf.union(u, unit_of[ci]),
                None => {
                    kvar_home.insert(*k, unit_of[ci]);
                }
            }
        }
    }

    // Group constraint indices by root unit, in source order.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new(); // (root, members)
    let mut root_slot: HashMap<usize, usize> = HashMap::new();
    for (ci, &unit) in unit_of.iter().enumerate() {
        let root = uf.find(unit);
        let slot = *root_slot.entry(root).or_insert_with(|| {
            groups.push((root, Vec::new()));
            groups.len() - 1
        });
        groups[slot].1.push(ci);
    }

    // Materialize bundles. Constraints are moved out of the source set;
    // qualifiers and the sort environment are run-global and shared by
    // `Arc` — each bundle costs two refcount bumps, not two deep copies.
    let ConstraintSet {
        kvars,
        subs,
        quals,
        sort_env,
        ..
    } = cs;
    let mut subs: Vec<Option<SubC>> = subs.into_iter().map(Some).collect();
    let mut out = Vec::with_capacity(groups.len());
    for (_, members) in groups {
        let mut bundle_cs = ConstraintSet::empty(
            std::sync::Arc::clone(&quals),
            std::sync::Arc::clone(&sort_env),
        );
        for &ci in &members {
            let c = subs[ci].take().expect("constraint taken twice");
            for k in &per_constraint[ci] {
                if !bundle_cs.kvars.contains_key(k) {
                    if let Some(kv) = kvars.get(k) {
                        bundle_cs.kvars.insert(*k, kv.clone());
                    }
                }
            }
            bundle_cs.subs.push(c);
        }
        out.push(ConstraintBundle {
            cs: bundle_cs,
            members,
        });
    }
    // Bundles in the order their first constraint appeared, so merged
    // results reproduce the sequential order.
    out.sort_by_key(|b| b.members.first().copied().unwrap_or(usize::MAX));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blame::Blame;
    use crate::constraint::CEnv;
    use rsc_logic::{CmpOp, Pred, Sort, Subst, Term};

    fn push_concrete(cs: &mut ConstraintSet, origin: &str) {
        cs.push_sub(
            CEnv::new(),
            Pred::vv_eq(Term::int(1)),
            Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
            Sort::Int,
            &Blame::synthetic(origin),
        );
    }

    #[test]
    fn disjoint_units_split() {
        let mut cs = ConstraintSet::new();
        push_concrete(&mut cs, "a");
        push_concrete(&mut cs, "b");
        let bundles = partition(cs, &[0, 1]);
        assert_eq!(bundles.len(), 2);
        assert_eq!(bundles[0].members, vec![0]);
        assert_eq!(bundles[1].members, vec![1]);
    }

    #[test]
    fn shared_kvar_merges_units() {
        let mut cs = ConstraintSet::new();
        let k = cs.fresh_kvar(Sort::Int, vec![], "shared");
        let kapp = Pred::KVar(k, Subst::new());
        cs.push_sub(
            CEnv::new(),
            Pred::vv_eq(Term::int(0)),
            kapp.clone(),
            Sort::Int,
            &Blame::synthetic("unit0"),
        );
        let mut env = CEnv::new();
        env.bind("i", Sort::Int, kapp);
        cs.push_sub(
            env,
            Pred::vv_eq(Term::var("i")),
            Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
            Sort::Int,
            &Blame::synthetic("unit1"),
        );
        push_concrete(&mut cs, "unit2");
        let bundles = partition(cs, &[0, 1, 2]);
        assert_eq!(bundles.len(), 2, "units 0 and 1 share κ, unit 2 is free");
        assert_eq!(bundles[0].members, vec![0, 1]);
        assert!(bundles[0].cs.kvars.contains_key(&k));
        assert_eq!(bundles[1].members, vec![2]);
        assert!(bundles[1].cs.kvars.is_empty());
    }

    #[test]
    fn bundle_solves_like_the_whole() {
        // Solving each bundle separately finds the same failure set as
        // solving the undivided constraint set.
        let mut cs = ConstraintSet::new();
        cs.push_sub(
            CEnv::new(),
            Pred::vv_eq(Term::int(5)),
            Pred::cmp(CmpOp::Lt, Term::vv(), Term::int(3)),
            Sort::Int,
            &Blame::synthetic("bad"),
        );
        cs.push_sub(
            CEnv::new(),
            Pred::vv_eq(Term::int(1)),
            Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
            Sort::Int,
            &Blame::synthetic("good"),
        );
        let bundles = partition(cs, &[0, 1]);
        let mut failed_origins = Vec::new();
        for b in &bundles {
            let mut smt = rsc_smt::Solver::new();
            let r = crate::solve(&b.cs, &mut smt);
            for (local, blame) in r.failures {
                failed_origins.push((b.members[local], blame.detail));
            }
        }
        assert_eq!(failed_origins, vec![(0, "bad".to_string())]);
    }
}
