//! Stable cross-run identity for constraint bundles.
//!
//! Incremental check sessions re-generate the whole constraint set on
//! every edit (generation is cheap) but only want to *re-solve* the
//! bundles whose constraint problem actually changed. The obstacle is
//! that κ-variable ids are allocated by a single run-global counter:
//! adding one κ early in the program renumbers every κ after it, so the
//! raw rendering of an untouched downstream bundle still changes between
//! runs.
//!
//! [`bundle_fingerprint`] therefore renumbers κ ids *canonically within
//! the bundle* — `κ0, κ1, …` in order of first occurrence over the
//! bundle's constraints — before hashing. Bundles are closed under
//! κ-sharing by construction (see [`crate::partition`]), and the solver
//! treats κ ids as opaque keys (candidate initialization is per-κ,
//! iteration follows constraint order), so two bundles with equal
//! canonical renderings are the *same* fixpoint problem and produce the
//! same verdict, bit for bit.
//!
//! The qualifier pool and sort environment are run-global inputs to
//! every bundle's fixpoint; [`global_fingerprint`] hashes them once per
//! run and the result is mixed into each bundle fingerprint.
//!
//! Fingerprints are 128 bits (two independently salted 64-bit hashes):
//! at the scale of a session (thousands of bundles over thousands of
//! edits) accidental collision is negligible, and a collision could only
//! cause a *stale verdict for an equal-looking problem*, never a crash.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::Hasher;

use rsc_logic::{KVarId, Pred, Qualifier, SortEnv, Sym};

use crate::bundle::ConstraintBundle;
use crate::constraint::SubC;

/// Two independently salted 64-bit hashers, combined into a `u128`.
struct Fp {
    a: DefaultHasher,
    b: DefaultHasher,
}

impl Fp {
    fn new() -> Fp {
        let mut a = DefaultHasher::new();
        let mut b = DefaultHasher::new();
        a.write_u64(0x5152_5343_494e_4352); // salt A
        b.write_u64(0x9e37_79b9_7f4a_7c15); // salt B
        Fp { a, b }
    }

    fn write(&mut self, s: &str) {
        self.a.write(s.as_bytes());
        self.b.write(s.as_bytes());
    }

    fn write_u64(&mut self, v: u64) {
        self.a.write_u64(v);
        self.b.write_u64(v);
    }

    fn finish(self) -> u128 {
        ((self.a.finish() as u128) << 64) | self.b.finish() as u128
    }
}

/// Rewrites every κ id in `p` to its canonical within-bundle number
/// (assigned on first occurrence), leaving everything else intact, so
/// that `Display` of the result is invariant under global κ renumbering.
fn canon_kvars(p: &Pred, map: &mut HashMap<KVarId, u32>, next: &mut u32) -> Pred {
    match p {
        Pred::KVar(k, s) => {
            let cid = *map.entry(*k).or_insert_with(|| {
                let id = *next;
                *next += 1;
                id
            });
            Pred::KVar(KVarId(cid), s.clone())
        }
        Pred::And(ps) => Pred::And(ps.iter().map(|q| canon_kvars(q, map, next)).collect()),
        Pred::Or(ps) => Pred::Or(ps.iter().map(|q| canon_kvars(q, map, next)).collect()),
        Pred::Not(q) => Pred::Not(Box::new(canon_kvars(q, map, next))),
        Pred::Imp(a, b) => Pred::Imp(
            Box::new(canon_kvars(a, map, next)),
            Box::new(canon_kvars(b, map, next)),
        ),
        Pred::Iff(a, b) => Pred::Iff(
            Box::new(canon_kvars(a, map, next)),
            Box::new(canon_kvars(b, map, next)),
        ),
        other => other.clone(),
    }
}

fn write_pred(p: &Pred, map: &mut HashMap<KVarId, u32>, next: &mut u32, out: &mut Fp) {
    out.write(&canon_kvars(p, map, next).to_string());
    out.write("\u{2}");
}

// NOTE: `c.blame` is deliberately NOT hashed. Blame is pure provenance
// (spans, obligation kinds, rendered refinements) and never influences
// a verdict, so excluding it is what lets comment/whitespace-only edits
// — which shift every span in the file — keep every bundle fingerprint
// intact and re-solve zero bundles in an incremental session. Consumers
// re-attach blame from the current run's constraints.
fn write_sub(c: &SubC, map: &mut HashMap<KVarId, u32>, next: &mut u32, out: &mut Fp) {
    out.write("C|");
    out.write(&c.vv_sort.to_string());
    out.write("|");
    for (x, s, p) in &c.env.binds {
        out.write(x.as_str());
        out.write(":");
        out.write(&s.to_string());
        out.write("=");
        write_pred(p, map, next, out);
    }
    out.write("|guards|");
    for g in &c.env.guards {
        write_pred(g, map, next, out);
    }
    out.write("|lhs|");
    write_pred(&c.lhs, map, next, out);
    out.write("|rhs|");
    write_pred(&c.rhs, map, next, out);
    out.write("\u{1}");
}

/// Hashes the run-global solve inputs shared by every bundle: the
/// qualifier pool (in order — candidate initialization is
/// order-sensitive) and the sort environment (variables and
/// uninterpreted-function signatures, name-sorted).
pub fn global_fingerprint(quals: &[Qualifier], sort_env: &SortEnv) -> u64 {
    let mut h = DefaultHasher::new();
    for q in quals {
        h.write(format!("{q:?}").as_bytes());
        h.write(b"\x01");
    }
    let mut vars: Vec<(&Sym, String)> = sort_env.vars().map(|(x, s)| (x, s.to_string())).collect();
    vars.sort();
    for (x, s) in vars {
        h.write(x.as_str().as_bytes());
        h.write(b":");
        h.write(s.as_bytes());
    }
    let mut funs: Vec<(&Sym, String)> = sort_env
        .funs()
        .map(|(f, sig)| (f, format!("{sig:?}")))
        .collect();
    funs.sort();
    for (f, sig) in funs {
        h.write(f.as_str().as_bytes());
        h.write(b"!");
        h.write(sig.as_bytes());
    }
    h.finish()
}

/// The canonical 128-bit identity of a bundle's constraint problem,
/// mixed with the run-global [`global_fingerprint`]. Equal fingerprints
/// mean the bundles are the same fixpoint problem up to κ renumbering —
/// solving either yields the same per-constraint verdicts and the same
/// query counts (see the module docs for why).
pub fn bundle_fingerprint(b: &ConstraintBundle, global: u64) -> u128 {
    let mut out = Fp::new();
    out.write_u64(global);
    let mut map: HashMap<KVarId, u32> = HashMap::new();
    let mut next = 0u32;
    for c in &b.cs.subs {
        write_sub(c, &mut map, &mut next, &mut out);
    }
    // κ metadata, in canonical-id order. κs that never occur in a
    // constraint cannot influence any verdict and are skipped.
    let mut metas: Vec<(u32, KVarId)> = map.iter().map(|(k, cid)| (*cid, *k)).collect();
    metas.sort();
    for (cid, k) in metas {
        out.write("K|");
        out.write_u64(cid as u64);
        if let Some(kv) = b.cs.kvars.get(&k) {
            out.write("|");
            out.write(&kv.vv_sort.to_string());
            out.write("|");
            for (x, s) in &kv.scope {
                out.write(x.as_str());
                out.write(":");
                out.write(&s.to_string());
                out.write(",");
            }
        }
        out.write("\u{1}");
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blame::{Blame, ObligationKind};
    use crate::constraint::{CEnv, ConstraintSet};
    use crate::partition;
    use rsc_logic::{CmpOp, Pred, Sort, Subst, Term};
    use rsc_syntax::Span;

    /// Two runs that allocate the same bundle at different global κ
    /// offsets must agree on the fingerprint.
    #[test]
    fn kvar_renumbering_is_invisible() {
        let build = |burn: usize| {
            let mut cs = ConstraintSet::new();
            for i in 0..burn {
                // Burn κ ids (as an earlier edited function would).
                cs.fresh_kvar(Sort::Int, vec![], format!("burned {i}"));
            }
            let k = cs.fresh_kvar(Sort::Int, vec![(Sym::from("i"), Sort::Int)], "phi");
            let kapp = Pred::KVar(k, Subst::new());
            cs.push_sub(
                CEnv::new(),
                Pred::vv_eq(Term::int(0)),
                kapp.clone(),
                Sort::Int,
                &Blame::synthetic("init"),
            );
            let mut env = CEnv::new();
            env.bind("i", Sort::Int, kapp);
            cs.push_sub(
                env,
                Pred::vv_eq(Term::var("i")),
                Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
                Sort::Int,
                &Blame::synthetic("use"),
            );
            let bundles = partition(cs, &[0, 0]);
            assert_eq!(bundles.len(), 1);
            bundle_fingerprint(&bundles[0], 7)
        };
        assert_eq!(build(0), build(5));
    }

    /// Provenance is excluded: two constraints that differ only in
    /// their blame (as after a comment-only edit shifting every span)
    /// share a fingerprint, while a real predicate change splits it.
    #[test]
    fn provenance_is_excluded_but_predicates_count() {
        let build = |blame: Blame, bound: i64| {
            let mut cs = ConstraintSet::new();
            cs.push_sub(
                CEnv::new(),
                Pred::vv_eq(Term::int(1)),
                Pred::cmp(CmpOp::Le, Term::int(bound), Term::vv()),
                Sort::Int,
                &blame,
            );
            let bundles = partition(cs, &[0]);
            bundle_fingerprint(&bundles[0], 7)
        };
        let line3 = Blame::new(
            ObligationKind::ArrayBounds,
            "bound",
            Span {
                lo: 10,
                hi: 14,
                line: 3,
            },
        );
        let line4 = Blame::new(
            ObligationKind::Return,
            "other detail",
            Span {
                lo: 99,
                hi: 120,
                line: 4,
            },
        );
        assert_eq!(
            build(line3.clone(), 0),
            build(line4, 0),
            "blame-only differences must not change the fingerprint"
        );
        assert_ne!(
            build(line3.clone(), 0),
            build(line3, 1),
            "a predicate change must change the fingerprint"
        );
    }

    /// The global component (qualifier pool / sort env) splits keys.
    #[test]
    fn global_component_splits() {
        let mut cs = ConstraintSet::new();
        cs.push_sub(
            CEnv::new(),
            Pred::vv_eq(Term::int(1)),
            Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
            Sort::Int,
            &Blame::synthetic("c"),
        );
        let g1 = global_fingerprint(&cs.quals, &cs.sort_env);
        let mut env2 = (*cs.sort_env).clone();
        env2.bind("extra", Sort::Int);
        let g2 = global_fingerprint(&cs.quals, &env2);
        assert_ne!(g1, g2);
        let bundles = partition(cs, &[0]);
        assert_ne!(
            bundle_fingerprint(&bundles[0], g1),
            bundle_fingerprint(&bundles[0], g2)
        );
    }
}
