//! Structured provenance for subtyping obligations.
//!
//! Every [`crate::SubC`] carries a [`Blame`]: the source span of the
//! expression that generated the obligation, the *kind* of obligation
//! (which becomes the diagnostic's `R….`-style error code), a short
//! human-readable detail, and pretty-prints of the expected/actual
//! refinements. When the fixpoint reports a failure, the blame is the
//! whole story — no string parsing anywhere downstream.
//!
//! # The fingerprint-excludes-blame invariant
//!
//! Blame is *provenance*, not *semantics*: two constraints that differ
//! only in their blame are the same logical obligation and produce the
//! same verdict. [`crate::bundle_fingerprint`] therefore hashes
//! everything in a constraint **except** its blame, so a whitespace or
//! comment-only edit (which shifts every span but changes no predicate)
//! leaves every bundle fingerprint intact and an incremental session
//! re-solves nothing. Consumers of retained verdicts must re-attach
//! blame from the *current* run's constraints (see
//! `rsc_core::solve_artifacts`), which is what keeps reported line
//! numbers fresh even when zero bundles are re-solved.

use std::fmt;

use rsc_syntax::Span;

/// The kind of a subtyping obligation — what the program was trying to
/// do when the constraint was generated. Each kind owns a stable
/// `R0001`-style error code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ObligationKind {
    /// An argument flowing into a declared parameter type.
    CallArgument,
    /// A returned value flowing into the declared return type.
    Return,
    /// A value flowing into an annotated binding or written location.
    Assignment,
    /// A narrowing refutation: a union part that must be provably dead
    /// (or a possibly-`null`/`undefined` value that must be provably
    /// absent) at this use.
    Narrowing,
    /// A loop invariant obligation (entry or back edge).
    LoopInvariant,
    /// A property read (including reads through possibly-null unions).
    FieldRead,
    /// A property write against the field's declared type.
    FieldWrite,
    /// An array index bounds obligation (read or write).
    ArrayBounds,
    /// A cast: upcast subsumption or downcast invariant proof.
    Cast,
    /// A class invariant established at constructor exit.
    ClassInvariant,
    /// An explicit `assert(e)`.
    Assertion,
    /// An arithmetic side condition (e.g. a nonzero divisor).
    Arithmetic,
    /// A structural base-type mismatch reported as a dead-code
    /// obligation (valid only in an inconsistent environment).
    BaseType,
    /// Anything else (synthetic constraints in tests and tools).
    Other,
}

impl ObligationKind {
    /// The stable diagnostic code for this kind.
    pub fn code(&self) -> &'static str {
        match self {
            ObligationKind::CallArgument => "R0001",
            ObligationKind::Return => "R0002",
            ObligationKind::Assignment => "R0003",
            ObligationKind::Narrowing => "R0004",
            ObligationKind::LoopInvariant => "R0005",
            ObligationKind::FieldRead => "R0006",
            ObligationKind::FieldWrite => "R0007",
            ObligationKind::ArrayBounds => "R0008",
            ObligationKind::Cast => "R0009",
            ObligationKind::ClassInvariant => "R0010",
            ObligationKind::Assertion => "R0011",
            ObligationKind::Arithmetic => "R0012",
            ObligationKind::BaseType => "R0013",
            ObligationKind::Other => "R0099",
        }
    }

    /// A short noun phrase naming the obligation kind.
    pub fn describe(&self) -> &'static str {
        match self {
            ObligationKind::CallArgument => "call argument",
            ObligationKind::Return => "return value",
            ObligationKind::Assignment => "assignment",
            ObligationKind::Narrowing => "narrowing refutation",
            ObligationKind::LoopInvariant => "loop invariant",
            ObligationKind::FieldRead => "field read",
            ObligationKind::FieldWrite => "field write",
            ObligationKind::ArrayBounds => "array bounds",
            ObligationKind::Cast => "cast",
            ObligationKind::ClassInvariant => "class invariant",
            ObligationKind::Assertion => "assertion",
            ObligationKind::Arithmetic => "arithmetic safety",
            ObligationKind::BaseType => "base type mismatch",
            ObligationKind::Other => "obligation",
        }
    }

    /// Every kind, for exhaustive test coverage.
    pub fn all() -> &'static [ObligationKind] {
        &[
            ObligationKind::CallArgument,
            ObligationKind::Return,
            ObligationKind::Assignment,
            ObligationKind::Narrowing,
            ObligationKind::LoopInvariant,
            ObligationKind::FieldRead,
            ObligationKind::FieldWrite,
            ObligationKind::ArrayBounds,
            ObligationKind::Cast,
            ObligationKind::ClassInvariant,
            ObligationKind::Assertion,
            ObligationKind::Arithmetic,
            ObligationKind::BaseType,
            ObligationKind::Other,
        ]
    }
}

impl fmt::Display for ObligationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.describe())
    }
}

/// Structured provenance for one obligation: where it came from, what
/// kind of obligation it is, and the refinements on both sides.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Blame {
    /// The source range of the blamed expression.
    pub span: Span,
    /// What the program was doing.
    pub kind: ObligationKind,
    /// Context detail, e.g. `argument 2` or `initializer of x`.
    pub detail: String,
    /// Pretty-print of the expected (right-hand) refinement. Filled per
    /// stored constraint by [`crate::ConstraintSet::push_sub`].
    pub expected: String,
    /// Pretty-print of the actual (left-hand) refinement.
    pub actual: String,
    /// An optional secondary range with a label (e.g. the declaration
    /// the failing value was checked against).
    pub related: Option<(Span, String)>,
}

/// Deterministically clips a rendered refinement for display; embedded
/// environments can render very large predicates.
pub(crate) fn clip(s: String) -> String {
    const MAX: usize = 160;
    if s.len() <= MAX {
        return s;
    }
    let mut end = MAX;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &s[..end])
}

impl Blame {
    /// A blame with no refinement renderings yet (they are attached by
    /// [`crate::ConstraintSet::push_sub`]).
    pub fn new(kind: ObligationKind, detail: impl Into<String>, span: Span) -> Blame {
        Blame {
            span,
            kind,
            detail: detail.into(),
            expected: String::new(),
            actual: String::new(),
            related: None,
        }
    }

    /// Attaches a secondary labeled range.
    pub fn with_related(mut self, span: Span, label: impl Into<String>) -> Blame {
        self.related = Some((span, label.into()));
        self
    }

    /// A synthetic blame for hand-built constraint sets (tests, tools):
    /// dummy span, [`ObligationKind::Other`].
    pub fn synthetic(detail: impl Into<String>) -> Blame {
        Blame::new(ObligationKind::Other, detail, Span::dummy())
    }

    /// The one-line human message: `kind: detail` (or just the kind when
    /// there is no detail).
    pub fn message(&self) -> String {
        if self.detail.is_empty() {
            self.kind.describe().to_string()
        } else {
            format!("{}: {}", self.kind.describe(), self.detail)
        }
    }
}

/// `Display` shows `[code] (line N): message` — the compact form used in
/// debug traces; rich rendering lives in `rsc_core::Diagnostic`.
impl fmt::Display for Blame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] ({}): {}",
            self.kind.code(),
            self.span,
            self.message()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for k in ObligationKind::all() {
            assert!(seen.insert(k.code()), "duplicate code {}", k.code());
            assert!(k.code().starts_with('R'));
            assert_eq!(k.code().len(), 5);
        }
    }

    #[test]
    fn message_composition() {
        let b = Blame::new(
            ObligationKind::ArrayBounds,
            "array read index",
            Span::dummy(),
        );
        assert_eq!(b.message(), "array bounds: array read index");
        let bare = Blame::new(ObligationKind::Return, "", Span::dummy());
        assert_eq!(bare.message(), "return value");
    }

    #[test]
    fn clip_is_deterministic_and_utf8_safe() {
        let long = "é".repeat(200);
        let c = clip(long.clone());
        assert!(c.ends_with('…'));
        assert!(c.len() < long.len());
        assert_eq!(c, clip(long));
    }
}
