//! Reproduces the fixpoint run of §2.2.2: inferring the loop invariant of
//! `reduce` — the Φ-variable `i2` gets `0 ≤ ν ∧ ν ≤ len(a)`, which under
//! the loop guard `i2 < len(a)` proves the callback receives `idx<a>`.

use rsc_liquid::{solve, Blame, CEnv, ConstraintSet};
use rsc_logic::{CmpOp, Pred, Sort, Subst, Term};
use rsc_smt::Solver;

fn idx_of(array: &str) -> Pred {
    Pred::and(vec![
        Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
        Pred::cmp(CmpOp::Lt, Term::vv(), Term::len_of(Term::var(array))),
    ])
}

#[test]
fn reduce_loop_invariant() {
    let mut cs = ConstraintSet::new();
    let scope = vec![(rsc_logic::Sym::from("a"), Sort::Ref)];
    let k_i2 = cs.fresh_kvar(Sort::Int, scope.clone(), "phi i2");
    let kapp = Pred::KVar(k_i2, Subst::new());

    // Γ0 ⊢ {ν = i0} ⊑ κ_i2 with i0 = 0 (inlined).
    let mut g0 = CEnv::new();
    g0.bind("a", Sort::Ref, Pred::True);
    cs.push_sub(
        g0,
        Pred::vv_eq(Term::int(0)),
        kapp.clone(),
        Sort::Int,
        &Blame::synthetic("phi init"),
    );

    // Γ1 ⊢ {ν = i1} ⊑ κ_i2 where i1 = i2 + 1 under the loop guard.
    let mut g1 = CEnv::new();
    g1.bind("a", Sort::Ref, Pred::True);
    g1.bind("i2", Sort::Int, kapp.clone());
    g1.guard(Pred::cmp(
        CmpOp::Lt,
        Term::var("i2"),
        Term::len_of(Term::var("a")),
    ));
    cs.push_sub(
        g1.clone(),
        Pred::vv_eq(Term::add(Term::var("i2"), Term::int(1))),
        kapp.clone(),
        Sort::Int,
        &Blame::synthetic("phi step"),
    );

    // Concrete: under the guard, i2 must be a valid index (the callback
    // argument of type idx<a>).
    cs.push_sub(
        g1,
        Pred::vv_eq(Term::var("i2")),
        idx_of("a"),
        Sort::Int,
        &Blame::synthetic("callback index"),
    );

    let mut smt = Solver::new();
    let r = solve(&cs, &mut smt);
    assert!(
        r.failures.is_empty(),
        "array safety of reduce should verify: {:?}",
        r.failures
    );
    let shown: Vec<String> = r.solution.of(k_i2).iter().map(|p| p.to_string()).collect();
    assert!(shown.contains(&"0 <= v".to_string()), "{shown:?}");
    assert!(
        shown.contains(&"v <= len(a)".to_string()),
        "κ_i2 should include ν ≤ len(a): {shown:?}"
    );
    // The over-strong candidate ν < len(a) must have been weakened away.
    assert!(
        !shown.contains(&"v < len(a)".to_string()),
        "ν < len(a) does not hold at the loop head after the last iteration: {shown:?}"
    );
}

#[test]
fn head_requires_nonempty_rejected_without_guard() {
    // head(a) with a possibly-empty array must fail.
    let mut cs = ConstraintSet::new();
    let mut env = CEnv::new();
    env.bind("a", Sort::Ref, Pred::True);
    cs.push_sub(
        env,
        Pred::vv_eq(Term::int(0)),
        Pred::cmp(CmpOp::Lt, Term::vv(), Term::len_of(Term::var("a"))),
        Sort::Int,
        &Blame::synthetic("head unguarded"),
    );
    let mut smt = Solver::new();
    let r = solve(&cs, &mut smt);
    assert_eq!(r.failures.len(), 1);
}

#[test]
fn head_accepted_with_branch_guard() {
    // Path sensitivity: under 0 < len(a) the access verifies (§2.1.1).
    let mut cs = ConstraintSet::new();
    let mut env = CEnv::new();
    env.bind("a", Sort::Ref, Pred::True);
    env.guard(Pred::cmp(
        CmpOp::Lt,
        Term::int(0),
        Term::len_of(Term::var("a")),
    ));
    cs.push_sub(
        env,
        Pred::vv_eq(Term::int(0)),
        Pred::and(vec![
            Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
            Pred::cmp(CmpOp::Lt, Term::vv(), Term::len_of(Term::var("a"))),
        ]),
        Sort::Int,
        &Blame::synthetic("head guarded"),
    );
    let mut smt = Solver::new();
    let r = solve(&cs, &mut smt);
    assert!(r.failures.is_empty(), "{:?}", r.failures);
}

#[test]
fn polymorphic_instantiation_flow() {
    // §2.2.1: B ↦ κ_B with number base; the instantiation at the minIndex
    // call site must solve to idx⟨a⟩.
    let mut cs = ConstraintSet::new();
    let scope = vec![(rsc_logic::Sym::from("a"), Sort::Ref)];
    let k_b = cs.fresh_kvar(Sort::Int, scope, "B instantiation");
    let kapp = Pred::KVar(k_b, Subst::new());

    // Γ ⊢ {ν = 0} ⊑ κ_B under else-guard 0 < len(a).
    let mut g = CEnv::new();
    g.bind("a", Sort::Ref, Pred::True);
    g.guard(Pred::cmp(
        CmpOp::Lt,
        Term::int(0),
        Term::len_of(Term::var("a")),
    ));
    cs.push_sub(
        g,
        Pred::vv_eq(Term::int(0)),
        kapp.clone(),
        Sort::Int,
        &Blame::synthetic("x=0 flows to B"),
    );

    // Γ_step ⊢ idx⟨a⟩ ⊑ κ_B  (i flows to the output).
    let mut gs = CEnv::new();
    gs.bind("a", Sort::Ref, Pred::True);
    cs.push_sub(
        gs.clone(),
        Pred::and(vec![
            Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
            Pred::cmp(CmpOp::Lt, Term::vv(), Term::len_of(Term::var("a"))),
        ]),
        kapp.clone(),
        Sort::Int,
        &Blame::synthetic("i flows to B"),
    );

    // Γ_step ⊢ κ_B ⊑ idx⟨a⟩  (min indexes into a).
    cs.push_sub(
        gs,
        kapp,
        Pred::and(vec![
            Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
            Pred::cmp(CmpOp::Lt, Term::vv(), Term::len_of(Term::var("a"))),
        ]),
        Sort::Int,
        &Blame::synthetic("min indexes a"),
    );

    let mut smt = Solver::new();
    let r = solve(&cs, &mut smt);
    assert!(
        r.failures.is_empty(),
        "minIndex should verify: {:?}",
        r.failures
    );
    let shown: Vec<String> = r.solution.of(k_b).iter().map(|p| p.to_string()).collect();
    assert!(shown.contains(&"0 <= v".to_string()), "{shown:?}");
    assert!(shown.contains(&"v < len(a)".to_string()), "{shown:?}");
}
