//! # rsc-absint
//!
//! An abstract-interpretation pre-pass for the RSC refinement checker:
//! a worklist-based forward dataflow analysis over the IRSC SSA form,
//! computing a reduced product of
//!
//! * **intervals** over `i64` with ±∞ (widening at loop heads,
//!   narrowing on descent),
//! * **congruences** `v ≡ r (mod m)`, and
//! * **definite nullness / truthiness**,
//!
//! per SSA value per function unit ([`analyze_program`]).
//!
//! The results feed two consumers with *different* soundness budgets:
//!
//! 1. **Obligation discharge** ([`entailed_by`]): before an atomic
//!    subtyping obligation reaches the SMT solver, the checker asks
//!    whether the obligation's own hypotheses abstractly entail its
//!    goal. A `true` answer skips the SMT query. The pre-pass may only
//!    *discharge* obligations, never report errors, and every discharge
//!    must be re-derivable by the solver from the same hypotheses — so
//!    the entailment procedure is deliberately confined to the solver's
//!    provable fragment (linear arithmetic with integer tightening,
//!    ground EUF equalities) and the congruence domain is excluded.
//!    The `rsc fuzz` differential oracle replays discharged obligations
//!    through the solver to enforce the contract.
//! 2. **Lints** ([`lint_program`]): advisory warnings with stable codes
//!    L0001–L0004 (unreachable branch, tautological guard, dead
//!    refinement, always-out-of-bounds index). Lints may use the full
//!    product including congruences, and never affect type errors.

#![warn(missing_docs)]

pub mod domain;
pub mod engine;
pub mod entail;
pub mod lint;

pub use domain::{AbsVal, Congruence, Interval, Nullness, Truth};
pub use engine::{analyze_body, analyze_program, AbsEnv, BodyFacts, ProgramFacts};
pub use entail::{entailed_by, FactEnv, MAX_INT_DISEQS};
pub use lint::{lint_program, Lint};
