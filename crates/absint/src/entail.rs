//! Abstract entailment over [`rsc_logic`] predicates: the discharge
//! decision procedure of the pre-solve tier.
//!
//! [`FactEnv::assume`] folds a hypothesis conjunction into per-atom
//! abstract values (atoms are variables and `len(x)` applications);
//! [`FactEnv::entails`] then decides whether a goal predicate holds in
//! every concrete state the abstract one describes.
//!
//! **Soundness contract (discharge-only).** A discharge must be
//! re-derivable by the SMT solver from the *same* hypotheses, so this
//! module deliberately stays inside the solver's provable fragment:
//!
//! * interval facts come only from linear constraints (the solver's
//!   Fourier–Motzkin core with per-row integer tightening re-derives
//!   every interval bound produced here);
//! * `div`/`mod` and variable·variable products are uninterpreted at
//!   the SMT layer, so they are *not linearizable* here — the congruence
//!   domain never feeds an entailment answer (it powers lints only, see
//!   `crate::lint`);
//! * nullness facts mirror ground EUF equalities exactly: `x = nullv`
//!   and `x ≠ nullv` are tracked per union-find class, and no fact ever
//!   assumes `nullv ≠ undefv` (EUF cannot refute their equality);
//! * hypotheses with many integer disequalities are rejected outright
//!   ([`MAX_INT_DISEQS`]): the solver's disequality case-split cap can
//!   make it give up on conjunctions a relational domain would still
//!   decide, and a discharge the solver cannot replay is a bug.
//!
//! Anything the module cannot track is ignored on the assumption side
//! (weaker hypotheses can only make entailment harder) and unprovable on
//! the goal side — both conservative directions.

use std::collections::HashMap;

use rsc_logic::{BinOp, CmpOp, Pred, Sort, Sym, Term};

use crate::domain::Interval;

/// Hypothesis sets with more integer disequalities than this are never
/// discharged: `rsc_smt`'s Fourier–Motzkin disequality splitting is
/// capped (it answers `Feasible`, i.e. *unproven*, beyond 14 splits),
/// and a discharge must never outrun the solver.
pub const MAX_INT_DISEQS: usize = 12;

/// A numeric atom the interval component tracks.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Atom {
    /// A program variable.
    Var(Sym),
    /// `len(x)`.
    Len(Sym),
}

/// A linear combination `Σ cᵢ·atomᵢ + konst` (i128 to dodge overflow).
#[derive(Clone, Debug, Default, PartialEq)]
struct Lin {
    coeffs: Vec<(Atom, i128)>,
    konst: i128,
}

impl Lin {
    fn konst(c: i128) -> Lin {
        Lin {
            coeffs: Vec::new(),
            konst: c,
        }
    }

    fn atom(a: Atom) -> Lin {
        Lin {
            coeffs: vec![(a, 1)],
            konst: 0,
        }
    }

    fn add_term(&mut self, a: Atom, c: i128) {
        if let Some(e) = self.coeffs.iter_mut().find(|(b, _)| *b == a) {
            e.1 += c;
        } else {
            self.coeffs.push((a, c));
        }
        self.coeffs.retain(|(_, c)| *c != 0);
    }

    fn add(mut self, other: &Lin) -> Lin {
        for (a, c) in &other.coeffs {
            self.add_term(a.clone(), *c);
        }
        self.konst += other.konst;
        self
    }

    fn scale(mut self, k: i128) -> Lin {
        if k == 0 {
            return Lin::konst(0);
        }
        for e in &mut self.coeffs {
            e.1 *= k;
        }
        self.konst *= k;
        self
    }
}

/// Per-variable nullness knowledge: whether the class is known equal /
/// known disequal to `nullv` and `undefv` respectively.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct NullFacts {
    eq_null: Option<bool>,
    eq_undef: Option<bool>,
}

impl NullFacts {
    /// Merges EUF-equal classes; `None` on contradiction.
    fn merge(self, other: NullFacts) -> Option<NullFacts> {
        let m = |a: Option<bool>, b: Option<bool>| match (a, b) {
            (Some(x), Some(y)) if x != y => Err(()),
            (Some(x), _) | (_, Some(x)) => Ok(Some(x)),
            _ => Ok(None),
        };
        Some(NullFacts {
            eq_null: m(self.eq_null, other.eq_null).ok()?,
            eq_undef: m(self.eq_undef, other.eq_undef).ok()?,
        })
    }
}

/// The abstract state of one obligation's hypotheses.
#[derive(Clone, Debug)]
pub struct FactEnv {
    sorts: HashMap<Sym, Sort>,
    itvs: HashMap<Atom, Interval>,
    truths: HashMap<Sym, bool>,
    nulls: HashMap<Sym, NullFacts>,
    /// Union-find over reference variables (ground EUF equalities).
    parents: HashMap<Sym, Sym>,
    /// Unit-coefficient equality substitutions `x ↦ Σ cᵢ·atomᵢ + k`,
    /// mirroring the solver's Gaussian elimination step. Acyclic by
    /// construction: a recorded right-hand side is always fully
    /// expanded, so it never mentions an already-substituted variable.
    substs: HashMap<Sym, Lin>,
    /// Assumed inequality rows, each normalized to `l ≤ 0` and fully
    /// expanded. Used for row subsumption: a goal `g ≤ 0` holds when
    /// `g − r` is interval-bounded by 0 for some row `r` (a Farkas
    /// combination Fourier–Motzkin re-derives).
    rows: Vec<Lin>,
    bottom: bool,
    int_diseqs: usize,
}

impl FactEnv {
    /// A ⊤ environment knowing only the binder sorts.
    pub fn new(binders: &[(Sym, Sort)]) -> FactEnv {
        FactEnv {
            sorts: binders.iter().cloned().collect(),
            itvs: HashMap::new(),
            truths: HashMap::new(),
            nulls: HashMap::new(),
            parents: HashMap::new(),
            substs: HashMap::new(),
            rows: Vec::new(),
            bottom: false,
            int_diseqs: 0,
        }
    }

    /// True when the hypotheses were found contradictory (the program
    /// point is unreachable; every goal is entailed).
    pub fn is_bottom(&self) -> bool {
        self.bottom
    }

    /// The number of integer disequality hypotheses seen so far.
    pub fn int_diseqs(&self) -> usize {
        self.int_diseqs
    }

    fn root(&mut self, x: &Sym) -> Sym {
        let mut r = x.clone();
        while let Some(p) = self.parents.get(&r) {
            if p == &r {
                break;
            }
            r = p.clone();
        }
        // Path compression.
        let mut cur = x.clone();
        while let Some(p) = self.parents.get(&cur).cloned() {
            if p == r {
                break;
            }
            self.parents.insert(cur.clone(), r.clone());
            cur = p;
        }
        r
    }

    fn union(&mut self, x: &Sym, y: &Sym) {
        let rx = self.root(x);
        let ry = self.root(y);
        if rx == ry {
            return;
        }
        let fx = self.nulls.remove(&rx).unwrap_or_default();
        let fy = self.nulls.remove(&ry).unwrap_or_default();
        match fx.merge(fy) {
            Some(f) => {
                self.nulls.insert(ry.clone(), f);
            }
            None => {
                self.bottom = true;
                return;
            }
        }
        // Congruence over `len`: merged classes share one length.
        let lx = self.itvs.remove(&Atom::Len(rx.clone()));
        if let Some(lx) = lx {
            let e = self
                .itvs
                .entry(Atom::Len(ry.clone()))
                .or_insert(Interval::TOP);
            *e = e.meet(&lx);
            if e.is_empty() {
                self.bottom = true;
            }
        }
        self.parents.insert(rx, ry);
    }

    fn sort_of(&self, t: &Term) -> Option<Sort> {
        match t {
            Term::Var(x) => self.sorts.get(x).copied(),
            Term::IntLit(_) | Term::Neg(_) => Some(Sort::Int),
            Term::BoolLit(_) => Some(Sort::Bool),
            Term::StrLit(_) => Some(Sort::Str),
            Term::BvLit(_) => Some(Sort::Bv32),
            Term::App(f, args) if f.as_str() == "len" && args.len() == 1 => Some(Sort::Int),
            Term::App(f, args) if is_null_const(f, args) => Some(Sort::Ref),
            Term::Bin(BinOp::BvAnd | BinOp::BvOr, ..) => Some(Sort::Bv32),
            Term::Bin(..) => Some(Sort::Int),
            _ => None,
        }
    }

    /// Linearizes an integer term over tracked atoms. `None` = contains
    /// something the solver leaves uninterpreted (or untracked).
    fn lin(&mut self, t: &Term) -> Option<Lin> {
        match t {
            Term::IntLit(n) => Some(Lin::konst(*n as i128)),
            Term::Var(x) if self.sorts.get(x) == Some(&Sort::Int) => {
                Some(Lin::atom(Atom::Var(x.clone())))
            }
            Term::Neg(a) => Some(self.lin(a)?.scale(-1)),
            Term::App(f, args) if f.as_str() == "len" && args.len() == 1 => match &args[0] {
                Term::Var(x) if self.sorts.get(x) == Some(&Sort::Ref) => {
                    let r = self.root(x);
                    Some(Lin::atom(Atom::Len(r)))
                }
                _ => None,
            },
            Term::Bin(op, a, b) => {
                let la = self.lin(a)?;
                let lb = self.lin(b)?;
                match op {
                    BinOp::Add => Some(la.add(&lb)),
                    BinOp::Sub => Some(la.add(&lb.scale(-1))),
                    BinOp::Mul => {
                        if la.coeffs.is_empty() {
                            Some(lb.scale(la.konst))
                        } else if lb.coeffs.is_empty() {
                            Some(la.scale(lb.konst))
                        } else {
                            None // nonlinear: uninterpreted at the SMT layer
                        }
                    }
                    // `div`/`mod` are uninterpreted unless both sides are
                    // constants, in which case `Term::bin` already folded.
                    BinOp::Div | BinOp::Mod | BinOp::BvAnd | BinOp::BvOr => None,
                }
            }
            _ => None,
        }
    }

    fn itv_of(&self, a: &Atom) -> Interval {
        self.itvs.get(a).copied().unwrap_or(Interval::TOP)
    }

    /// Rewrites a combination through the equality substitutions until
    /// no substituted variable remains. Terminates because the
    /// substitution graph is acyclic; the iteration cap is a backstop.
    fn expand(&self, mut l: Lin) -> Lin {
        for _ in 0..64 {
            let Some(pos) = l
                .coeffs
                .iter()
                .position(|(a, _)| matches!(a, Atom::Var(x) if self.substs.contains_key(x)))
            else {
                return l;
            };
            let (atom, c) = l.coeffs.remove(pos);
            let Atom::Var(x) = atom else { unreachable!() };
            let rhs = self.substs[&x].clone();
            l = l.add(&rhs.scale(c));
        }
        l
    }

    /// Records `l ≤ 0` as a known row and refines atom intervals from
    /// it. `l` must already be expanded.
    fn assume_le_row(&mut self, l: Lin) {
        if !l.coeffs.is_empty() && !self.rows.contains(&l) {
            self.rows.push(l.clone());
        }
        self.refine_le(&l);
    }

    /// Records a unit-coefficient equality `d = 0` as a substitution
    /// (the solver's Gaussian elimination step). `d` must be expanded.
    fn record_subst(&mut self, d: &Lin) {
        let Some((atom, c)) = d
            .coeffs
            .iter()
            .find(|(a, c)| {
                (*c == 1 || *c == -1) && matches!(a, Atom::Var(x) if !self.substs.contains_key(x))
            })
            .cloned()
        else {
            return;
        };
        let Atom::Var(x) = atom else { return };
        // c·x + rest = 0  ⇒  x = rest·(−1/c).
        let mut rest = d.clone();
        rest.coeffs.retain(|(a, _)| *a != Atom::Var(x.clone()));
        let rhs = rest.scale(-c);
        self.substs.insert(x, rhs);
    }

    /// Interval bounds of a linear combination.
    fn eval(&self, l: &Lin) -> (Option<i128>, Option<i128>) {
        let mut lo = Some(l.konst);
        let mut hi = Some(l.konst);
        for (a, c) in &l.coeffs {
            let itv = self.itv_of(a);
            let (alo, ahi) = if *c >= 0 {
                (itv.lo, itv.hi)
            } else {
                (itv.hi, itv.lo)
            };
            lo = match (lo, alo) {
                (Some(acc), Some(b)) => Some(acc + c * b as i128),
                _ => None,
            };
            hi = match (hi, ahi) {
                (Some(acc), Some(b)) => Some(acc + c * b as i128),
                _ => None,
            };
        }
        (lo, hi)
    }

    /// Assumes `l ≤ 0`, refining every atom's interval.
    ///
    /// Rounding discipline: the solver's Fourier–Motzkin core only
    /// applies gcd-tightening per *row* (`tighten_le`), and its
    /// fill-in-driven elimination order decides which derived rows
    /// exist — an integer cut the interval view can see (divide a
    /// multi-variable row's residual bound by a non-unit coefficient
    /// and floor) is not guaranteed to be derived by any particular
    /// elimination order, so flooring here would discharge obligations
    /// the solver cannot replay. We therefore floor only when the
    /// division is exact (the bound is rational-FM-derivable as is) or
    /// the row has a single variable (the solver tightens input rows
    /// with the identical `⌊b/c⌋`); otherwise the fractional bound is
    /// relaxed outward to the enclosing integer, which every rational
    /// derivation also admits.
    fn refine_le(&mut self, l: &Lin) {
        if l.coeffs.is_empty() {
            if l.konst > 0 {
                self.bottom = true;
            }
            return;
        }
        let single_var = l.coeffs.len() == 1;
        for i in 0..l.coeffs.len() {
            let (atom, c) = l.coeffs[i].clone();
            // c·x ≤ -konst - Σ_{j≠i} min(c_j·x_j)
            let mut bound = Some(-l.konst);
            for (j, (a, cj)) in l.coeffs.iter().enumerate() {
                if j == i {
                    continue;
                }
                let itv = self.itv_of(a);
                let contrib = if *cj >= 0 { itv.lo } else { itv.hi };
                bound = match (bound, contrib) {
                    (Some(b), Some(v)) => Some(b - cj * v as i128),
                    _ => None,
                };
            }
            let Some(b) = bound else { continue };
            let exact = b.rem_euclid(c.abs()) == 0;
            let refined = if c > 0 {
                let q = b.div_euclid(c);
                Interval {
                    lo: None,
                    // Non-exact multi-var division: relax to ⌈b/c⌉.
                    hi: to_i64(if exact || single_var { q } else { q + 1 }),
                }
            } else {
                // c < 0: x ≥ ⌈b/c⌉ = -⌊b/(-c)⌋; non-exact multi-var
                // division relaxes to ⌊b/c⌋ = -⌊b/(-c)⌋ - 1.
                let q = -b.div_euclid(-c);
                Interval {
                    lo: to_i64(if exact || single_var { q } else { q - 1 }),
                    hi: None,
                }
            };
            if refined.lo.is_none() && refined.hi.is_none() {
                continue;
            }
            let e = self.itvs.entry(atom).or_insert(Interval::TOP);
            *e = e.meet(&refined);
            if e.is_empty() {
                self.bottom = true;
                return;
            }
        }
    }

    fn assume_int_cmp(&mut self, op: CmpOp, a: &Term, b: &Term) {
        let Some(la) = self.lin(a) else { return };
        let Some(lb) = self.lin(b) else { return };
        let d = self.expand(la.add(&lb.clone().scale(-1)));
        match op {
            CmpOp::Le => self.assume_le_row(d),
            CmpOp::Lt => self.assume_le_row(d.add(&Lin::konst(1))),
            CmpOp::Ge => self.assume_le_row(d.scale(-1)),
            CmpOp::Gt => self.assume_le_row(d.scale(-1).add(&Lin::konst(1))),
            CmpOp::Eq => {
                self.assume_le_row(d.clone());
                self.assume_le_row(d.clone().scale(-1));
                self.record_subst(&d);
            }
            CmpOp::Ne => {
                self.int_diseqs += 1;
                // Endpoint shaving: x ≠ k with x ∈ [k, h] tightens to
                // [k+1, h] (one disequality split for the solver).
                if d.coeffs.len() == 1 {
                    let (atom, c) = d.coeffs[0].clone();
                    if (c == 1 || c == -1) && d.konst % c == 0 {
                        let k = to_i64(-d.konst / c);
                        if let Some(k) = k {
                            let e = self.itvs.entry(atom).or_insert(Interval::TOP);
                            if e.lo == Some(k) {
                                e.lo = k.checked_add(1);
                            } else if e.hi == Some(k) {
                                e.hi = k.checked_sub(1);
                            }
                            if e.is_empty() {
                                self.bottom = true;
                            }
                        }
                    } else if self.eval(&d) == (Some(0), Some(0)) {
                        self.bottom = true;
                    }
                } else if self.eval(&d) == (Some(0), Some(0)) {
                    self.bottom = true;
                }
            }
        }
    }

    fn assume_ref_cmp(&mut self, op: CmpOp, a: &Term, b: &Term) {
        let null_kind = |t: &Term| match t {
            Term::App(f, args) if is_null_const(f, args) => Some(f.as_str() == "nullv"),
            _ => None,
        };
        match (a, b, op) {
            (Term::Var(x), Term::Var(y), CmpOp::Eq) => self.union(x, y),
            (Term::Var(x), t, _) | (t, Term::Var(x), _) if null_kind(t).is_some() => {
                let is_null = null_kind(t).unwrap();
                let eq = op == CmpOp::Eq;
                let r = self.root(x);
                let f = self.nulls.entry(r).or_default();
                let slot = if is_null {
                    &mut f.eq_null
                } else {
                    &mut f.eq_undef
                };
                match slot {
                    Some(prev) if *prev != eq => self.bottom = true,
                    _ => *slot = Some(eq),
                }
            }
            _ => {}
        }
    }

    /// Folds one hypothesis into the environment. Unknown shapes are
    /// ignored (conservative: fewer facts, harder entailment).
    pub fn assume(&mut self, p: &Pred) {
        if self.bottom {
            return;
        }
        match p {
            Pred::True | Pred::KVar(..) => {}
            Pred::False => self.bottom = true,
            Pred::And(ps) => {
                for q in ps {
                    self.assume(q);
                }
            }
            Pred::Or(ps) => {
                if ps.is_empty() {
                    self.bottom = true;
                    return;
                }
                // Join of the per-branch refinements (propositional case
                // split, which the SAT layer performs completely).
                let mut branches: Vec<FactEnv> = Vec::with_capacity(ps.len());
                for q in ps {
                    let mut b = self.clone();
                    b.assume(q);
                    branches.push(b);
                }
                let live: Vec<&FactEnv> = branches.iter().filter(|b| !b.bottom).collect();
                let diseqs = branches.iter().map(|b| b.int_diseqs).max().unwrap_or(0);
                match live.split_first() {
                    None => self.bottom = true,
                    Some((first, rest)) => {
                        let mut joined = (*first).clone();
                        for b in rest {
                            joined.join_with(b);
                        }
                        *self = joined;
                    }
                }
                self.int_diseqs = self.int_diseqs.max(diseqs);
            }
            Pred::Not(q) => match &**q {
                Pred::Cmp(op, a, b) => self.assume(&Pred::Cmp(op.negate(), a.clone(), b.clone())),
                Pred::TermPred(Term::Var(x)) if self.sorts.get(x) == Some(&Sort::Bool) => {
                    self.set_truth(x.clone(), false)
                }
                Pred::Not(r) => self.assume(r),
                Pred::Or(ps) => {
                    for q in ps {
                        self.assume(&Pred::not(q.clone()));
                    }
                }
                _ => {}
            },
            Pred::Cmp(op, a, b) => {
                match (self.sort_of(a), self.sort_of(b)) {
                    (Some(Sort::Int), Some(Sort::Int)) => self.assume_int_cmp(*op, a, b),
                    (Some(Sort::Ref), Some(Sort::Ref)) if matches!(op, CmpOp::Eq | CmpOp::Ne) => {
                        self.assume_ref_cmp(*op, a, b)
                    }
                    (Some(Sort::Bool), Some(Sort::Bool)) => {
                        // b = true / b ≠ false etc. on a variable.
                        if let (Term::Var(x), Term::BoolLit(c)) | (Term::BoolLit(c), Term::Var(x)) =
                            (a, b)
                        {
                            let val = match op {
                                CmpOp::Eq => *c,
                                CmpOp::Ne => !*c,
                                _ => return,
                            };
                            self.set_truth(x.clone(), val);
                        }
                    }
                    _ => {}
                }
            }
            Pred::TermPred(t) => match t {
                Term::Var(x) if self.sorts.get(x) == Some(&Sort::Bool) => {
                    self.set_truth(x.clone(), true)
                }
                Term::BoolLit(false) => self.bottom = true,
                _ => {}
            },
            Pred::Imp(..) | Pred::Iff(..) | Pred::App(..) => {}
        }
    }

    fn set_truth(&mut self, x: Sym, v: bool) {
        match self.truths.get(&x) {
            Some(prev) if *prev != v => self.bottom = true,
            _ => {
                self.truths.insert(x, v);
            }
        }
    }

    /// Joins another environment into this one (used for `Or`
    /// hypotheses): keeps only facts both sides agree on.
    fn join_with(&mut self, other: &FactEnv) {
        if other.bottom {
            return;
        }
        if self.bottom {
            *self = other.clone();
            return;
        }
        self.itvs = self
            .itvs
            .iter()
            .filter_map(|(a, itv)| {
                // Atoms under union-find may have different roots per
                // branch; only keep facts whose atom exists identically.
                other.itvs.get(a).map(|o| (a.clone(), itv.join(o)))
            })
            .collect();
        self.truths = self
            .truths
            .iter()
            .filter(|(x, v)| other.truths.get(*x) == Some(v))
            .map(|(x, v)| (x.clone(), *v))
            .collect();
        // Nullness facts survive only when both branches agree under
        // both branch's union-finds; conservatively keep facts attached
        // to identical roots with identical values.
        self.nulls = self
            .nulls
            .iter()
            .filter_map(|(x, f)| {
                let of = other.nulls.get(x)?;
                let keep = NullFacts {
                    eq_null: if f.eq_null == of.eq_null {
                        f.eq_null
                    } else {
                        None
                    },
                    eq_undef: if f.eq_undef == of.eq_undef {
                        f.eq_undef
                    } else {
                        None
                    },
                };
                if keep == NullFacts::default() {
                    None
                } else {
                    Some((x.clone(), keep))
                }
            })
            .collect();
        // Keep only the common aliasing (pairs with equal roots in both).
        let pairs: Vec<(Sym, Sym)> = self
            .parents
            .iter()
            .map(|(a, b)| (a.clone(), b.clone()))
            .collect();
        let mut o = other.clone();
        self.parents = pairs
            .into_iter()
            .filter(|(a, b)| o.root(a) == o.root(b))
            .collect();
        // Rows and substitutions survive only when both branches assumed
        // the identical fact.
        self.rows.retain(|r| other.rows.contains(r));
        self.substs.retain(|x, l| other.substs.get(x) == Some(l));
        self.int_diseqs = self.int_diseqs.max(other.int_diseqs);
    }

    /// Decides whether the hypotheses entail `goal`. `false` means
    /// "unproven", never "refuted".
    pub fn entails(&mut self, goal: &Pred) -> bool {
        if self.bottom {
            return true;
        }
        match goal {
            Pred::True => true,
            Pred::False => false,
            Pred::And(ps) => ps.iter().all(|p| self.entails(p)),
            Pred::Or(ps) => ps.iter().any(|p| self.entails(p)),
            Pred::Not(q) => match &**q {
                Pred::Cmp(op, a, b) => self.entails(&Pred::Cmp(op.negate(), a.clone(), b.clone())),
                Pred::TermPred(Term::Var(x)) if self.sorts.get(x) == Some(&Sort::Bool) => {
                    self.truths.get(x) == Some(&false)
                }
                Pred::Not(r) => self.entails(r),
                _ => false,
            },
            Pred::Cmp(op, a, b) => match (self.sort_of(a), self.sort_of(b)) {
                (Some(Sort::Int), Some(Sort::Int)) => self.entails_int_cmp(*op, a, b),
                (Some(Sort::Ref), Some(Sort::Ref)) => self.entails_ref_cmp(*op, a, b),
                (Some(Sort::Bool), Some(Sort::Bool)) => {
                    if let (Term::Var(x), Term::BoolLit(c)) | (Term::BoolLit(c), Term::Var(x)) =
                        (a, b)
                    {
                        let want = match op {
                            CmpOp::Eq => *c,
                            CmpOp::Ne => !*c,
                            _ => return false,
                        };
                        return self.truths.get(x) == Some(&want);
                    }
                    false
                }
                _ => false,
            },
            Pred::TermPred(t) => match t {
                Term::Var(x) if self.sorts.get(x) == Some(&Sort::Bool) => {
                    self.truths.get(x) == Some(&true)
                }
                Term::BoolLit(true) => true,
                _ => false,
            },
            Pred::Imp(a, b) => {
                // Prove by assuming the antecedent (propositionally
                // complete at the SAT layer).
                let mut sub = self.clone();
                sub.assume(a);
                sub.entails(b)
            }
            Pred::Iff(..) | Pred::KVar(..) | Pred::App(..) => false,
        }
    }

    /// Proves `d ≤ 0`: directly by interval evaluation, or by
    /// subsumption against a known row (`d − r` bounded by 0 — a
    /// positive Farkas combination the solver's Fourier–Motzkin core
    /// also derives).
    fn proves_le(&mut self, d: &Lin) -> bool {
        if matches!(self.eval(d).1, Some(h) if h <= 0) {
            return true;
        }
        for i in 0..self.rows.len() {
            let row = self.rows[i].clone();
            let diff = self.expand(d.clone().add(&row.scale(-1)));
            if matches!(self.eval(&diff).1, Some(h) if h <= 0) {
                return true;
            }
        }
        false
    }

    fn entails_int_cmp(&mut self, op: CmpOp, a: &Term, b: &Term) -> bool {
        let Some(la) = self.lin(a) else { return false };
        let Some(lb) = self.lin(b) else { return false };
        let d = self.expand(la.add(&lb.scale(-1)));
        match op {
            CmpOp::Le => self.proves_le(&d),
            CmpOp::Lt => self.proves_le(&d.clone().add(&Lin::konst(1))),
            CmpOp::Ge => self.proves_le(&d.clone().scale(-1)),
            CmpOp::Gt => self.proves_le(&d.clone().scale(-1).add(&Lin::konst(1))),
            CmpOp::Eq => self.proves_le(&d.clone()) && self.proves_le(&d.scale(-1)),
            CmpOp::Ne => {
                self.proves_le(&d.clone().add(&Lin::konst(1)))
                    || self.proves_le(&d.scale(-1).add(&Lin::konst(1)))
            }
        }
    }

    fn entails_ref_cmp(&mut self, op: CmpOp, a: &Term, b: &Term) -> bool {
        let null_kind = |t: &Term| match t {
            Term::App(f, args) if is_null_const(f, args) => Some(f.as_str() == "nullv"),
            _ => None,
        };
        match (a, b) {
            (Term::Var(x), Term::Var(y)) => match op {
                CmpOp::Eq => self.root(x) == self.root(y),
                CmpOp::Ne => {
                    // x = c, y ≠ c for the same null constant c.
                    let rx = self.root(x);
                    let ry = self.root(y);
                    let fx = self.nulls.get(&rx).copied().unwrap_or_default();
                    let fy = self.nulls.get(&ry).copied().unwrap_or_default();
                    matches!((fx.eq_null, fy.eq_null), (Some(true), Some(false)))
                        || matches!((fx.eq_null, fy.eq_null), (Some(false), Some(true)))
                        || matches!((fx.eq_undef, fy.eq_undef), (Some(true), Some(false)))
                        || matches!((fx.eq_undef, fy.eq_undef), (Some(false), Some(true)))
                }
                _ => false,
            },
            (Term::Var(x), t) | (t, Term::Var(x)) if null_kind(t).is_some() => {
                let is_null = null_kind(t).unwrap();
                let r = self.root(x);
                let f = self.nulls.get(&r).copied().unwrap_or_default();
                let known = if is_null { f.eq_null } else { f.eq_undef };
                match op {
                    CmpOp::Eq => known == Some(true),
                    CmpOp::Ne => known == Some(false),
                    _ => false,
                }
            }
            _ => false,
        }
    }
}

fn is_null_const(f: &Sym, args: &[Term]) -> bool {
    args.is_empty() && matches!(f.as_str(), "nullv" | "undefv")
}

fn to_i64(v: i128) -> Option<i64> {
    i64::try_from(v).ok()
}

/// The discharge decision: do `hyps` abstractly entail `goal`, within
/// the solver-replayable fragment? Runs the hypothesis conjunction to a
/// local fixpoint (relational chains like `x = y ∧ 0 ≤ x` need a second
/// pass to reach `y`), then asks for the goal.
pub fn entailed_by(binders: &[(Sym, Sort)], hyps: &[Pred], goal: &Pred) -> bool {
    let mut env = FactEnv::new(binders);
    // Up to three passes over the hypotheses: assume-order independence
    // for short chains, deterministic by construction.
    for _ in 0..3 {
        let before = (
            env.itvs.clone(),
            env.rows.len(),
            env.substs.len(),
            env.truths.len(),
            env.nulls.len(),
            env.bottom,
        );
        env.int_diseqs = 0;
        for h in hyps {
            env.assume(h);
        }
        if env.int_diseqs > MAX_INT_DISEQS {
            return false;
        }
        if env.bottom {
            break;
        }
        let after = (
            env.itvs.clone(),
            env.rows.len(),
            env.substs.len(),
            env.truths.len(),
            env.nulls.len(),
            env.bottom,
        );
        if after == before {
            break;
        }
    }
    env.entails(goal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_logic::Term as T;

    fn int_binders() -> Vec<(Sym, Sort)> {
        vec![
            (Sym::from("x"), Sort::Int),
            (Sym::from("y"), Sort::Int),
            (Sym::from("v"), Sort::Int),
        ]
    }

    #[test]
    fn interval_discharge_basics() {
        let b = int_binders();
        // x = 0 ∧ v = x + 1 ⊨ 0 < v
        let hyps = vec![
            Pred::cmp(CmpOp::Eq, T::var("x"), T::int(0)),
            Pred::cmp(CmpOp::Eq, T::vv(), T::add(T::var("x"), T::int(1))),
        ];
        assert!(entailed_by(
            &b,
            &hyps,
            &Pred::cmp(CmpOp::Lt, T::int(0), T::vv())
        ));
        assert!(!entailed_by(
            &b,
            &hyps,
            &Pred::cmp(CmpOp::Lt, T::int(1), T::vv())
        ));
    }

    #[test]
    fn tightening_matches_integer_division() {
        let b = int_binders();
        // 2x ≤ 7 ⊨ x ≤ 3 (integer tightening).
        let hyps = vec![Pred::cmp(
            CmpOp::Le,
            T::mul(T::int(2), T::var("x")),
            T::int(7),
        )];
        assert!(entailed_by(
            &b,
            &hyps,
            &Pred::cmp(CmpOp::Le, T::var("x"), T::int(3))
        ));
    }

    #[test]
    fn nonlinear_and_mod_never_discharge() {
        let b = int_binders();
        // x·y = 4 proves nothing here (uninterpreted at the SMT layer).
        let hyps = vec![Pred::cmp(
            CmpOp::Eq,
            T::mul(T::var("x"), T::var("y")),
            T::int(4),
        )];
        assert!(!entailed_by(
            &b,
            &hyps,
            &Pred::cmp(CmpOp::Ne, T::mul(T::var("x"), T::var("y")), T::int(5)),
        ));
        // x mod 2 = 0 must not feed entailment either.
        let hyps = vec![Pred::cmp(
            CmpOp::Eq,
            T::bin(rsc_logic::BinOp::Mod, T::var("x"), T::int(2)),
            T::int(0),
        )];
        assert!(!entailed_by(
            &b,
            &hyps,
            &Pred::cmp(CmpOp::Ne, T::var("x"), T::int(3))
        ));
    }

    #[test]
    fn contradictory_hypotheses_entail_everything() {
        let b = int_binders();
        let hyps = vec![
            Pred::cmp(CmpOp::Lt, T::var("x"), T::int(0)),
            Pred::cmp(CmpOp::Gt, T::var("x"), T::int(0)),
        ];
        assert!(entailed_by(&b, &hyps, &Pred::False));
    }

    #[test]
    fn nullness_through_equalities() {
        let b = vec![(Sym::from("p"), Sort::Ref), (Sym::from("v"), Sort::Ref)];
        let hyps = vec![
            Pred::cmp(CmpOp::Ne, T::var("p"), T::app("nullv", vec![])),
            Pred::cmp(CmpOp::Eq, T::vv(), T::var("p")),
        ];
        assert!(entailed_by(
            &b,
            &hyps,
            &Pred::cmp(CmpOp::Ne, T::vv(), T::app("nullv", vec![])),
        ));
        // EUF cannot refute nullv = undefv, so neither do we.
        assert!(!entailed_by(
            &b,
            &hyps,
            &Pred::cmp(CmpOp::Ne, T::vv(), T::app("undefv", vec![])),
        ));
    }

    #[test]
    fn len_atoms_flow_through_axioms() {
        let b = vec![
            (Sym::from("a"), Sort::Ref),
            (Sym::from("i"), Sort::Int),
            (Sym::from("v"), Sort::Int),
        ];
        // 0 ≤ len(a) ∧ i < len(a) ∧ 0 ≤ i ∧ v = i ⊨ 0 ≤ v ∧ v < len(a)
        let len_a = T::len_of(T::var("a"));
        let hyps = vec![
            Pred::cmp(CmpOp::Le, T::int(0), len_a.clone()),
            Pred::cmp(CmpOp::Lt, T::var("i"), len_a.clone()),
            Pred::cmp(CmpOp::Le, T::int(0), T::var("i")),
            Pred::cmp(CmpOp::Eq, T::vv(), T::var("i")),
        ];
        assert!(entailed_by(
            &b,
            &hyps,
            &Pred::cmp(CmpOp::Le, T::int(0), T::vv())
        ));
        assert!(entailed_by(
            &b,
            &hyps,
            &Pred::cmp(CmpOp::Lt, T::vv(), len_a),
        ));
    }

    #[test]
    fn too_many_disequalities_bail_out() {
        let b = int_binders();
        let mut hyps = vec![Pred::cmp(CmpOp::Eq, T::vv(), T::int(0))];
        for i in 0..(MAX_INT_DISEQS as i64 + 1) {
            hyps.push(Pred::cmp(CmpOp::Ne, T::var("x"), T::int(100 + i)));
        }
        // Entailed by intervals alone, but the disequality load could
        // push the solver past its case-split cap — so refuse.
        assert!(!entailed_by(
            &b,
            &hyps,
            &Pred::cmp(CmpOp::Le, T::int(0), T::vv())
        ));
    }
}
